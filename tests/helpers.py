"""Test utilities: numerical gradient checking against the autograd tape."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.tensor import Tensor


def numerical_gradient(
    fn: Callable[[], float], array: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of ``fn`` w.r.t. ``array`` (in place)."""
    grad = np.zeros_like(array, dtype=np.float64)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        f_plus = fn()
        array[idx] = original - eps
        f_minus = fn()
        array[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(
    build_loss: Callable[[Tensor], Tensor],
    shape: tuple,
    rng: np.random.Generator,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> None:
    """Assert autograd gradient of ``build_loss`` matches finite differences.

    ``build_loss`` receives a float64 leaf tensor and must return a scalar
    loss built exclusively from tape-recorded ops.
    """
    data = rng.normal(size=shape).astype(np.float64)
    leaf = Tensor(data, requires_grad=True)
    loss = build_loss(leaf)
    if loss.size != 1:
        raise AssertionError("build_loss must return a scalar")
    loss.backward()
    assert leaf.grad is not None, "no gradient flowed to the leaf"

    numeric = numerical_gradient(lambda: float(build_loss(Tensor(data)).data), data)
    np.testing.assert_allclose(leaf.grad, numeric, atol=atol, rtol=rtol)
