"""Split construction and validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import Split, make_split


class TestMakeSplit:
    def test_sizes_match_fractions(self):
        s = make_split(1000, 0.5, 0.2, 0.3, rng=np.random.default_rng(0))
        assert s.sizes() == (500, 200, 300)

    def test_disjoint(self):
        s = make_split(500, 0.4, 0.3, 0.3, rng=np.random.default_rng(1))
        s.validate(500)

    def test_partial_labeling_allowed(self):
        s = make_split(1000, 0.05, 0.01, 0.02, rng=np.random.default_rng(2))
        assert sum(s.sizes()) == 80

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            make_split(100, 0.6, 0.3, 0.3)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(10, 500),
        st.floats(0.0, 0.5),
        st.floats(0.0, 0.3),
        st.floats(0.0, 0.2),
    )
    def test_always_valid(self, n, a, b, c):
        s = make_split(n, a, b, c, rng=np.random.default_rng(3))
        s.validate(n)


class TestSplitValidation:
    def test_detects_overlap(self):
        s = Split(train=np.array([0, 1]), val=np.array([1]), test=np.array([2]))
        with pytest.raises(ValueError, match="overlap"):
            s.validate(5)

    def test_detects_duplicates(self):
        s = Split(train=np.array([0, 0]), val=np.array([1]), test=np.array([2]))
        with pytest.raises(ValueError, match="duplicates"):
            s.validate(5)

    def test_detects_out_of_range(self):
        s = Split(train=np.array([0]), val=np.array([9]), test=np.array([2]))
        with pytest.raises(ValueError, match="out-of-range"):
            s.validate(5)

    def test_repr(self):
        s = Split(train=np.array([0]), val=np.array([1]), test=np.array([2]))
        assert "train=1" in repr(s)
