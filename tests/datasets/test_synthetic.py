"""Synthetic datasets: spec fidelity, determinism, structural properties."""

import numpy as np
import pytest

from repro.datasets import (
    SPECS,
    available_datasets,
    clear_cache,
    dataset_table,
    generate_dataset,
    get_dataset,
)


class TestSpecs:
    def test_three_datasets_registered(self):
        assert available_datasets() == ["arxiv", "papers", "products"]

    def test_feature_widths_match_paper(self):
        assert SPECS["arxiv"].num_features == 128
        assert SPECS["products"].num_features == 100
        assert SPECS["papers"].num_features == 128

    def test_node_count_ordering_matches_paper(self):
        assert (
            SPECS["arxiv"].num_nodes
            < SPECS["products"].num_nodes
            < SPECS["papers"].num_nodes
        )

    def test_products_is_densest(self):
        assert SPECS["products"].avg_degree == max(
            s.avg_degree for s in SPECS.values()
        )

    def test_papers_mostly_unlabeled(self):
        s = SPECS["papers"]
        assert s.train_frac + s.val_frac + s.test_frac < 0.15

    def test_products_test_heavy(self):
        s = SPECS["products"]
        assert s.test_frac > 5 * s.train_frac


class TestGeneration:
    def test_validates(self, tiny_dataset):
        tiny_dataset.validate()

    def test_features_are_float16(self, tiny_dataset):
        assert tiny_dataset.features.dtype == np.float16

    def test_unlabeled_nodes_marked(self):
        ds = generate_dataset("papers", scale=0.2, seed=0)
        assert (ds.labels == -1).sum() > 0.8 * ds.num_nodes

    def test_labeled_split_has_labels(self, tiny_dataset):
        for part in (tiny_dataset.split.train, tiny_dataset.split.val, tiny_dataset.split.test):
            assert (tiny_dataset.labels[part] >= 0).all()

    def test_labels_match_communities_where_labeled(self, tiny_dataset):
        labeled = tiny_dataset.labels >= 0
        np.testing.assert_array_equal(
            tiny_dataset.labels[labeled], tiny_dataset.communities[labeled]
        )

    def test_deterministic(self):
        a = generate_dataset("arxiv", scale=0.1, seed=42)
        b = generate_dataset("arxiv", scale=0.1, seed=42)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.graph.indices, b.graph.indices)
        np.testing.assert_array_equal(a.split.train, b.split.train)

    def test_different_seeds_differ(self):
        a = generate_dataset("arxiv", scale=0.1, seed=0)
        b = generate_dataset("arxiv", scale=0.1, seed=1)
        assert not np.array_equal(a.graph.indices, b.graph.indices)

    def test_scale_shrinks(self):
        small = generate_dataset("arxiv", scale=0.1, seed=0)
        assert small.num_nodes == int(SPECS["arxiv"].num_nodes * 0.1)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            generate_dataset("reddit")

    def test_summary_row_fields(self, tiny_dataset):
        row = tiny_dataset.summary_row()
        assert row["dataset"] == "arxiv"
        assert row["features"] == 128
        assert row["paper_nodes"] == "169K"

    def test_feature_signal_is_weak_but_present(self, tiny_dataset):
        # class centroids should be recoverable from class-mean features
        feats = tiny_dataset.features.astype(np.float32)
        comm = tiny_dataset.communities
        means = np.stack([feats[comm == c].mean(axis=0) for c in range(12)])
        # mean feature separation between classes exceeds within-class sem
        spread = np.linalg.norm(means - means.mean(axis=0), axis=1).mean()
        assert spread > 0.3


class TestRegistry:
    def test_cache_returns_same_object(self):
        clear_cache()
        a = get_dataset("arxiv", scale=0.1)
        b = get_dataset("arxiv", scale=0.1)
        assert a is b

    def test_cache_distinguishes_params(self):
        clear_cache()
        a = get_dataset("arxiv", scale=0.1, seed=0)
        b = get_dataset("arxiv", scale=0.1, seed=1)
        assert a is not b

    def test_dataset_table_has_all_rows(self):
        rows = dataset_table(scale=0.1)
        assert [r["dataset"] for r in rows] == ["arxiv", "papers", "products"]
