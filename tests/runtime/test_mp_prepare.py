"""Multiprocess prepare executor: determinism, failure handling, telemetry.

The de-simulation contract (ISSUE 9): worker *processes* sampling and
slicing over shared memory must be indistinguishable from the in-process
executors — byte-identical per-batch losses for a shared seed, the same
StageError cancellation on failure (including a worker killed mid-epoch),
and every pinned slot back in the pool afterwards.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.datasets import generate_dataset
from repro.models import GraphSAGE
from repro.nn import Adam
from repro.runtime import (
    Device,
    MultiprocessExecutor,
    SerialExecutor,
    StageError,
    WorkerCrashed,
)
from repro.runtime.mp_prepare import MultiprocessPreparePool, estimate_mfg_capacity
from repro.runtime.shm import mfg_ints_needed
from repro.sampling import FastNeighborSampler
from repro.slicing import FeatureStore
from repro.tensor import Tensor, functional as F

FANOUTS = [5, 3]


@pytest.fixture(scope="module")
def setup():
    dataset = generate_dataset("arxiv", scale=0.25, seed=3)
    store = FeatureStore(dataset.features, dataset.labels)
    rng = np.random.default_rng(0)
    batches = [
        rng.choice(dataset.split.train, size=32, replace=False) for _ in range(6)
    ]
    return dataset, store, batches


def make_train_fn(dataset, seed=4):
    model = GraphSAGE(
        dataset.num_features, 32, dataset.num_classes, num_layers=2,
        rng=np.random.default_rng(seed),
    )
    optimizer = Adam(model.parameters(), lr=1e-2)

    def train_fn(device_batch):
        model.train()
        optimizer.zero_grad()
        out = model(Tensor(device_batch.xs.data), device_batch.mfg.adjs)
        loss = F.nll_loss(out, device_batch.ys.data)
        loss.backward()
        optimizer.step()
        return loss.item()

    return train_fn


def serial_losses(setup, seed=9):
    dataset, store, batches = setup
    device = Device()
    executor = SerialExecutor(
        FastNeighborSampler(dataset.graph, FANOUTS), store, device, seed=seed
    )
    stats = executor.run_epoch(batches, make_train_fn(dataset))
    device.shutdown()
    return stats.losses


def mp_executor(setup, **kwargs):
    dataset, store, _ = setup
    device = Device()
    defaults = dict(
        fanouts=FANOUTS,
        num_workers=2,
        max_batch_hint=32,
        seed=9,
        start_method="fork",  # spawn is exercised separately; fork is fast
    )
    defaults.update(kwargs)
    return MultiprocessExecutor(dataset.graph, store, device, **defaults), device


class TestDeterminism:
    def test_losses_bitwise_identical_to_serial(self, setup):
        expected = serial_losses(setup)
        executor, device = mp_executor(setup)
        try:
            stats = executor.run_epoch(setup[2], make_train_fn(setup[0]))
        finally:
            executor.close()
            device.shutdown()
        assert stats.losses == expected
        assert stats.num_batches == len(setup[2])

    def test_spawn_start_method(self, setup):
        """The documented (portable) start method: slower to boot, same
        bytes out."""
        expected = serial_losses(setup)[:3]
        executor, device = mp_executor(setup, num_workers=1, start_method="spawn")
        try:
            stats = executor.run_epoch(setup[2][:3], make_train_fn(setup[0]))
        finally:
            executor.close()
            device.shutdown()
        assert stats.losses == expected

    def test_worker_count_does_not_change_results(self, setup):
        losses = []
        for workers in (1, 3):
            executor, device = mp_executor(setup, num_workers=workers)
            try:
                stats = executor.run_epoch(setup[2], make_train_fn(setup[0]))
            finally:
                executor.close()
                device.shutdown()
            losses.append(stats.losses)
        assert losses[0] == losses[1]

    def test_spill_path_matches_serial(self, setup):
        """Slots sized too small force the (counted) pickle fallback for
        features and MFG alike — results must not change."""
        expected = serial_losses(setup)
        executor, device = mp_executor(setup, max_rows_hint=8)
        try:
            stats = executor.run_epoch(setup[2], make_train_fn(setup[0]))
            assert executor.counters["mp_slot_overflow_batches"] > 0
        finally:
            executor.close()
            device.shutdown()
        assert stats.losses == expected


class TestFailureHandling:
    def test_worker_exception_propagates_as_stage_error(self, setup):
        dataset, store, batches = setup
        poisoned = list(batches)
        # out-of-range node ids blow up inside the worker's slice step
        poisoned[2] = np.array([dataset.num_nodes + 5], dtype=np.int64)
        executor, device = mp_executor(setup)
        try:
            with pytest.raises(StageError) as excinfo:
                executor.run_epoch(poisoned, make_train_fn(dataset))
            assert excinfo.value.stage == "prepare"
            # cancellation must have returned every pinned slot
            pool = executor.pinned_pool
            assert pool.free_slots() == pool.total_slots
            # the pool is still healthy: a clean epoch runs afterwards
            stats = executor.run_epoch(batches, make_train_fn(dataset))
            assert stats.num_batches == len(batches)
        finally:
            executor.close()
            device.shutdown()

    def test_worker_killed_mid_epoch_releases_all_slots(self, setup):
        """SIGKILL a worker process: the liveness watchdog must fail the
        pending futures (WorkerCrashed), the pipeline must cancel with a
        StageError, and every pinned slot must return to the pool."""
        dataset, store, batches = setup
        executor, device = mp_executor(setup, num_workers=1)
        try:
            victim = executor.client.processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            with pytest.raises(StageError) as excinfo:
                executor.run_epoch(batches, make_train_fn(dataset))
            assert isinstance(excinfo.value.original, WorkerCrashed)
            pool = executor.pinned_pool
            assert pool.free_slots() == pool.total_slots
            # a broken pool refuses new work instead of hanging
            with pytest.raises(WorkerCrashed):
                executor.client.submit(0, batches[0], [9, 0], 0)
        finally:
            executor.close()
            device.shutdown()

    def test_close_is_idempotent(self, setup):
        executor, device = mp_executor(setup, num_workers=1)
        executor.close()
        executor.close()
        device.shutdown()


class TestTelemetry:
    def test_per_worker_busy_metrics_recorded(self, setup):
        executor, device = mp_executor(setup)
        try:
            executor.run_epoch(setup[2], make_train_fn(setup[0]))
            snapshot = executor.metrics.snapshot()
            batches_per_worker = [
                entry
                for entry in snapshot
                if entry["name"] == "mp_batches"
            ]
            assert sum(e["value"] for e in batches_per_worker) == len(setup[2])
            busy = [
                entry
                for entry in snapshot
                if entry["name"] == "mp_worker_busy_seconds"
            ]
            assert busy and all(e["sum"] > 0 for e in busy)
            # dispatch overhead is tracked separately from worker busy time
            assert executor.metrics.value("mp_result_wait_seconds") >= 0.0
        finally:
            executor.close()
            device.shutdown()

    def test_busy_workers_probe(self, setup):
        executor, device = mp_executor(setup, num_workers=1)
        try:
            assert executor.client.busy_workers() == 0.0
            assert executor.client.utilization() == 0.0
        finally:
            executor.close()
            device.shutdown()


class TestCapacityBound:
    def test_bound_covers_sampled_batches(self, setup):
        dataset, _, batches = setup
        sampler = FastNeighborSampler(dataset.graph, FANOUTS)
        from repro.runtime.workers import estimate_max_rows

        max_rows = estimate_max_rows(FANOUTS, 32, dataset.num_nodes)
        capacity = estimate_mfg_capacity(dataset.graph, FANOUTS, 32, max_rows)
        for i, nodes in enumerate(batches):
            mfg = sampler.sample(nodes, np.random.default_rng(i))
            assert mfg_ints_needed(mfg) <= capacity
            assert len(mfg.n_id) <= max_rows

    def test_none_fanout_caps_at_graph_edges(self, setup):
        dataset, _, _ = setup
        capacity = estimate_mfg_capacity(dataset.graph, [None, 3], 32, 512)
        assert capacity >= 512 + 2 * dataset.graph.num_edges
