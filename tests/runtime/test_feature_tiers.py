"""Tier-parity contract: the storage tier must never change training.

The tiered feature store (ISSUE 10) swaps where feature bytes live — RAM,
an on-disk memmap slab, or uint8 codes — behind the same slicing contract.
These tests pin the guarantee the BENCH_feature_tier parity section
records: per seed, ram and mmap produce byte-identical loss traces on the
serial *and* multiprocess executors, quantized drift stays bounded, and
worker processes reopen the slab read-only without copy-on-write growth.
"""

import numpy as np
import pytest

from repro.datasets import write_dataset_slab
from repro.datasets.slab import dataset_slab_path
from repro.runtime import SharedDataset
from repro.slicing import FeatureStore, MemmapFeatureStore
from repro.train import Trainer
from repro.train.config import ExperimentConfig


def _config() -> ExperimentConfig:
    return ExperimentConfig(
        dataset="arxiv",
        model="sage",
        num_layers=2,
        hidden_channels=16,
        train_fanouts=(6, 4),
        infer_fanouts=(6, 6),
        batch_size=64,
    )


def _losses(dataset, slab_dir, **kw):
    trainer = Trainer(
        dataset, _config(), seed=11, slab_dir=slab_dir / "slabs", **kw
    )
    try:
        stats = trainer.train_epoch(0)
        assert stats.num_batches > 1
        return stats.losses
    finally:
        trainer.shutdown()


@pytest.fixture(scope="module")
def ram_losses(tiny_dataset, tmp_path_factory):
    return _losses(tiny_dataset, tmp_path_factory.mktemp("ram"))


class TestTrainingParity:
    def test_mmap_matches_ram_bitwise_serial(
        self, tiny_dataset, tmp_path, ram_losses
    ):
        assert _losses(tiny_dataset, tmp_path, feature_tier="mmap") == ram_losses

    def test_tiered_hot_rows_do_not_change_losses(
        self, tiny_dataset, tmp_path, ram_losses
    ):
        losses = _losses(
            tiny_dataset, tmp_path, feature_tier="mmap", hot_rows=100
        )
        assert losses == ram_losses

    def test_mmap_matches_ram_bitwise_multiprocess(
        self, tiny_dataset, tmp_path, ram_losses
    ):
        losses = _losses(
            tiny_dataset,
            tmp_path,
            feature_tier="mmap",
            executor="multiprocess",
            prepare_workers=2,
            mp_start_method="fork",
        )
        assert losses == ram_losses

    def test_quantized_loss_drift_bounded(self, tiny_dataset, tmp_path, ram_losses):
        """Quantization perturbs the loss, but only slightly.

        This 6-batch tiny-dataset epoch is noisier than the bench scale;
        the strict 1e-2 bound lives in the committed artifact's parity
        section, enforced by ``check_bench_json`` and the bench contract.
        """
        losses = _losses(tiny_dataset, tmp_path, feature_tier="mmap-quant")
        delta = abs(float(np.mean(losses)) - float(np.mean(ram_losses)))
        assert 0 < delta < 0.1

    def test_unknown_tier_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="feature tier"):
            Trainer(tiny_dataset, _config(), feature_tier="ssd")

    def test_stale_slab_detected(self, tiny_dataset, small_products, tmp_path):
        """Slab paths key on dataset name; reusing a directory holding the
        same name at another scale must fail loudly, not train on stale
        features."""
        slab_dir = tmp_path / "slabs"
        slab_dir.mkdir()
        write_dataset_slab(
            small_products, dataset_slab_path(slab_dir, tiny_dataset.name, "raw")
        )
        with pytest.raises(ValueError, match="nodes"):
            Trainer(
                tiny_dataset,
                _config(),
                feature_tier="mmap",
                slab_dir=slab_dir,
            )


class TestWorkerAttach:
    @pytest.fixture()
    def slab_store(self, tmp_path, tiny_dataset):
        path = dataset_slab_path(tmp_path, tiny_dataset.name, "raw")
        write_dataset_slab(tiny_dataset, path)
        return MemmapFeatureStore(path)

    def test_shared_dataset_spec_carries_store_spec(self, tiny_dataset, slab_store):
        shared = SharedDataset.create(tiny_dataset.graph, slab_store)
        try:
            spec = shared.spec()
            assert spec["store"] == slab_store.mmap_spec()
        finally:
            shared.close()
            shared.unlink()

    def test_reopened_worker_store_is_read_only(self, tiny_dataset, slab_store):
        """Workers map the slab ``mode="r"``: the pages are shared with
        every other process and can never be copied on write."""
        shared = SharedDataset.create(tiny_dataset.graph, slab_store)
        try:
            attached = SharedDataset.attach(shared.spec())
            worker_store = attached.store
            assert isinstance(worker_store, MemmapFeatureStore)
            assert worker_store._features.mode == "r"
            with pytest.raises(ValueError):
                worker_store._features[0, 0] = 1.0
            ids = np.arange(16)
            np.testing.assert_array_equal(
                worker_store.slice_features(ids), slab_store.slice_features(ids)
            )
        finally:
            shared.close()
            shared.unlink()

    def test_ram_store_still_travels_through_shm(self, tiny_dataset):
        """The pre-tier path is unchanged: an in-RAM store copies its
        arrays into the shared arena and attaches without a spec."""
        store = FeatureStore(tiny_dataset.features, tiny_dataset.labels)
        shared = SharedDataset.create(tiny_dataset.graph, store)
        try:
            assert shared.spec()["store"] is None
            attached = SharedDataset.attach(shared.spec())
            np.testing.assert_array_equal(
                attached.store.slice_features(np.arange(8)),
                store.slice_features(np.arange(8)),
            )
        finally:
            shared.close()
            shared.unlink()
