"""Executors: serial-vs-pipelined equivalence and stats accounting."""

import numpy as np
import pytest

from repro.datasets import generate_dataset
from repro.models import GraphSAGE
from repro.nn import Adam
from repro.runtime import (
    Device,
    PipelinedExecutor,
    SerialExecutor,
    Tracer,
    render_timeline,
)
from repro.sampling import FastNeighborSampler
from repro.slicing import FeatureStore
from repro.tensor import Tensor, functional as F


@pytest.fixture(scope="module")
def setup():
    dataset = generate_dataset("arxiv", scale=0.25, seed=3)
    store = FeatureStore(dataset.features, dataset.labels)
    rng = np.random.default_rng(0)
    batches = [
        rng.choice(dataset.split.train, size=32, replace=False) for _ in range(6)
    ]
    return dataset, store, batches


def make_train_fn(dataset, seed=0):
    model = GraphSAGE(
        dataset.num_features, 32, dataset.num_classes, num_layers=2,
        rng=np.random.default_rng(seed),
    )
    optimizer = Adam(model.parameters(), lr=1e-2)

    def train_fn(device_batch):
        model.train()
        optimizer.zero_grad()
        out = model(Tensor(device_batch.xs.data), device_batch.mfg.adjs)
        loss = F.nll_loss(out, device_batch.ys.data)
        loss.backward()
        optimizer.step()
        return loss.item()

    return train_fn, model


class TestSerialExecutor:
    def test_epoch_runs_all_batches(self, setup):
        dataset, store, batches = setup
        device = Device()
        executor = SerialExecutor(
            FastNeighborSampler(dataset.graph, [5, 3]), store, device, seed=0
        )
        train_fn, _ = make_train_fn(dataset)
        stats = executor.run_epoch(batches, train_fn)
        device.shutdown()
        assert stats.num_batches == len(batches)
        assert len(stats.losses) == len(batches)
        assert stats.epoch_time > 0
        # serial: every stage accounted on the main thread
        assert stats.sample_time > 0 and stats.slice_time > 0
        assert stats.train_time > 0

    def test_breakdown_fractions_sum_below_one(self, setup):
        dataset, store, batches = setup
        device = Device()
        executor = SerialExecutor(
            FastNeighborSampler(dataset.graph, [5, 3]), store, device, seed=0
        )
        train_fn, _ = make_train_fn(dataset)
        stats = executor.run_epoch(batches, train_fn)
        device.shutdown()
        fractions = stats.breakdown()
        assert 0.5 < sum(fractions.values()) <= 1.01

    def test_bytes_transferred_reset_per_epoch(self, setup):
        dataset, store, batches = setup
        device = Device()
        executor = SerialExecutor(
            FastNeighborSampler(dataset.graph, [5, 3]), store, device, seed=0
        )
        train_fn, _ = make_train_fn(dataset)
        s1 = executor.run_epoch(batches, train_fn)
        s2 = executor.run_epoch(batches, train_fn)
        device.shutdown()
        assert abs(s1.bytes_transferred - s2.bytes_transferred) < 0.2 * s1.bytes_transferred


class TestPipelinedExecutor:
    def test_losses_match_serial_with_one_worker(self, setup):
        """Single prep worker preserves batch order, so the pipelined run is
        numerically identical to the serial baseline (same RNG per batch)."""
        dataset, store, batches = setup

        device_a = Device()
        serial = SerialExecutor(
            FastNeighborSampler(dataset.graph, [5, 3]), store, device_a, seed=9
        )
        fn_a, model_a = make_train_fn(dataset, seed=4)
        stats_a = serial.run_epoch(batches, fn_a)
        device_a.shutdown()

        device_b = Device()
        pipelined = PipelinedExecutor(
            lambda: FastNeighborSampler(dataset.graph, [5, 3]),
            store,
            device_b,
            num_workers=1,
            max_batch_hint=32,
            seed=9,
        )
        fn_b, model_b = make_train_fn(dataset, seed=4)
        stats_b = pipelined.run_epoch(batches, fn_b)
        device_b.shutdown()

        np.testing.assert_allclose(stats_a.losses, stats_b.losses, rtol=1e-5)
        for (na, pa), (nb, pb) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            assert na == nb
            np.testing.assert_allclose(pa.data, pb.data, rtol=1e-5)

    def test_multi_worker_processes_all_batches(self, setup):
        dataset, store, batches = setup
        device = Device()
        executor = PipelinedExecutor(
            lambda: FastNeighborSampler(dataset.graph, [5, 3]),
            store,
            device,
            num_workers=3,
            max_batch_hint=32,
            seed=0,
        )
        train_fn, _ = make_train_fn(dataset)
        stats = executor.run_epoch(batches, train_fn)
        device.shutdown()
        assert stats.num_batches == len(batches)

    def test_pinned_buffers_recycled_across_epochs(self, setup):
        dataset, store, batches = setup
        device = Device()
        executor = PipelinedExecutor(
            lambda: FastNeighborSampler(dataset.graph, [5, 3]),
            store,
            device,
            num_workers=2,
            pinned_slots=2,
            max_batch_hint=32,
            seed=0,
        )
        train_fn, _ = make_train_fn(dataset)
        for _ in range(3):
            executor.run_epoch(batches, train_fn)
        device.shutdown()
        assert executor.pinned_pool.free_slots() == executor.pinned_pool.total_slots

    def test_trace_records_all_stages(self, setup):
        dataset, store, batches = setup
        tracer = Tracer()
        device = Device()
        executor = PipelinedExecutor(
            lambda: FastNeighborSampler(dataset.graph, [5, 3]),
            store,
            device,
            num_workers=2,
            max_batch_hint=32,
            tracer=tracer,
            seed=0,
        )
        train_fn, _ = make_train_fn(dataset)
        executor.run_epoch(batches, train_fn)
        device.shutdown()
        stages = {e.name for e in tracer.events}
        assert stages == {"sample", "slice", "plan_build", "transfer", "train"}
        rendered = render_timeline(tracer)
        assert "gpu" in rendered and "dma" in rendered

    def test_transfer_overlaps_compute(self, setup):
        """With a metered (slow) transfer, the pipelined executor's epoch is
        shorter than the sum of transfer+train, proving overlap."""
        dataset, store, batches = setup
        bandwidth = 30e6  # slow enough that transfers dominate the epoch

        device = Device(transfer_bandwidth=bandwidth)
        serial = SerialExecutor(
            FastNeighborSampler(dataset.graph, [5, 3]), store, device, seed=0
        )
        fn, _ = make_train_fn(dataset)
        serial_stats = serial.run_epoch(batches, fn)
        device.shutdown()

        device2 = Device(transfer_bandwidth=bandwidth)
        pipelined = PipelinedExecutor(
            lambda: FastNeighborSampler(dataset.graph, [5, 3]),
            store,
            device2,
            num_workers=2,
            max_batch_hint=32,
            seed=0,
        )
        fn2, _ = make_train_fn(dataset)
        pipe_stats = pipelined.run_epoch(batches, fn2)
        device2.shutdown()

        assert pipe_stats.epoch_time < serial_stats.epoch_time
