"""Simulated device: streams, events, transfer metering, pinned pool."""

import threading
import time

import numpy as np
import pytest

from repro.runtime import Device, PinnedBufferPool, Stream, StreamEvent
from repro.sampling import FastNeighborSampler
from repro.slicing import FeatureStore, slice_batch_fused


class TestStream:
    def test_in_order_execution(self):
        stream = Stream("test")
        order = []
        events = [stream.submit(lambda i=i: order.append(i)) for i in range(10)]
        for e in events:
            e.wait()
        assert order == list(range(10))
        stream.shutdown()

    def test_synchronize_waits_for_all(self):
        stream = Stream("test")
        done = []
        stream.submit(lambda: (time.sleep(0.02), done.append(1)))
        stream.synchronize()
        assert done == [1]
        stream.shutdown()

    def test_error_propagates_to_waiter(self):
        stream = Stream("test")

        def boom():
            raise RuntimeError("kaboom")

        event = stream.submit(boom)
        with pytest.raises(RuntimeError, match="kaboom"):
            event.wait()
        # stream survives the error
        ok = stream.submit(lambda: None)
        ok.wait()
        stream.shutdown()

    def test_submit_after_shutdown_raises(self):
        stream = Stream("test")
        stream.shutdown()
        with pytest.raises(RuntimeError):
            stream.submit(lambda: None)

    def test_event_timeout(self):
        event = StreamEvent()
        with pytest.raises(TimeoutError):
            event.wait(timeout=0.01)


class TestDeviceTransfers:
    def _batch(self, small_products, seed=0):
        store = FeatureStore(small_products.features, small_products.labels)
        sampler = FastNeighborSampler(small_products.graph, [4, 3])
        rng = np.random.default_rng(seed)
        batch_nodes = rng.choice(small_products.num_nodes, 8, replace=False)
        mfg = sampler.sample(batch_nodes, rng)
        return store, slice_batch_fused(store, mfg)

    def test_transfer_upcasts_to_fp32(self, small_products):
        device = Device()
        _, sliced = self._batch(small_products)
        out = device.transfer_batch(sliced)
        assert out.xs.data.dtype == np.float32
        np.testing.assert_allclose(out.xs.data, sliced.xs.astype(np.float32))
        device.shutdown()

    def test_transfer_counts_bytes(self, small_products):
        device = Device()
        _, sliced = self._batch(small_products)
        device.transfer_batch(sliced)
        assert device.bytes_transferred == sliced.nbytes()
        assert device.num_transfers == 1
        device.shutdown()

    def test_bandwidth_metering_slows_transfer(self, small_products):
        _, sliced = self._batch(small_products)
        fast = Device(transfer_bandwidth=None)
        slow = Device(transfer_bandwidth=sliced.nbytes() / 0.05)  # ~50ms
        t0 = time.perf_counter()
        fast.transfer_batch(sliced)
        fast_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow.transfer_batch(sliced)
        slow_time = time.perf_counter() - t0
        assert slow_time > fast_time + 0.03
        fast.shutdown()
        slow.shutdown()

    def test_roundtrip_latency_charged_per_tensor(self, small_products):
        _, sliced = self._batch(small_products)
        lat = Device(roundtrip_latency=0.01)
        t0 = time.perf_counter()
        lat.transfer_batch(sliced)
        elapsed = time.perf_counter() - t0
        expected_tensors = 2 + 1 + len(sliced.mfg.adjs)
        assert elapsed >= 0.01 * expected_tensors * 0.9
        lat.shutdown()

    def test_async_transfer_completes(self, small_products):
        device = Device()
        _, sliced = self._batch(small_products)
        holder, event = device.transfer_batch_async(sliced, batch_index=7)
        event.wait()
        assert holder[0] is not None
        assert holder[0].batch_index == 7
        device.shutdown()

    def test_to_device_single_array(self):
        device = Device()
        arr = np.ones((4, 4), dtype=np.float16)
        out = device.to_device(arr, cast_fp32=True)
        assert out.data.dtype == np.float32
        device.shutdown()

    def test_reset_stats(self, small_products):
        device = Device()
        _, sliced = self._batch(small_products)
        device.transfer_batch(sliced)
        device.reset_stats()
        assert device.bytes_transferred == 0
        device.shutdown()


class TestPinnedBufferPool:
    def test_acquire_release_cycle(self):
        pool = PinnedBufferPool(2, max_rows=10, num_features=4, max_batch=4)
        a = pool.acquire()
        b = pool.acquire()
        assert pool.free_slots() == 0
        pool.release(a)
        assert pool.free_slots() == 1
        pool.release(b)

    def test_acquire_blocks_when_exhausted(self):
        pool = PinnedBufferPool(1, max_rows=4, num_features=2, max_batch=2)
        buf = pool.acquire()
        acquired = []

        def taker():
            acquired.append(pool.acquire())

        t = threading.Thread(target=taker, daemon=True)
        t.start()
        time.sleep(0.02)
        assert not acquired
        pool.release(buf)
        t.join(timeout=2)
        assert len(acquired) == 1

    def test_acquire_timeout(self):
        pool = PinnedBufferPool(1, max_rows=4, num_features=2, max_batch=2)
        pool.acquire()
        with pytest.raises(TimeoutError):
            pool.acquire(timeout=0.01)

    def test_double_release_rejected(self):
        pool = PinnedBufferPool(1, max_rows=4, num_features=2, max_batch=2)
        buf = pool.acquire()
        pool.release(buf)
        with pytest.raises(ValueError):
            pool.release(buf)

    def test_acquire_timeout_survives_spurious_wakeups(self):
        """Regression: the wait loop used to restart the *full* timeout on
        every Condition wakeup, so notifies without a free slot could block
        an acquire(timeout=t) far past its deadline.  The deadline is now
        monotonic: spam notifies and the call must still time out on
        schedule."""
        pool = PinnedBufferPool(1, max_rows=4, num_features=2, max_batch=2)
        pool.acquire()
        stop = threading.Event()

        def spammer():
            while not stop.is_set():
                with pool._available:
                    pool._available.notify_all()
                time.sleep(0.005)

        thread = threading.Thread(target=spammer, daemon=True)
        thread.start()
        try:
            t0 = time.monotonic()
            with pytest.raises(TimeoutError):
                pool.acquire(timeout=0.2)
            elapsed = time.monotonic() - t0
        finally:
            stop.set()
            thread.join(timeout=2)
        assert elapsed < 1.0, f"timeout restarted by wakeups: {elapsed:.2f}s"

    def test_release_rejects_foreign_buffer(self):
        """Regression: a buffer from *another* pool with a valid slot index
        used to slip into the free list (corrupting it); identity against
        self._buffers[slot] is now enforced."""
        pool = PinnedBufferPool(2, max_rows=4, num_features=2, max_batch=2)
        other = PinnedBufferPool(2, max_rows=4, num_features=2, max_batch=2)
        foreign = other.acquire()
        with pytest.raises(ValueError, match="does not belong"):
            pool.release(foreign)
        # the victim pool's free list must be intact
        assert pool.free_slots() == 2

    def test_release_rejects_out_of_range_slot(self):
        from repro.runtime import PinnedBuffer

        pool = PinnedBufferPool(1, max_rows=4, num_features=2, max_batch=2)
        rogue = PinnedBuffer(
            slot=7,
            features=np.empty((4, 2), np.float16),
            labels=np.empty(2, np.int64),
        )
        with pytest.raises(ValueError, match="does not belong"):
            pool.release(rogue)

    def test_buffer_shapes(self):
        pool = PinnedBufferPool(1, max_rows=7, num_features=3, max_batch=5)
        buf = pool.acquire()
        assert buf.features.shape == (7, 3)
        assert buf.labels.shape == (5,)
        assert buf.features.dtype == np.float16

    def test_nbytes(self):
        pool = PinnedBufferPool(2, max_rows=10, num_features=4, max_batch=4)
        assert pool.nbytes() == 2 * (10 * 4 * 2 + 4 * 8)

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            PinnedBufferPool(0, max_rows=1, num_features=1, max_batch=1)
