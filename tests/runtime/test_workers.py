"""Batch-preparation worker pool: coverage, determinism, buffer recycling."""

import numpy as np
import pytest

from repro.runtime import (
    BatchPreparationPool,
    PinnedBufferPool,
    QueueClosed,
    estimate_max_rows,
)
from repro.sampling import FastNeighborSampler
from repro.slicing import FeatureStore


def make_pool(dataset, num_workers=2, pinned=True, prefetch=4, seed=0):
    store = FeatureStore(dataset.features, dataset.labels)
    factory = lambda: FastNeighborSampler(dataset.graph, [5, 3])
    pinned_pool = None
    if pinned:
        rows = estimate_max_rows([5, 3], 32, dataset.num_nodes)
        pinned_pool = PinnedBufferPool(
            prefetch, max_rows=rows, num_features=store.num_features, max_batch=32
        )
    return (
        BatchPreparationPool(
            factory,
            store,
            num_workers=num_workers,
            prefetch_depth=prefetch,
            pinned_pool=pinned_pool,
            seed=seed,
        ),
        store,
    )


def drain(queue, pool):
    """Consume all prepared batches, copying pinned views before release.

    Pinned slots are recycled after release, so (like the real device
    transfer) a consumer must copy the staged data out first.
    """
    out = []
    while True:
        try:
            prepared = queue.get()
        except QueueClosed:
            return out
        n = len(prepared.sliced.mfg.n_id)
        prepared.sliced.xs = prepared.sliced.xs[:n].copy()
        prepared.sliced.ys = prepared.sliced.ys.copy()
        out.append(prepared)
        if prepared.buffer is not None:
            pool.pinned_pool.release(prepared.buffer)


class TestEstimateMaxRows:
    def test_product_bound(self):
        assert estimate_max_rows([2, 3], 10, 10_000) == 10 * 3 * 4

    def test_caps_at_graph_size(self):
        assert estimate_max_rows([50, 50], 1000, 500) == 500

    def test_full_fanout_returns_graph_size(self):
        assert estimate_max_rows([None, 5], 10, 777) == 777


class TestPool:
    def test_all_batches_prepared_once(self, small_products, rng):
        pool, _ = make_pool(small_products)
        batches = [
            rng.choice(small_products.num_nodes, size=16, replace=False)
            for _ in range(9)
        ]
        queue, join = pool.run(batches)
        prepared = drain(queue, pool)
        join()
        assert sorted(p.index for p in prepared) == list(range(9))

    def test_batches_identical_across_worker_counts(self, small_products, rng):
        """Per-batch-index RNG seeding: results don't depend on scheduling."""
        batches = [
            rng.choice(small_products.num_nodes, size=8, replace=False)
            for _ in range(6)
        ]
        results = {}
        for workers in (1, 3):
            pool, _ = make_pool(small_products, num_workers=workers, seed=7)
            queue, join = pool.run(batches)
            prepared = {p.index: p for p in drain(queue, pool)}
            join()
            results[workers] = prepared
        for i in range(6):
            a, b = results[1][i].sliced, results[3][i].sliced
            np.testing.assert_array_equal(a.mfg.n_id, b.mfg.n_id)
            np.testing.assert_array_equal(a.xs[: len(a.mfg.n_id)], b.xs[: len(b.mfg.n_id)])

    def test_sliced_content_correct(self, small_products, rng):
        pool, store = make_pool(small_products)
        batches = [rng.choice(small_products.num_nodes, size=16, replace=False)]
        queue, join = pool.run(batches)
        prepared = drain(queue, pool)
        join()
        sliced = prepared[0].sliced
        np.testing.assert_array_equal(
            sliced.xs[: len(sliced.mfg.n_id)], store.features[sliced.mfg.n_id]
        )
        np.testing.assert_array_equal(sliced.ys, store.labels[sliced.mfg.target_ids()])

    def test_single_worker_preserves_order(self, small_products, rng):
        pool, _ = make_pool(small_products, num_workers=1)
        batches = [
            rng.choice(small_products.num_nodes, size=8, replace=False)
            for _ in range(5)
        ]
        queue, join = pool.run(batches)
        prepared = drain(queue, pool)
        join()
        assert [p.index for p in prepared] == list(range(5))

    def test_pinned_buffers_all_recycled(self, small_products, rng):
        pool, _ = make_pool(small_products, prefetch=2)
        batches = [
            rng.choice(small_products.num_nodes, size=16, replace=False)
            for _ in range(8)
        ]
        queue, join = pool.run(batches)
        drain(queue, pool)
        join()
        assert pool.pinned_pool.free_slots() == pool.pinned_pool.total_slots

    def test_overflow_falls_back_to_fresh_allocation(self, small_products, rng):
        store = FeatureStore(small_products.features, small_products.labels)
        factory = lambda: FastNeighborSampler(small_products.graph, [5, 3])
        tiny_pinned = PinnedBufferPool(
            2, max_rows=4, num_features=store.num_features, max_batch=32
        )  # too small for any real MFG
        pool = BatchPreparationPool(
            factory, store, num_workers=1, pinned_pool=tiny_pinned
        )
        batches = [rng.choice(small_products.num_nodes, size=16, replace=False)]
        queue, join = pool.run(batches)
        prepared = drain(queue, pool)
        join()
        assert prepared[0].buffer is None
        assert pool.overflow_count == 1
        prepared[0].sliced.validate()

    def test_works_without_pinned_pool(self, small_products, rng):
        pool, _ = make_pool(small_products, pinned=False)
        batches = [rng.choice(small_products.num_nodes, size=8, replace=False)]
        queue, join = pool.run(batches)
        prepared = drain(queue, pool)
        join()
        assert prepared[0].buffer is None

    def test_invalid_worker_count(self, small_products):
        store = FeatureStore(small_products.features, small_products.labels)
        with pytest.raises(ValueError):
            BatchPreparationPool(
                lambda: FastNeighborSampler(small_products.graph, [3]),
                store,
                num_workers=0,
            )


class TestPoolCounters:
    def test_pool_aggregates_sampler_and_slice_telemetry(self, small_products, rng):
        pool, _ = make_pool(small_products, num_workers=2)
        batches = [
            rng.choice(small_products.num_nodes, size=32, replace=False)
            for _ in range(6)
        ]
        queue, join = pool.run(batches)
        drain(queue, pool)
        join()
        # Workers attach their arena samplers to the pool's shared sink and
        # slice through it, so one Counters instance tells the whole story.
        assert pool.counters["sampler_batches"] == 6
        assert pool.counters["slice_fused_batches"] == 6
        assert pool.counters["slice_pinned_batches"] == 6
        assert pool.counters["slice_bytes_gathered"] > 0
        assert pool.counters["arena_grow_count"] > 0

    def test_external_counters_instance_is_used(self, small_products, rng):
        from repro.telemetry import Counters

        shared = Counters()
        store = FeatureStore(small_products.features, small_products.labels)
        pool = BatchPreparationPool(
            lambda: FastNeighborSampler(small_products.graph, [5, 3]),
            store,
            num_workers=1,
            counters=shared,
        )
        batches = [rng.choice(small_products.num_nodes, size=16, replace=False)]
        queue, join = pool.run(batches)
        drain(queue, pool)
        join()
        assert shared is pool.counters
        assert shared["sampler_batches"] == 1
