"""Device feature cache (future-work extension)."""

import numpy as np
import pytest

from repro.runtime import (
    Device,
    DeviceFeatureCache,
    hottest_nodes,
    transfer_batch_with_cache,
)
from repro.sampling import FastNeighborSampler
from repro.slicing import FeatureStore, slice_batch_fused


@pytest.fixture()
def setup(small_products, rng):
    store = FeatureStore(small_products.features, small_products.labels)
    sampler = FastNeighborSampler(small_products.graph, [8, 5])
    nodes = rng.choice(small_products.num_nodes, size=32, replace=False)
    batch = slice_batch_fused(store, sampler.sample(nodes, np.random.default_rng(0)))
    return small_products, store, batch


class TestHottestNodes:
    def test_returns_highest_degree(self, small_products):
        hot = hottest_nodes(small_products.graph, 50)
        degrees = small_products.graph.degree()
        threshold = np.sort(degrees)[-50]
        assert (degrees[hot] >= threshold).all()

    def test_zero_size(self, small_products):
        assert len(hottest_nodes(small_products.graph, 0)) == 0

    def test_deterministic_on_tie_heavy_graph(self):
        """Regression: argpartition breaks degree ties in unspecified order,
        so the resident set could differ run-to-run on tie-heavy graphs.
        The selection must now equal the lexsort reference — (descending
        degree, ascending id) — for every cache size."""
        from repro.graph import CSRGraph

        rng = np.random.default_rng(3)
        n = 200
        # Degrees drawn from only 4 distinct values: ties everywhere.
        degrees = rng.choice([1, 2, 3, 4], size=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(degrees)
        indices = rng.integers(0, n, size=indptr[-1], dtype=np.int64)
        graph = CSRGraph(indptr=indptr, indices=indices)

        reference = np.lexsort((np.arange(n), -degrees))
        for size in (1, 7, 50, 123, n):
            hot = hottest_nodes(graph, size)
            np.testing.assert_array_equal(hot, reference[:size])
            # and it is stable across calls
            np.testing.assert_array_equal(hot, hottest_nodes(graph, size))

    def test_validation(self, small_products):
        with pytest.raises(ValueError):
            hottest_nodes(small_products.graph, small_products.num_nodes + 1)


class TestResidentSet:
    def test_rows_kept_in_store_dtype(self, setup):
        """The resident block stays fp16 (the store's dtype): half the
        one-time upload and half the device footprint; assembly into the
        fp32 batch matrix upcasts each hit exactly."""
        dataset, store, _ = setup
        device = Device()
        cache = DeviceFeatureCache(device, store, hottest_nodes(dataset.graph, 100))
        assert cache.rows.dtype == store.feature_dtype == np.float16
        np.testing.assert_array_equal(
            cache.rows, store.slice_features(hottest_nodes(dataset.graph, 100))
        )
        device.shutdown()

    def test_row_map_is_int32(self, setup):
        dataset, store, _ = setup
        device = Device()
        cache = DeviceFeatureCache(device, store, hottest_nodes(dataset.graph, 100))
        assert cache._row_of.dtype == np.int32
        device.shutdown()

    def test_transfer_uses_active_workspace(self, setup):
        """With a workspace in scope, the assembled fp32 matrix comes from
        the pool: the second batch reuses the first batch's buffer."""
        from repro.tensor import Workspace, workspace_scope

        dataset, store, batch = setup
        device = Device()
        cache = DeviceFeatureCache(device, store, hottest_nodes(dataset.graph, 100))
        ws = Workspace()
        with workspace_scope(ws):
            transfer_batch_with_cache(device, cache, batch)
            assert ws.stats["misses"] >= 1
            ws.release_all()
            transfer_batch_with_cache(device, cache, batch)
            assert ws.stats["hits"] >= 1
        device.shutdown()


class TestCacheTransfers:
    def test_assembled_features_match_uncached(self, setup):
        dataset, store, batch = setup
        device = Device()
        cache = DeviceFeatureCache(
            device, store, hottest_nodes(dataset.graph, 500)
        )
        cached_out = transfer_batch_with_cache(device, cache, batch)
        plain_out = device.transfer_batch(batch)
        np.testing.assert_allclose(
            cached_out.xs.data, plain_out.xs.data, rtol=1e-3, atol=1e-4
        )
        device.shutdown()

    def test_transfer_volume_reduced(self, setup):
        dataset, store, batch = setup
        device = Device()
        plain = device.transfer_batch(batch)
        plain_bytes = device.bytes_transferred
        device.reset_stats()
        cache = DeviceFeatureCache(device, store, hottest_nodes(dataset.graph, 800))
        device.reset_stats()  # exclude the one-time cache upload
        transfer_batch_with_cache(device, cache, batch)
        assert device.bytes_transferred < plain_bytes
        assert cache.bytes_saved > 0
        assert cache.hit_rate() > 0.05
        device.shutdown()

    def test_hot_cache_beats_random_cache(self, setup):
        """Degree-ordered caching captures more sampled nodes than random."""
        dataset, store, batch = setup
        device = Device()
        size = 600
        hot = DeviceFeatureCache(device, store, hottest_nodes(dataset.graph, size))
        rng = np.random.default_rng(3)
        random_ids = rng.choice(dataset.num_nodes, size=size, replace=False)
        rand = DeviceFeatureCache(device, store, random_ids)
        transfer_batch_with_cache(device, hot, batch)
        transfer_batch_with_cache(device, rand, batch)
        assert hot.hit_rate() > rand.hit_rate()
        device.shutdown()

    def test_empty_cache_is_plain_transfer(self, setup):
        dataset, store, batch = setup
        device = Device()
        cache = DeviceFeatureCache(device, store, np.empty(0, dtype=np.int64))
        out = transfer_batch_with_cache(device, cache, batch)
        assert cache.hit_rate() == 0.0
        np.testing.assert_allclose(
            out.xs.data, batch.xs[: len(batch.mfg.n_id)].astype(np.float32),
            rtol=1e-3,
        )
        device.shutdown()

    def test_full_cache_transfers_no_features(self, setup):
        dataset, store, batch = setup
        device = Device()
        cache = DeviceFeatureCache(
            device, store, np.arange(dataset.num_nodes)
        )
        device.reset_stats()
        transfer_batch_with_cache(device, cache, batch)
        # only labels + adjacency moved
        expected = batch.ys.nbytes + batch.mfg.nbytes()
        assert device.bytes_transferred == expected
        assert cache.misses == 0
        device.shutdown()
