"""Shared-memory carriers: arena layout, MFG codec, slot pool, dataset."""

import numpy as np
import pytest

from repro.graph import CSRGraph
from repro.runtime import (
    SharedArena,
    SharedDataset,
    SharedSlotPool,
    decode_mfg,
    encode_mfg,
)
from repro.runtime.shm import header_capacity, mfg_ints_needed
from repro.sampling import FastNeighborSampler
from repro.slicing import FeatureStore


class TestSharedArena:
    def test_create_attach_roundtrip(self):
        arrays = {
            "a": np.arange(10, dtype=np.int64),
            "b": np.linspace(0, 1, 7, dtype=np.float16).reshape(1, 7),
            "c": np.zeros(3, dtype=np.uint8),
        }
        arena = SharedArena.create(arrays)
        try:
            attached = SharedArena.attach(arena.spec())
            for name, array in arrays.items():
                np.testing.assert_array_equal(attached.array(name), array)
                assert attached.array(name).dtype == array.dtype
            attached.close()
        finally:
            arena.close()
            arena.unlink()

    def test_writes_are_shared(self):
        arena = SharedArena.allocate({"x": ((4,), np.int64)})
        try:
            attached = SharedArena.attach(arena.spec())
            attached.array("x")[:] = [9, 8, 7, 6]
            np.testing.assert_array_equal(arena.array("x"), [9, 8, 7, 6])
            attached.close()
        finally:
            arena.close()
            arena.unlink()

    def test_arrays_are_aligned(self):
        arena = SharedArena.allocate(
            {"a": ((3,), np.uint8), "b": ((5,), np.float16), "c": ((2,), np.int64)}
        )
        try:
            for _, (offset, _, _) in arena._layout.items():
                assert offset % 64 == 0
        finally:
            arena.close()
            arena.unlink()

    def test_close_and_unlink_idempotent(self):
        arena = SharedArena.allocate({"x": ((2,), np.int64)})
        arena.close()
        arena.close()
        arena.unlink()
        arena.unlink()

    def test_attacher_never_unlinks(self):
        arena = SharedArena.allocate({"x": ((2,), np.int64)})
        try:
            attached = SharedArena.attach(arena.spec())
            attached.close()
            attached.unlink()  # must be a no-op for non-owners
            # segment still attachable
            again = SharedArena.attach(arena.spec())
            again.close()
        finally:
            arena.close()
            arena.unlink()


@pytest.fixture()
def sampled_mfg(tiny_dataset, rng):
    sampler = FastNeighborSampler(tiny_dataset.graph, [5, 3])
    nodes = rng.choice(tiny_dataset.split.train, size=24, replace=False)
    return sampler.sample(nodes, np.random.default_rng(7))


class TestMFGCodec:
    def _roundtrip(self, mfg):
        layers = len(mfg.adjs)
        header = np.zeros(header_capacity(layers), dtype=np.int64)
        ints = np.zeros(mfg_ints_needed(mfg), dtype=np.int64)
        assert encode_mfg(mfg, header, ints)
        return decode_mfg(header, ints)

    def test_roundtrip_preserves_everything(self, sampled_mfg):
        out = self._roundtrip(sampled_mfg)
        np.testing.assert_array_equal(out.n_id, sampled_mfg.n_id)
        assert out.batch_size == sampled_mfg.batch_size
        assert len(out.adjs) == len(sampled_mfg.adjs)
        for got, want in zip(out.adjs, sampled_mfg.adjs):
            np.testing.assert_array_equal(got.edge_index, want.edge_index)
            assert got.size == want.size
            assert got.e_id is None
        out.validate()

    def test_decode_copies_out_of_the_slot(self, sampled_mfg):
        """The decoded MFG must survive slot reuse: recycling the buffer
        after the DMA copy cannot corrupt a batch still in compute."""
        layers = len(sampled_mfg.adjs)
        header = np.zeros(header_capacity(layers), dtype=np.int64)
        ints = np.zeros(mfg_ints_needed(sampled_mfg), dtype=np.int64)
        encode_mfg(sampled_mfg, header, ints)
        out = decode_mfg(header, ints)
        ints[:] = -1  # next batch overwrites the slot
        header[:] = 0
        np.testing.assert_array_equal(out.n_id, sampled_mfg.n_id)
        for got, want in zip(out.adjs, sampled_mfg.adjs):
            np.testing.assert_array_equal(got.edge_index, want.edge_index)

    def test_encode_reports_overflow(self, sampled_mfg):
        header = np.zeros(header_capacity(len(sampled_mfg.adjs)), dtype=np.int64)
        too_small = np.zeros(mfg_ints_needed(sampled_mfg) - 1, dtype=np.int64)
        assert not encode_mfg(sampled_mfg, header, too_small)
        short_header = np.zeros(header_capacity(len(sampled_mfg.adjs) - 1), dtype=np.int64)
        big_enough = np.zeros(mfg_ints_needed(sampled_mfg), dtype=np.int64)
        assert not encode_mfg(sampled_mfg, short_header, big_enough)


class TestSharedDataset:
    def test_attach_sees_identical_dataset(self, tiny_dataset):
        store = FeatureStore(tiny_dataset.features, tiny_dataset.labels)
        shared = SharedDataset.create(tiny_dataset.graph, store)
        try:
            attached = SharedDataset.attach(shared.spec())
            np.testing.assert_array_equal(
                attached.graph.indptr, tiny_dataset.graph.indptr
            )
            np.testing.assert_array_equal(
                attached.graph.indices, tiny_dataset.graph.indices
            )
            # byte-identical feature slab (fp16 conversion happened once,
            # in the parent store — the determinism contract)
            np.testing.assert_array_equal(attached.store.features, store.features)
            assert attached.store.features.dtype == store.features.dtype
            np.testing.assert_array_equal(attached.store.labels, store.labels)
            attached.close()
        finally:
            shared.close()
            shared.unlink()

    def test_sampling_over_shared_views_matches(self, tiny_dataset, rng):
        store = FeatureStore(tiny_dataset.features, tiny_dataset.labels)
        shared = SharedDataset.create(tiny_dataset.graph, store)
        try:
            attached = SharedDataset.attach(shared.spec())
            nodes = rng.choice(tiny_dataset.split.train, size=16, replace=False)
            a = FastNeighborSampler(tiny_dataset.graph, [4, 3]).sample(
                nodes, np.random.default_rng(3)
            )
            b = FastNeighborSampler(attached.graph, [4, 3]).sample(
                nodes, np.random.default_rng(3)
            )
            np.testing.assert_array_equal(a.n_id, b.n_id)
            for adj_a, adj_b in zip(a.adjs, b.adjs):
                np.testing.assert_array_equal(adj_a.edge_index, adj_b.edge_index)
            attached.close()
        finally:
            shared.close()
            shared.unlink()


class TestSharedSlotPool:
    def _pool(self, **kwargs):
        defaults = dict(
            num_slots=2,
            max_rows=16,
            num_features=4,
            max_batch=8,
            mfg_capacity=128,
            max_layers=2,
        )
        defaults.update(kwargs)
        return SharedSlotPool(**defaults)

    def test_is_a_pinned_pool(self):
        pool = self._pool()
        try:
            a = pool.acquire()
            assert a.features.shape == (16, 4)
            assert a.header.shape == (header_capacity(2),)
            assert a.mfg_ints.shape == (128,)
            pool.release(a)
            assert pool.free_slots() == 2
        finally:
            pool.close()
            pool.unlink()

    def test_worker_views_alias_parent_slots(self):
        pool = self._pool()
        try:
            views = SharedSlotPool.attach_views(pool.spec())
            assert len(views) == pool.total_slots
            views[1].features[:] = 2.5
            views[1].labels[:] = 42
            views[1].header[0] = 9
            views[1].mfg_ints[:3] = [1, 2, 3]
            parent = pool._buffers[1]
            assert float(parent.features[0, 0]) == 2.5
            assert int(parent.labels[0]) == 42
            assert int(parent.header[0]) == 9
            np.testing.assert_array_equal(parent.mfg_ints[:3], [1, 2, 3])
        finally:
            pool.close()
            pool.unlink()

    def test_slots_do_not_overlap(self):
        pool = self._pool()
        try:
            a, b = pool._buffers
            a.features[:] = 1.0
            b.features[:] = 2.0
            assert float(a.features[0, 0]) == 1.0
            a.mfg_ints[:] = 5
            assert int(b.mfg_ints[0]) != 5 or (b.mfg_ints == 0).all()
        finally:
            pool.close()
            pool.unlink()

    def test_nbytes_counts_the_arena(self):
        pool = self._pool()
        try:
            assert pool.nbytes() >= 2 * (16 * 4 * 2 + 8 * 8 + 128 * 8)
        finally:
            pool.close()
            pool.unlink()
