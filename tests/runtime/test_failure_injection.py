"""Failure injection: errors must propagate, never hang the pipeline."""

import numpy as np
import pytest

from repro.runtime import (
    BatchPreparationPool,
    Device,
    PipelinedExecutor,
    QueueClosed,
    SerialExecutor,
)
from repro.sampling import FastNeighborSampler
from repro.sampling.base import NeighborSamplerBase
from repro.slicing import FeatureStore


class ExplodingSampler(NeighborSamplerBase):
    """Raises after N successful samples."""

    def __init__(self, graph, fanouts, explode_after=2):
        super().__init__(graph, fanouts)
        self._inner = FastNeighborSampler(graph, fanouts)
        self.remaining = explode_after

    def sample(self, batch_nodes, rng):
        if self.remaining <= 0:
            raise RuntimeError("sampler exploded")
        self.remaining -= 1
        return self._inner.sample(batch_nodes, rng)


def _batches(dataset, count=6, size=16):
    rng = np.random.default_rng(0)
    return [
        rng.choice(dataset.num_nodes, size=size, replace=False) for _ in range(count)
    ]


class TestWorkerPoolFailures:
    def test_worker_error_propagates_via_join(self, small_products):
        store = FeatureStore(small_products.features, small_products.labels)
        pool = BatchPreparationPool(
            lambda: ExplodingSampler(small_products.graph, [5, 3], explode_after=2),
            store,
            num_workers=1,
        )
        queue, join = pool.run(_batches(small_products))
        drained = 0
        with pytest.raises((QueueClosed, RuntimeError)):
            while True:
                queue.get(timeout=5)
                drained += 1
        assert drained == 2
        with pytest.raises(RuntimeError, match="exploded"):
            join()

    def test_serial_executor_error_is_immediate(self, small_products):
        store = FeatureStore(small_products.features, small_products.labels)
        device = Device()
        executor = SerialExecutor(
            ExplodingSampler(small_products.graph, [5, 3], explode_after=1),
            store,
            device,
        )
        with pytest.raises(RuntimeError, match="exploded"):
            executor.run_epoch(_batches(small_products), lambda b: 0.0)
        device.shutdown()

    def test_train_fn_error_propagates_from_pipeline(self, small_products):
        store = FeatureStore(small_products.features, small_products.labels)
        device = Device()
        executor = PipelinedExecutor(
            lambda: FastNeighborSampler(small_products.graph, [5, 3]),
            store,
            device,
            num_workers=1,
            max_batch_hint=16,
        )

        calls = []

        def bad_train_fn(batch):
            calls.append(batch.batch_index)
            if len(calls) == 2:
                raise ValueError("loss diverged")
            return 0.0

        with pytest.raises(ValueError, match="diverged"):
            executor.run_epoch(_batches(small_products), bad_train_fn)
        device.shutdown()
        assert len(calls) == 2

    def test_executor_reusable_after_train_fn_error(self, small_products):
        """After a failed epoch, workers unblock and buffers recycle, so the
        same executor can run a clean epoch."""
        store = FeatureStore(small_products.features, small_products.labels)
        device = Device()
        executor = PipelinedExecutor(
            lambda: FastNeighborSampler(small_products.graph, [5, 3]),
            store,
            device,
            num_workers=2,
            pinned_slots=2,
            max_batch_hint=16,
        )

        def failing(batch):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            executor.run_epoch(_batches(small_products), failing)
        # workers from the failed epoch drain away; buffers come back
        for _ in range(100):
            if executor.pinned_pool.free_slots() == executor.pinned_pool.total_slots:
                break
            import time

            time.sleep(0.01)
        stats = executor.run_epoch(_batches(small_products), lambda b: 0.0)
        assert stats.num_batches == 6
        device.shutdown()
