"""Tracer: interval accounting and ASCII rendering."""

from repro.runtime import Tracer, render_timeline


class TestTracer:
    def test_span_records_event(self):
        tracer = Tracer()
        with tracer.span("train", "gpu", 0):
            pass
        assert len(tracer.events) == 1
        assert tracer.events[0].name == "train"
        assert tracer.events[0].duration >= 0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("train", "gpu", 0):
            pass
        assert tracer.events == []

    def test_stage_totals(self):
        tracer = Tracer()
        tracer.record("sample", "cpu:0", 0, 0.0, 1.0)
        tracer.record("sample", "cpu:1", 1, 0.5, 1.0)
        tracer.record("train", "gpu", 0, 1.0, 1.5)
        totals = tracer.stage_totals()
        assert abs(totals["sample"] - 1.5) < 1e-9
        assert abs(totals["train"] - 0.5) < 1e-9

    def test_resource_busy_merges_overlaps(self):
        tracer = Tracer()
        tracer.record("a", "gpu", 0, 0.0, 2.0)
        tracer.record("b", "gpu", 1, 1.0, 3.0)  # overlapping
        tracer.record("c", "gpu", 2, 5.0, 6.0)  # disjoint
        assert abs(tracer.resource_busy("gpu") - 4.0) < 1e-9

    def test_makespan_and_utilization(self):
        tracer = Tracer()
        tracer.record("train", "gpu", 0, 0.0, 1.0)
        tracer.record("transfer", "dma", 0, 0.0, 4.0)
        assert abs(tracer.makespan() - 4.0) < 1e-9
        assert abs(tracer.gpu_utilization() - 0.25) < 1e-9

    def test_empty_trace(self):
        tracer = Tracer()
        assert tracer.makespan() == 0.0
        assert tracer.gpu_utilization() == 0.0


class TestRenderer:
    def test_renders_lanes_and_glyphs(self):
        tracer = Tracer()
        tracer.record("sample", "cpu:0", 0, 0.0, 1.0)
        tracer.record("transfer", "dma", 0, 1.0, 2.0)
        tracer.record("train", "gpu", 0, 2.0, 3.0)
        out = render_timeline(tracer, width=30)
        assert "cpu:0" in out and "dma" in out and "gpu" in out
        assert "S" in out and "T" in out and "C" in out
        assert "legend" in out

    def test_empty_render(self):
        assert "empty" in render_timeline(Tracer())

    def test_explicit_resource_order(self):
        tracer = Tracer()
        tracer.record("train", "gpu", 0, 0.0, 1.0)
        tracer.record("sample", "cpu:0", 0, 0.0, 1.0)
        out = render_timeline(tracer, resources=["gpu", "cpu:0"])
        lines = out.splitlines()
        assert lines[0].strip().startswith("gpu")


class TestShimDeprecation:
    """``repro.runtime.trace`` warns on first import — and only then."""

    def _fresh_import(self):
        import importlib
        import sys
        import warnings

        sys.modules.pop("repro.runtime.trace", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.import_module("repro.runtime.trace")
        return [w for w in caught if issubclass(w.category, DeprecationWarning)]

    def test_warns_exactly_once_on_import(self):
        warned = self._fresh_import()
        assert len(warned) == 1
        assert "repro.telemetry.tracer" in str(warned[0].message)

    def test_cached_reimport_does_not_warn_again(self):
        import importlib
        import warnings

        self._fresh_import()  # ensure the module is cached
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.import_module("repro.runtime.trace")
            from repro.runtime import trace  # noqa: F401
        assert [w for w in caught if issubclass(w.category, DeprecationWarning)] == []

    def test_shim_still_exports_the_api(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.runtime import trace as shim

        assert shim.Tracer is Tracer
        assert shim.render_timeline is render_timeline
        assert set(shim.__all__) >= {"TraceEvent", "Tracer", "render_timeline"}
