"""Staged-pipeline runtime: accounting, lifecycle, errors, determinism.

Covers the PR-level guarantees of :mod:`repro.runtime.stages`:

- ``EpochStats.breakdown()`` includes ``prep_wait`` so overlapped-executor
  fractions sum to ~1.0 (regression for the silent under-reporting bug);
- a stage raising mid-epoch surfaces a :class:`StageError` carrying the
  failing batch index, never leaks pinned buffers, and leaves the executor
  reusable;
- envelopes are delivered to compute in batch-index order regardless of
  worker count, so multi-worker runs match serial runs exactly.
"""

import time

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import Adam
from repro.runtime import (
    ComputeStage,
    Device,
    EpochStats,
    PipelinedExecutor,
    PrepareStage,
    SampleStage,
    SerialExecutor,
    SliceStage,
    StagedExecutor,
    StagedPipeline,
    StageError,
)
from repro.sampling import FastNeighborSampler
from repro.sampling.base import NeighborSamplerBase
from repro.slicing import FeatureStore
from repro.tensor import Tensor, functional as F


def _batches(dataset, count=6, size=16):
    rng = np.random.default_rng(0)
    return [
        rng.choice(dataset.num_nodes, size=size, replace=False) for _ in range(count)
    ]


def _make_train_fn(dataset, seed=0):
    model = build_model(
        "sage",
        dataset.num_features,
        16,
        dataset.num_classes,
        num_layers=2,
        rng=np.random.default_rng(seed),
    )
    optimizer = Adam(model.parameters(), lr=3e-3)

    def fn(batch):
        model.train()
        optimizer.zero_grad()
        loss = F.nll_loss(model(Tensor(batch.xs.data), batch.mfg.adjs), batch.ys.data)
        loss.backward()
        optimizer.step()
        return loss.item()

    return fn


class ArmedSampler(NeighborSamplerBase):
    """Raises once the shared trigger's countdown reaches zero, then only
    while the trigger stays armed (lets a second epoch run clean)."""

    def __init__(self, graph, fanouts, trigger):
        super().__init__(graph, fanouts)
        self._inner = FastNeighborSampler(graph, fanouts)
        self.trigger = trigger

    def sample(self, batch_nodes, rng):
        if self.trigger["armed"]:
            self.trigger["remaining"] -= 1
            if self.trigger["remaining"] < 0:
                self.trigger["armed"] = False
                raise RuntimeError("sampler exploded")
        return self._inner.sample(batch_nodes, rng)


# ----------------------------------------------------------------------
# Satellite: breakdown() accounting
# ----------------------------------------------------------------------
class TestBreakdownAccounting:
    def test_breakdown_includes_prep_wait(self):
        """Regression: starvation used to be dropped from the breakdown, so
        pipelined fractions silently summed to well under 1.0."""
        stats = EpochStats(
            epoch_time=2.0,
            sample_time=0.5,
            slice_time=0.3,
            transfer_time=0.4,
            train_time=1.0,
            prep_wait_time=0.6,
            overlapped=True,
        )
        frac = stats.breakdown()
        assert frac["prep_wait"] == pytest.approx(0.3)
        # Off-thread prep is busy time, not caller-blocking time.
        assert frac["batch_prep"] == 0.0
        assert sum(frac.values()) == pytest.approx(1.0)

    def test_storage_bound_attribution_from_mmap_wait(self):
        """The per-epoch mmap-wait delta refines prep-bound to
        storage-bound when slab faults dominate prep seconds."""
        stats = EpochStats(
            epoch_time=10.0,
            sample_time=4.0,
            slice_time=3.0,
            transfer_time=0.5,
            train_time=2.0,
            mmap_wait_s=5.0,
        )
        attr = stats.attribution()
        assert attr.verdict == "storage-bound"
        assert attr.stalls["mmap_wait_s"] == pytest.approx(5.0)
        # Same epoch served from RAM stays plain prep-bound.
        stats.mmap_wait_s = 0.0
        assert stats.attribution().verdict == "prep-bound"

    def test_breakdown_serial_counts_prep_as_blocking(self):
        stats = EpochStats(
            epoch_time=2.0,
            sample_time=0.5,
            slice_time=0.3,
            transfer_time=0.4,
            train_time=0.8,
            overlapped=False,
        )
        frac = stats.breakdown()
        assert frac["batch_prep"] == pytest.approx(0.4)
        assert frac["prep_wait"] == 0.0
        assert sum(frac.values()) == pytest.approx(1.0)

    def test_pipelined_epoch_fractions_sum_to_one(self, small_products):
        """On a real overlapped epoch the blocking fractions must account
        for (almost) the whole wall time."""
        store = FeatureStore(small_products.features, small_products.labels)
        device = Device()
        executor = PipelinedExecutor(
            lambda: FastNeighborSampler(small_products.graph, [5, 3]),
            store,
            device,
            num_workers=2,
            max_batch_hint=16,
        )

        def slow_train(batch):
            time.sleep(0.005)
            return 0.0

        stats = executor.run_epoch(_batches(small_products, count=8), slow_train)
        device.shutdown()
        assert stats.overlapped
        total = sum(stats.breakdown().values())
        assert 0.5 < total <= 1.05


# ----------------------------------------------------------------------
# Lifecycle: start / next_envelope / drain, delivery order
# ----------------------------------------------------------------------
class TestLifecycle:
    def _prepare_pipeline(self, dataset, depth, workers=1):
        store = FeatureStore(dataset.features, dataset.labels)
        return StagedPipeline(
            [
                PrepareStage(
                    lambda: FastNeighborSampler(dataset.graph, [5, 3]),
                    store,
                    workers=workers,
                )
            ],
            prefetch_depth=depth,
            seed=3,
        )

    @pytest.mark.parametrize("depth,workers", [(0, 1), (2, 1), (2, 3)])
    def test_envelopes_delivered_in_index_order(self, small_products, depth, workers):
        pipeline = self._prepare_pipeline(small_products, depth, workers)
        run = pipeline.start(_batches(small_products, count=7))
        indices = []
        while True:
            env = run.next_envelope()
            if env is None:
                break
            assert env.sliced is not None
            indices.append(env.index)
        run.drain()
        assert indices == list(range(7))

    def test_externally_driven_run_matches_inline(self, small_products):
        """start() consumers (the DDP barrier loop) see the same batches as
        the inline policy."""
        inline = self._prepare_pipeline(small_products, 0)
        overlapped = self._prepare_pipeline(small_products, 3, workers=2)
        batches = _batches(small_products, count=5)
        run_a, run_b = inline.start(batches), overlapped.start(batches)
        while True:
            env_a, env_b = run_a.next_envelope(), run_b.next_envelope()
            assert (env_a is None) == (env_b is None)
            if env_a is None:
                break
            np.testing.assert_array_equal(env_a.sliced.mfg.n_id, env_b.sliced.mfg.n_id)
            np.testing.assert_array_equal(env_a.sliced.xs, env_b.sliced.xs)
        run_a.drain()
        run_b.drain()

    def test_bounded_queues_enforce_prefetch_depth(self, small_products):
        pipeline = self._prepare_pipeline(small_products, 2)
        run = pipeline.start(_batches(small_products, count=6))
        assert all(q.capacity == 2 for q in run.queues)
        while run.next_envelope() is not None:
            pass
        run.drain()

    def test_compute_stage_required_for_run_epoch(self, small_products):
        pipeline = self._prepare_pipeline(small_products, 0)
        with pytest.raises(ValueError, match="ComputeStage"):
            pipeline.run_epoch(_batches(small_products))


# ----------------------------------------------------------------------
# Satellite: exception safety
# ----------------------------------------------------------------------
class TestErrorPropagation:
    def _staged_executor(self, dataset, trigger, **kwargs):
        store = FeatureStore(dataset.features, dataset.labels)
        device = Device()
        executor = StagedExecutor(
            lambda: ArmedSampler(dataset.graph, [5, 3], trigger),
            store,
            device,
            max_batch_hint=16,
            **kwargs,
        )
        return executor, device

    def test_stage_error_names_stage_and_batch_index(self, small_products):
        trigger = {"armed": True, "remaining": 2}
        executor, device = self._staged_executor(
            small_products, trigger, num_workers=1
        )
        with pytest.raises(StageError) as excinfo:
            executor.run_epoch(_batches(small_products), lambda b: 0.0)
        device.shutdown()
        assert excinfo.value.stage == "sample"
        assert excinfo.value.batch_index == 2
        assert "exploded" in str(excinfo.value)
        assert isinstance(excinfo.value.original, RuntimeError)

    def test_stage_error_releases_all_pinned_buffers(self, small_products):
        trigger = {"armed": True, "remaining": 3}
        executor, device = self._staged_executor(
            small_products, trigger, num_workers=2, pinned_slots=2
        )
        with pytest.raises(StageError):
            executor.run_epoch(_batches(small_products, count=8), lambda b: 0.0)
        pool = executor.pinned_pool
        deadline = time.time() + 5
        while pool.free_slots() < pool.total_slots and time.time() < deadline:
            time.sleep(0.01)
        device.shutdown()
        assert pool.free_slots() == pool.total_slots
        counts = executor.counters.snapshot()
        assert counts.get("pinned_acquires", 0) == counts.get("pinned_releases", 0)

    def test_compute_error_releases_all_pinned_buffers(self, small_products):
        store = FeatureStore(small_products.features, small_products.labels)
        device = Device()
        executor = PipelinedExecutor(
            lambda: FastNeighborSampler(small_products.graph, [5, 3]),
            store,
            device,
            num_workers=2,
            pinned_slots=2,
            max_batch_hint=16,
        )

        def diverge(batch):
            if batch.batch_index >= 1:
                raise ValueError("loss diverged")
            return 0.0

        with pytest.raises(ValueError, match="diverged"):
            executor.run_epoch(_batches(small_products, count=8), diverge)
        pool = executor.pinned_pool
        deadline = time.time() + 5
        while pool.free_slots() < pool.total_slots and time.time() < deadline:
            time.sleep(0.01)
        device.shutdown()
        assert pool.free_slots() == pool.total_slots
        counts = executor.counters.snapshot()
        assert counts.get("pinned_acquires", 0) == counts.get("pinned_releases", 0)

    def test_executor_reusable_after_stage_error(self, small_products):
        trigger = {"armed": True, "remaining": 2}
        executor, device = self._staged_executor(
            small_products, trigger, num_workers=2, pinned_slots=2
        )
        batches = _batches(small_products, count=6)
        with pytest.raises(StageError):
            executor.run_epoch(batches, lambda b: 0.0)
        pool = executor.pinned_pool
        deadline = time.time() + 5
        while pool.free_slots() < pool.total_slots and time.time() < deadline:
            time.sleep(0.01)
        stats = executor.run_epoch(batches, lambda b: 0.0)
        device.shutdown()
        assert stats.num_batches == 6
        assert executor.counters["pipeline_cancelled"] >= 1
        assert executor.counters["pipeline_stage_errors"] == 1


# ----------------------------------------------------------------------
# Determinism across policies
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_multiworker_staged_matches_serial(self, small_products):
        store = FeatureStore(small_products.features, small_products.labels)
        batches = _batches(small_products, count=6)

        device = Device()
        serial = SerialExecutor(
            FastNeighborSampler(small_products.graph, [5, 3]), store, device, seed=0
        )
        serial_stats = serial.run_epoch(batches, _make_train_fn(small_products))
        device.shutdown()

        device = Device()
        staged = StagedExecutor(
            lambda: FastNeighborSampler(small_products.graph, [5, 3]),
            store,
            device,
            num_workers=3,
            max_batch_hint=16,
            seed=0,
        )
        staged_stats = staged.run_epoch(batches, _make_train_fn(small_products))
        device.shutdown()

        assert serial_stats.losses == staged_stats.losses

    def test_custom_rng_entries_policy(self, small_products):
        """Two pipelines with the same rng_entries policy produce identical
        MFGs even when batch indices differ (the inference cursor contract)."""
        store = FeatureStore(small_products.features, small_products.labels)

        def make(entries):
            return StagedPipeline(
                [
                    SampleStage(lambda: FastNeighborSampler(small_products.graph, [4])),
                    SliceStage(store),
                    ComputeStage(name="infer"),
                ],
                rng_entries=entries,
                seed=9,
            )

        nodes = _batches(small_products, count=1)[0]
        seen = []
        make(lambda i: [9, 5]).run_epoch(
            [nodes], lambda s: 0.0, on_result=lambda e: seen.append(e.sliced.mfg.n_id)
        )
        make(lambda i: [9, i + 5]).run_epoch(
            [nodes], lambda s: 0.0, on_result=lambda e: seen.append(e.sliced.mfg.n_id)
        )
        np.testing.assert_array_equal(seen[0], seen[1])
