"""Work queues: dynamic balancing, backpressure, close semantics."""

import threading
import time

import pytest

from repro.runtime import (
    BoundedOutputQueue,
    InputQueue,
    QueueClosed,
    StaticPartitionQueue,
)


class TestInputQueue:
    def test_fifo_order(self):
        q = InputQueue([1, 2, 3])
        assert [q.get(), q.get(), q.get()] == [1, 2, 3]
        assert q.get() is None

    def test_put_then_get(self):
        q = InputQueue()
        q.put("x")
        assert q.get() == "x"

    def test_len(self):
        q = InputQueue([1, 2])
        assert len(q) == 2
        q.get()
        assert len(q) == 1

    def test_concurrent_consumers_get_disjoint_items(self):
        q = InputQueue(range(200))
        seen = [[] for _ in range(4)]

        def consume(i):
            while True:
                item = q.get()
                if item is None:
                    return
                seen[i].append(item)

        threads = [threading.Thread(target=consume, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flat = sorted(x for part in seen for x in part)
        assert flat == list(range(200))


class TestStaticPartitionQueue:
    def test_round_robin_striping(self):
        q = StaticPartitionQueue(range(6), num_workers=2)
        assert [q.get(0), q.get(0), q.get(0)] == [0, 2, 4]
        assert [q.get(1), q.get(1), q.get(1)] == [1, 3, 5]

    def test_worker_stripe_isolation(self):
        # the static scheme's weakness: worker 1 idles with work left in 0
        q = StaticPartitionQueue(range(4), num_workers=2)
        q.get(1)
        q.get(1)
        assert q.get(1) is None  # stripe 1 exhausted
        assert len(q) == 2  # stripe 0 still full

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            StaticPartitionQueue([], num_workers=0)


class TestBoundedOutputQueue:
    def test_put_get_roundtrip(self):
        q = BoundedOutputQueue(2)
        q.put("a")
        assert q.get() == "a"

    def test_capacity_blocks_producer(self):
        q = BoundedOutputQueue(1)
        q.put(1)
        produced_second = threading.Event()

        def producer():
            q.put(2)
            produced_second.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not produced_second.is_set()  # blocked at capacity
        assert q.get() == 1
        t.join(timeout=2)
        assert produced_second.is_set()

    def test_get_blocks_until_put(self):
        q = BoundedOutputQueue(1)
        result = []

        def consumer():
            result.append(q.get())

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        time.sleep(0.02)
        q.put("late")
        t.join(timeout=2)
        assert result == ["late"]

    def test_close_drains_then_raises(self):
        q = BoundedOutputQueue(4)
        q.put(1)
        q.put(2)
        q.close()
        assert q.get() == 1
        assert q.get() == 2
        with pytest.raises(QueueClosed):
            q.get()

    def test_put_after_close_raises(self):
        q = BoundedOutputQueue(1)
        q.close()
        with pytest.raises(QueueClosed):
            q.put(1)

    def test_get_timeout(self):
        q = BoundedOutputQueue(1)
        with pytest.raises(TimeoutError):
            q.get(timeout=0.01)

    def test_close_wakes_blocked_consumer(self):
        q = BoundedOutputQueue(1)
        outcome = []

        def consumer():
            try:
                q.get()
            except QueueClosed:
                outcome.append("closed")

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        time.sleep(0.02)
        q.close()
        t.join(timeout=2)
        assert outcome == ["closed"]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedOutputQueue(0)
