"""Timers and table/bar rendering."""

import time

import pytest

from repro.telemetry import (
    Counters,
    StageTimers,
    Timer,
    format_bar_chart,
    format_seconds,
    format_table,
)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        for _ in range(3):
            with t:
                time.sleep(0.002)
        assert t.count == 3
        assert t.total >= 0.006
        assert t.mean == pytest.approx(t.total / 3)

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.total == 0.0 and t.count == 0

    def test_mean_of_empty(self):
        assert Timer().mean == 0.0

    def test_merge_accumulates_totals_and_counts(self):
        left, right = Timer(), Timer()
        left.total, left.count = 1.0, 2
        right.total, right.count = 0.5, 3
        left.merge(right)
        assert left.total == pytest.approx(1.5)
        assert left.count == 5
        # The source stopwatch is untouched.
        assert right.total == pytest.approx(0.5) and right.count == 3


class TestStageTimers:
    def test_named_accumulation(self):
        timers = StageTimers()
        with timers.time("sample"):
            time.sleep(0.001)
        with timers.time("sample"):
            pass
        with timers.time("train"):
            pass
        assert timers["sample"].count == 2
        assert set(timers.totals()) == {"sample", "train"}

    def test_reset_all(self):
        timers = StageTimers()
        with timers.time("x"):
            pass
        timers.reset()
        assert timers["x"].total == 0.0

    def test_merge_is_name_wise(self):
        pool, worker = StageTimers(), StageTimers()
        with pool.time("sample"):
            pass
        with worker.time("sample"):
            pass
        with worker.time("slice"):
            pass
        pool.merge(worker)
        assert pool["sample"].count == 2
        assert pool["slice"].count == 1
        assert set(pool.totals()) == {"sample", "slice"}


class TestFormatting:
    def test_format_seconds_scales(self):
        assert format_seconds(13.9) == "13.9s"
        assert format_seconds(2.42) == "2.42s"
        assert format_seconds(0.0123) == "12.3ms"
        assert format_seconds(45e-6) == "45us"

    def test_format_table_alignment(self):
        rows = [
            {"dataset": "arxiv", "epoch": 1.7},
            {"dataset": "products", "epoch": 8.6},
        ]
        out = format_table(rows, title="Table 1")
        lines = out.splitlines()
        assert lines[0] == "Table 1"
        assert "dataset" in lines[1] and "epoch" in lines[1]
        assert "products" in out

    def test_format_table_empty(self):
        assert "empty" in format_table([])

    def test_format_table_golden_output(self):
        rows = [
            {"dataset": "arxiv", "epoch_s": 1.5, "speedup": "2.0x"},
            {"dataset": "products", "epoch_s": 12.25, "speedup": "1.5x"},
        ]
        golden = "\n".join(
            [
                "Table",
                "dataset   epoch_s  speedup",
                "-" * 26,
                "arxiv     1.5      2.0x   ",
                "products  12.25    1.5x   ",
            ]
        )
        assert format_table(rows, title="Table") == golden

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        out = format_table(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_bar_chart_scales_to_peak(self):
        out = format_bar_chart(["x", "yy"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bar_chart_empty(self):
        assert format_bar_chart([], []) == "(empty)"

    def test_bar_chart_zero_values(self):
        out = format_bar_chart(["a"], [0.0])
        assert "a" in out


class TestCounters:
    def test_inc_and_default_zero(self):
        counters = Counters()
        assert counters["missing"] == 0
        counters.inc("a")
        counters.inc("a", 4)
        assert counters["a"] == 5
        assert "a" in counters
        assert "missing" not in counters

    def test_snapshot_is_a_copy(self):
        counters = Counters()
        counters.inc("a", 2)
        snap = counters.snapshot()
        snap["a"] = 99
        assert counters["a"] == 2
        assert sorted(counters) == ["a"]

    def test_merge_counters_and_mappings(self):
        left, right = Counters(), Counters()
        left.inc("a", 1)
        right.inc("a", 2)
        right.inc("b", 3)
        left.merge(right)
        left.merge({"b": 1, "c": 5})
        assert left.snapshot() == {"a": 3, "b": 4, "c": 5}

    def test_reset(self):
        counters = Counters()
        counters.inc("a")
        counters.reset()
        assert counters.snapshot() == {}

    def test_thread_safety_under_contention(self):
        import threading

        counters = Counters()

        def hammer():
            for _ in range(1000):
                counters.inc("hits")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counters["hits"] == 8000
