"""MetricsRegistry: metric kinds, percentiles, merge algebra, collisions."""

import math
import threading

import pytest

from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestCounter:
    def test_monotonic_accumulation(self):
        registry = MetricsRegistry()
        counter = registry.counter("batches")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("batches") is counter

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("batches")
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 0

    def test_describe(self):
        counter = MetricsRegistry().counter("bytes", stage="slice")
        counter.inc(128)
        doc = counter.describe()
        assert doc == {
            "name": "bytes",
            "labels": {"stage": "slice"},
            "kind": "counter",
            "value": 128,
        }


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("free_slots")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3.0

    def test_describe_kind(self):
        assert MetricsRegistry().gauge("depth").describe()["kind"] == "gauge"


class TestHistogramBuckets:
    def test_invalid_boundaries_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h2", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h3", buckets=(2.0, 1.0))

    def test_bucket_assignment_including_overflow(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0, 100.0):
            hist.observe(value)
        # bisect_left: values on a boundary land in that boundary's bin.
        assert hist.counts == [2, 2, 2]
        assert hist.count == 6
        assert hist.sum == pytest.approx(127.5)
        assert hist.min == 0.5 and hist.max == 100.0

    def test_default_time_buckets_are_strictly_increasing(self):
        assert all(
            b2 > b1
            for b1, b2 in zip(DEFAULT_TIME_BUCKETS, DEFAULT_TIME_BUCKETS[1:])
        )
        assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_TIME_BUCKETS[-1] == pytest.approx(500.0)


class TestHistogramPercentiles:
    def test_empty_histogram_reports_nan(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        assert math.isnan(hist.percentile(50))
        assert math.isnan(hist.mean)
        doc = hist.describe()
        assert doc["p50"] is None and doc["min"] is None and doc["max"] is None

    def test_single_sample_is_every_percentile(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        hist.observe(3.7)
        for p in (0, 1, 50, 99, 100):
            assert hist.percentile(p) == pytest.approx(3.7)

    def test_percentiles_clamp_to_observed_range(self):
        hist = MetricsRegistry().histogram("h", buckets=(10.0,))
        hist.observe(4.0)
        hist.observe(6.0)
        assert 4.0 <= hist.percentile(50) <= 6.0
        assert hist.percentile(100) == pytest.approx(6.0)

    def test_interpolation_within_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(0.0, 100.0))
        for value in (10.0, 30.0, 50.0, 70.0, 90.0):
            hist.observe(value)
        # All mass in the (0, 100] bin: p50 interpolates inside it.
        p50 = hist.percentile(50)
        assert 10.0 <= p50 <= 90.0
        assert hist.percentile(10) <= p50 <= hist.percentile(90)

    def test_out_of_range_percentile_rejected(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)


def _hist(values, buckets=(1.0, 10.0, 100.0)):
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=buckets)
    for value in values:
        hist.observe(value)
    return hist


def _state(hist):
    return (tuple(hist.counts), hist.count, hist.sum, hist.min, hist.max)


class TestHistogramMerge:
    def test_merge_accumulates_counts_and_moments(self):
        left = _hist([0.5, 5.0])
        right = _hist([50.0, 500.0])
        left.merge(right)
        assert left.counts == [1, 1, 1, 1]
        assert left.count == 4
        assert left.sum == pytest.approx(555.5)
        assert left.min == 0.5 and left.max == 500.0

    def test_merge_is_associative(self):
        samples = ([0.1, 2.0], [20.0, 0.7], [300.0, 9.0])
        # (a ⊕ b) ⊕ c
        left = _hist(samples[0])
        left.merge(_hist(samples[1]))
        left.merge(_hist(samples[2]))
        # a ⊕ (b ⊕ c)
        right_tail = _hist(samples[1])
        right_tail.merge(_hist(samples[2]))
        right = _hist(samples[0])
        right.merge(right_tail)
        assert _state(left) == _state(right)
        assert left.percentile(90) == pytest.approx(right.percentile(90))

    def test_merge_with_empty_is_identity(self):
        hist = _hist([0.5, 5.0])
        before = _state(hist)
        hist.merge(_hist([]))
        assert _state(hist) == before

    def test_bucket_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _hist([1.0]).merge(_hist([1.0], buckets=(2.0, 20.0)))

    def test_overflow_bucket_survives_merge_into_empty(self):
        # Regression: samples beyond the last boundary live in the +Inf
        # overflow bin; a merge must carry that bin along with count/sum,
        # in both directions and through the registry-level merge.
        populated = _hist([500.0, 1000.0])  # both in the overflow bin
        assert populated.counts[-1] == 2

        empty = _hist([])
        empty.merge(populated)
        assert empty.counts[-1] == 2
        assert empty.count == 2
        assert empty.sum == pytest.approx(1500.0)
        assert empty.percentile(100) == 1000.0

    def test_overflow_bucket_survives_merge_from_empty(self):
        populated = _hist([500.0])
        populated.merge(_hist([]))
        assert populated.counts[-1] == 1
        assert populated.count == 1

    def test_overflow_bucket_survives_registry_merge(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0, 10.0)).observe(99.0)
        target = MetricsRegistry()
        target.histogram("h", buckets=(1.0, 10.0))
        target.merge(source)
        merged = target.get("h")
        assert merged.counts[-1] == 1
        assert merged.count == 1

    def test_merge_snapshot_consistent_under_concurrent_observe(self):
        # The merge snapshots ``other`` under its lock, so the sink's
        # invariant count == sum(counts) must hold after every merge even
        # while a writer hammers the overflow bin.
        import threading

        source = _hist([])
        sink = _hist([])
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                source.observe(500.0)  # overflow bin

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                fresh = _hist([])
                fresh.merge(source)
                assert fresh.count == sum(fresh.counts)
                sink.merge(source)
        finally:
            stop.set()
            thread.join()
        assert sink.count == sum(sink.counts)


class TestTimer:
    def test_time_context_observes_elapsed_seconds(self):
        timer = MetricsRegistry().timer("step")
        with timer.time():
            pass
        with timer.time():
            pass
        assert timer.count == 2
        assert timer.total == timer.sum >= 0.0
        assert timer.describe()["kind"] == "timer"

    def test_observation_recorded_when_body_raises(self):
        timer = MetricsRegistry().timer("step")
        with pytest.raises(RuntimeError):
            with timer.time():
                raise RuntimeError("boom")
        assert timer.count == 1


class TestRegistryIdentity:
    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        a = registry.counter("rows", stage="sample")
        b = registry.counter("rows", stage="slice")
        assert a is not b
        a.inc(3)
        assert registry.value("rows", stage="sample") == 3
        assert registry.value("rows", stage="slice") == 0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        assert registry.counter("x", a=1, b=2) is registry.counter("x", b=2, a=1)

    def test_label_values_stringified(self):
        registry = MetricsRegistry()
        assert registry.counter("x", rank=0) is registry.counter("x", rank="0")

    def test_kind_collision_raises_type_error(self):
        registry = MetricsRegistry()
        registry.counter("depth", stage="sample")
        with pytest.raises(TypeError):
            registry.gauge("depth", stage="sample")
        # Same name under different labels is a different identity: fine.
        registry.gauge("depth", stage="slice")

    def test_timer_histogram_collision(self):
        registry = MetricsRegistry()
        registry.histogram("wait")
        with pytest.raises(TypeError):
            registry.timer("wait")

    def test_get_never_creates(self):
        registry = MetricsRegistry()
        assert registry.get("absent") is None
        assert len(registry) == 0
        assert registry.value("absent", default=7.5) == 7.5


class TestRegistryQueries:
    def test_value_semantics_per_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(9)
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(0.25)
        hist.observe(0.5)
        assert registry.value("c") == 2
        assert registry.value("g") == 9.0
        # Histograms report their *sum* through value().
        assert registry.value("h") == pytest.approx(0.75)

    def test_collect_filters_and_sorts(self):
        registry = MetricsRegistry()
        registry.counter("b", stage="z")
        registry.counter("b", stage="a")
        registry.counter("a")
        names = [(m.name, m.labels) for m in registry.collect()]
        assert names == sorted(names)
        assert [m.labels for m in registry.collect("b")] == [
            (("stage", "a"),),
            (("stage", "z"),),
        ]

    def test_snapshot_is_json_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        json.dumps(registry.snapshot())


class TestRegistryMerge:
    def _populated(self, scale):
        registry = MetricsRegistry()
        registry.counter("batches").inc(2 * scale)
        registry.gauge("depth").set(scale)
        registry.histogram("wait", buckets=(1.0, 10.0)).observe(0.5 * scale)
        registry.timer("step", buckets=(1.0,)).observe(0.1 * scale)
        return registry

    def test_merge_per_kind_semantics(self):
        left, right = self._populated(1), self._populated(2)
        left.merge(right)
        assert left.value("batches") == 6
        assert left.value("depth") == 2.0  # gauge: other wins
        assert left.histogram("wait", buckets=(1.0, 10.0)).count == 2
        assert left.value("step") == pytest.approx(0.3)

    def test_merge_deep_copies_missing_metrics_kind_faithfully(self):
        source = MetricsRegistry()
        source.timer("step", buckets=(1.0,)).observe(0.2)
        target = MetricsRegistry()
        target.merge(source)
        copied = target.get("step")
        assert isinstance(copied, Timer)
        assert copied is not source.get("step")
        copied.observe(0.3)
        assert source.value("step") == pytest.approx(0.2)

    def test_merge_empty_registry_is_identity(self):
        registry = self._populated(1)
        registry.merge(MetricsRegistry())
        assert registry.value("batches") == 2

    def test_reset(self):
        registry = self._populated(1)
        registry.reset()
        assert len(registry) == 0


class TestThreadSafety:
    def test_concurrent_observation_and_creation(self):
        registry = MetricsRegistry()

        def hammer(rank):
            for i in range(500):
                registry.counter("hits").inc()
                registry.histogram(
                    "wait", buckets=(1.0, 10.0), rank=str(rank)
                ).observe(i % 3)

        threads = [threading.Thread(target=hammer, args=(r,)) for r in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.value("hits") == 4000
        assert sum(
            m.count for m in registry.collect("wait")
        ) == 4000

    def test_concurrent_merge(self):
        target = MetricsRegistry()

        def merger():
            source = MetricsRegistry()
            source.counter("n").inc(10)
            source.histogram("h", buckets=(1.0,)).observe(0.5)
            for _ in range(50):
                target.merge(source)

        threads = [threading.Thread(target=merger) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert target.value("n") == 2000
        assert target.histogram("h", buckets=(1.0,)).count == 200
