"""ProbeSampler / ProbeRing: continuous-monitoring contract tests."""

import threading
import time

import numpy as np
import pytest

from repro.telemetry.monitor import (
    DEFAULT_PROBE_INTERVAL,
    ProbeRing,
    ProbeSampler,
)


class TestProbeRing:
    def test_append_and_series_in_order(self):
        ring = ProbeRing("q", unit="batches", capacity=8)
        for i in range(5):
            ring.append(float(i), float(i * 10))
        t, v = ring.series()
        assert list(t) == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert list(v) == [0.0, 10.0, 20.0, 30.0, 40.0]
        assert len(ring) == 5
        assert ring.dropped == 0

    def test_wraparound_keeps_newest_chronologically(self):
        ring = ProbeRing("q", capacity=4)
        for i in range(10):
            ring.append(float(i), float(i))
        assert len(ring) == 4
        assert ring.total == 10
        assert ring.dropped == 6
        t, v = ring.series()
        # Oldest-first window of the last `capacity` samples.
        assert list(t) == [6.0, 7.0, 8.0, 9.0]
        assert list(v) == [6.0, 7.0, 8.0, 9.0]

    def test_wraparound_exactly_at_capacity_boundary(self):
        ring = ProbeRing("q", capacity=3)
        for i in range(3):
            ring.append(float(i), float(i))
        t, _ = ring.series()
        assert list(t) == [0.0, 1.0, 2.0]
        ring.append(3.0, 3.0)  # first overwrite
        t, _ = ring.series()
        assert list(t) == [1.0, 2.0, 3.0]
        assert ring.dropped == 1

    def test_summary_and_doc(self):
        ring = ProbeRing("depth", unit="batches", capacity=16)
        for i in range(4):
            ring.append(float(i), float(i))
        summary = ring.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(1.5)
        assert summary["min"] == 0.0
        assert summary["max"] == 3.0
        assert summary["last"] == 3.0
        doc = ring.to_doc()
        assert doc["name"] == "depth"
        assert doc["unit"] == "batches"
        assert doc["values"] == [0.0, 1.0, 2.0, 3.0]

    def test_doc_decimation_keeps_endpoints(self):
        ring = ProbeRing("q", capacity=1000)
        for i in range(1000):
            ring.append(float(i), float(i))
        doc = ring.to_doc(max_points=100)
        assert len(doc["t"]) == 100
        assert doc["t"][0] == 0.0
        assert doc["t"][-1] == 999.0

    def test_empty_summary_has_none_stats(self):
        summary = ProbeRing("q").summary()
        assert summary["count"] == 0
        assert summary["mean"] is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ProbeRing("q", capacity=0)


class TestProbeSamplerDisabled:
    """The zero-cost-when-disabled contract (mirrors the tracer's)."""

    def test_disabled_registers_nothing_and_starts_no_thread(self):
        sampler = ProbeSampler(enabled=False)
        sampler.add_probe("x", lambda: 1.0)
        assert sampler.probe_names() == []
        assert sampler.sample_once() == 0
        before = threading.active_count()
        with sampler:
            assert not sampler.running
            assert threading.active_count() == before
        assert sampler.rings() == []
        assert sampler.to_doc()["series"] == []

    def test_disabled_holds_no_ring_memory(self):
        sampler = ProbeSampler(enabled=False)
        for i in range(100):
            sampler.add_probe(f"p{i}", lambda: 0.0)
        assert sampler._rings == {}
        assert sampler._probes == {}


class TestProbeSampler:
    def test_sample_once_records_each_probe(self):
        sampler = ProbeSampler(interval=0.001)
        values = iter(range(100))
        sampler.add_probe("counter", lambda: next(values), unit="n")
        assert sampler.sample_once() == 1
        assert sampler.sample_once() == 1
        t, v = sampler.ring("counter").series()
        assert list(v) == [0.0, 1.0]
        assert list(t) == sorted(t)

    def test_background_thread_samples_and_stops(self):
        sampler = ProbeSampler(interval=0.002)
        sampler.add_probe("x", lambda: 42.0)
        with sampler:
            assert sampler.running
            time.sleep(0.05)
        assert not sampler.running
        ring = sampler.ring("x")
        assert len(ring) >= 2  # several sweeps plus the final one
        assert all(v == 42.0 for v in ring.series()[1])

    def test_failing_probe_is_disabled_not_fatal(self):
        sampler = ProbeSampler(interval=0.001)
        sampler.add_probe("good", lambda: 1.0)
        sampler.add_probe("bad", lambda: 1 / 0)
        sampler.sample_once()
        sampler.sample_once()
        assert "bad" in sampler.errors
        assert "ZeroDivisionError" in sampler.errors["bad"]
        assert sampler.probe_names() == ["good"]
        assert len(sampler.ring("good")) == 2

    def test_reregistration_swaps_fn_but_keeps_series(self):
        # Epoch 2 re-registers the same probe name over a fresh queue; the
        # recorded series must stay continuous.
        sampler = ProbeSampler(interval=0.001)
        sampler.add_probe("q", lambda: 1.0)
        sampler.sample_once()
        sampler.add_probe("q", lambda: 2.0)
        sampler.sample_once()
        _, v = sampler.ring("q").series()
        assert list(v) == [1.0, 2.0]

    def test_remove_probe_keeps_recorded_series(self):
        sampler = ProbeSampler(interval=0.001)
        sampler.add_probe("q", lambda: 5.0)
        sampler.sample_once()
        sampler.remove_probe("q")
        assert sampler.probe_names() == []
        assert len(sampler.ring("q")) == 1

    def test_shared_clock_with_tracer(self):
        from repro.telemetry import Tracer

        tracer = Tracer()
        sampler = ProbeSampler(interval=0.001, clock=tracer.now)
        sampler.add_probe("x", lambda: 0.0)
        before = tracer.now()
        sampler.sample_once()
        after = tracer.now()
        t, _ = sampler.ring("x").series()
        assert before <= t[0] <= after

    def test_counter_track_events_format(self):
        sampler = ProbeSampler(interval=0.001)
        sampler.add_probe("queue_depth/sample", lambda: 3.0, unit="batches")
        sampler.sample_once()
        events = sampler.counter_track_events(pid=7)
        assert len(events) == 1
        event = events[0]
        assert event["ph"] == "C"
        assert event["cat"] == "probe"
        assert event["pid"] == 7
        assert event["name"] == "queue_depth/sample (batches)"
        assert event["args"] == {"value": 3.0}
        assert event["ts"] >= 0.0

    def test_counter_tracks_merge_into_chrome_trace(self):
        from repro.telemetry import Tracer

        tracer = Tracer()
        with tracer.span("sample", "cpu:0", 0):
            pass
        sampler = ProbeSampler(interval=0.001, clock=tracer.now)
        sampler.add_probe("q", lambda: 1.0)
        sampler.sample_once()
        doc = tracer.to_chrome_trace(probes=sampler)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "C" in phases and "X" in phases

    def test_to_doc_is_json_serializable(self):
        import json

        sampler = ProbeSampler(interval=0.001)
        sampler.add_probe("x", lambda: 1.5)
        sampler.sample_once()
        doc = sampler.to_doc()
        json.dumps(doc)
        assert doc["interval_s"] == 0.001
        assert doc["series"][0]["name"] == "x"

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            ProbeSampler(interval=0.0)


class TestOverheadBudget:
    def test_overhead_under_two_percent_on_smoke_epoch(self):
        """ISSUE acceptance: monitoring overhead <= 2% at the default 10 ms
        interval while a real (smoke-scale) training epoch runs."""
        from dataclasses import replace

        from repro.datasets import get_dataset
        from repro.train import Trainer, get_config

        dataset = get_dataset("arxiv", scale=0.05, seed=0)
        config = replace(get_config("arxiv", "sage"), batch_size=48)
        sampler = ProbeSampler(interval=DEFAULT_PROBE_INTERVAL)
        trainer = Trainer(
            dataset, config, executor="staged", sampler="fast", probes=sampler
        )
        with sampler:
            trainer.train_epoch(0)
            # Give the sampler a few guaranteed sweeps even on a fast box.
            time.sleep(5 * DEFAULT_PROBE_INTERVAL)
        trainer.shutdown()
        assert sampler.ring("queue_depth/sample") is not None
        assert sampler.overhead_fraction() <= 0.02, (
            f"probe overhead {sampler.overhead_fraction():.4f} exceeds 2%"
        )

    def test_overhead_fraction_zero_before_any_sampling(self):
        assert ProbeSampler().overhead_fraction() == 0.0


class TestPipelineProbeWiring:
    """Overlapped runs register queue/occupancy probes; serial runs don't."""

    def _run(self, executor, sampler_kind, probes):
        from dataclasses import replace

        from repro.datasets import get_dataset
        from repro.train import Trainer, get_config

        dataset = get_dataset("arxiv", scale=0.05, seed=0)
        config = replace(get_config("arxiv", "sage"), batch_size=48)
        trainer = Trainer(
            dataset,
            config,
            executor=executor,
            sampler=sampler_kind,
            probes=probes,
        )
        with probes:
            trainer.train_epoch(0)
        trainer.shutdown()

    def test_staged_run_records_expected_series(self):
        probes = ProbeSampler(interval=0.001)
        self._run("staged", "fast", probes)
        names = {ring.name for ring in probes.rings()}
        assert "pipeline/input_queue_depth" in names
        assert "pipeline/in_flight_envelopes" in names
        assert "queue_depth/sample" in names
        assert "queue_depth/slice" in names
        assert "stage_occupancy/sample" in names
        assert "pinned_pool/free_slots" in names
        assert "workspace/pooled_bytes" in names
        # Run-scoped probes are unregistered when the epoch drains; the
        # trainer-scoped pool/workspace probes stay live.
        live = set(probes.probe_names())
        assert "queue_depth/sample" not in live
        assert "pinned_pool/free_slots" in live
        assert not probes.errors

    def test_values_are_within_physical_bounds(self):
        probes = ProbeSampler(interval=0.001)
        self._run("staged", "fast", probes)
        _, depths = probes.ring("queue_depth/sample").series()
        assert np.all(depths >= 0)
        _, util = probes.ring("pinned_pool/utilization").series()
        assert np.all((util >= 0.0) & (util <= 1.0))

    def test_feature_cache_probe(self):
        from repro.datasets import get_dataset
        from repro.runtime import Device, DeviceFeatureCache, hottest_nodes
        from repro.slicing import FeatureStore

        dataset = get_dataset("arxiv", scale=0.05, seed=0)
        store = FeatureStore(dataset.features, dataset.labels)
        device = Device()
        cache = DeviceFeatureCache(
            device, store, hottest_nodes(dataset.graph, 64)
        )
        sampler = ProbeSampler(interval=0.001)
        cache.register_probes(sampler)
        sampler.sample_once()
        _, rates = sampler.ring("feature_cache/hit_rate").series()
        assert list(rates) == [0.0]
        device.shutdown()
