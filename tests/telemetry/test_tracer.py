"""Span tracer: zero-cost disabled path, hierarchy, Chrome trace export.

The legacy renderer/analysis surface (stage_totals, resource_busy,
render_timeline) keeps its coverage in ``tests/runtime/test_trace.py``
through the ``repro.runtime.trace`` shim; this file covers the behaviour
added by the telemetry unification.
"""

import json
import threading

import pytest

from repro.telemetry.tracer import _NULL_SPAN, TraceEvent, Tracer


class _CountingLock:
    """Lock proxy counting acquisitions (arena-counter style assertion)."""

    def __init__(self):
        self.acquisitions = 0
        self._lock = threading.Lock()

    def __enter__(self):
        self.acquisitions += 1
        return self._lock.__enter__()

    def __exit__(self, *exc):
        return self._lock.__exit__(*exc)

    def acquire(self, *args, **kwargs):
        self.acquisitions += 1
        return self._lock.acquire(*args, **kwargs)

    def release(self):
        return self._lock.release()


class TestDisabledTracer:
    def test_span_returns_shared_singleton(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("sample", "cpu:0", 0)
        second = tracer.span("train", "gpu", 7)
        # No per-call allocation: every disabled span is the same object.
        assert first is second is _NULL_SPAN

    def test_null_span_has_no_instance_dict(self):
        # __slots__ = () keeps the singleton allocation-free to enter.
        assert not hasattr(_NULL_SPAN, "__dict__")
        with _NULL_SPAN as span:
            assert span is _NULL_SPAN

    def test_disabled_span_skips_lock_and_events(self):
        tracer = Tracer(enabled=False)
        counting = _CountingLock()
        tracer._lock = counting
        for batch in range(100):
            with tracer.span("sample", "cpu:0", batch):
                pass
        assert counting.acquisitions == 0
        assert tracer.events == []

    def test_disabled_record_is_a_noop(self):
        tracer = Tracer(enabled=False)
        tracer.record("train", "gpu", 0, 0.0, 1.0)
        assert tracer.events == []

    def test_enabled_span_does_take_the_lock(self):
        # Sanity check that the counting proxy would detect the hot path.
        tracer = Tracer()
        counting = _CountingLock()
        tracer._lock = counting
        with tracer.span("sample", "cpu:0", 0):
            pass
        assert counting.acquisitions > 0
        assert len(tracer.events) == 1


class TestSpanHierarchy:
    def test_nested_spans_record_parent_id(self):
        tracer = Tracer()
        with tracer.span("prepare", "cpu:0", 0):
            with tracer.span("sample", "cpu:0", 0):
                pass
            with tracer.span("slice", "cpu:0", 0):
                pass
        by_name = {e.name: e for e in tracer.events}
        parent = by_name["prepare"]
        assert parent.parent_id == -1
        assert by_name["sample"].parent_id == parent.span_id
        assert by_name["slice"].parent_id == parent.span_id
        # Children closed before the parent, all ids unique.
        ids = [e.span_id for e in tracer.events]
        assert len(set(ids)) == len(ids)

    def test_sibling_spans_are_roots(self):
        tracer = Tracer()
        with tracer.span("sample", "cpu:0", 0):
            pass
        with tracer.span("train", "gpu", 0):
            pass
        assert [e.parent_id for e in tracer.events] == [-1, -1]

    def test_hierarchy_is_per_thread(self):
        tracer = Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("sample", "cpu:1", 1):
                done.wait(timeout=5.0)

        thread = threading.Thread(target=worker)
        with tracer.span("train", "gpu", 0):
            thread.start()
            done.set()
            thread.join()
        # The worker's span is not a child of the main thread's open span.
        assert all(e.parent_id == -1 for e in tracer.events)
        threads = {e.thread for e in tracer.events}
        assert len(threads) == 2

    def test_span_timestamps_share_the_tracer_clock(self):
        tracer = Tracer()
        with tracer.span("sample", "cpu:0", 0):
            pass
        event = tracer.events[0]
        assert 0.0 <= event.start <= event.end <= tracer.now()


class TestChromeTrace:
    def _traced(self):
        tracer = Tracer()
        tracer.record("train", "gpu", 0, 2.0, 3.0)
        tracer.record("transfer", "dma", 0, 1.0, 2.0)
        tracer.record("sample", "cpu:0", 0, 0.0, 1.0)
        tracer.record("sample", "cpu:1", 1, 0.5, 1.5)
        return tracer

    def test_complete_events_have_required_fields(self):
        doc = self._traced().to_chrome_trace()
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 4
        for event in xs:
            assert event["cat"] == "stage"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] > 0
            assert event["pid"] == 1
            assert isinstance(event["tid"], int)
            assert set(event["args"]) == {"batch", "span_id", "parent_id"}

    def test_timestamps_are_microseconds(self):
        doc = self._traced().to_chrome_trace()
        train = next(
            e for e in doc["traceEvents"] if e["ph"] == "X" and e["name"] == "train"
        )
        assert train["ts"] == pytest.approx(2.0e6)
        assert train["dur"] == pytest.approx(1.0e6)

    def test_lane_metadata_and_ordering(self):
        doc = self._traced().to_chrome_trace()
        names = [
            e for e in doc["traceEvents"] if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        # cpu lanes sort before dma before gpu, matching the ASCII view.
        assert [m["args"]["name"] for m in names] == ["cpu:0", "cpu:1", "dma", "gpu"]
        assert [m["tid"] for m in names] == [0, 1, 2, 3]
        sort_events = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_sort_index"
        ]
        assert [m["args"]["sort_index"] for m in sort_events] == [0, 1, 2, 3]

    def test_metadata_precedes_complete_events(self):
        doc = self._traced().to_chrome_trace()
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases.index("X") > phases.index("M")
        assert "M" not in phases[phases.index("X") :]

    def test_span_hierarchy_survives_export(self):
        tracer = Tracer()
        with tracer.span("prepare", "cpu:0", 3):
            with tracer.span("sample", "cpu:0", 3):
                pass
        doc = tracer.to_chrome_trace()
        xs = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert xs["sample"]["args"]["parent_id"] == xs["prepare"]["args"]["span_id"]
        assert xs["sample"]["args"]["batch"] == 3

    def test_custom_pid(self):
        doc = self._traced().to_chrome_trace(pid=42)
        assert all(e["pid"] == 42 for e in doc["traceEvents"])

    def test_document_envelope(self):
        doc = self._traced().to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["producer"] == "repro.telemetry.tracer"

    def test_empty_tracer_exports_empty_event_list(self):
        assert Tracer().to_chrome_trace()["traceEvents"] == []

    def test_write_chrome_trace_round_trip(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert doc == json.loads(json.dumps(tracer.to_chrome_trace()))
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == 4


class TestCrossThreadNesting:
    """Span parenthood is per-thread: a span opened on one thread must not
    become the parent of spans opened concurrently on another."""

    def test_parent_ids_do_not_leak_across_threads(self):
        import threading

        tracer = Tracer()
        inside_outer = threading.Event()
        release_outer = threading.Event()

        def worker():
            inside_outer.wait(timeout=5.0)
            with tracer.span("sample", "cpu:1", 0):
                with tracer.span("slice", "cpu:1", 0):
                    pass

        thread = threading.Thread(target=worker)
        thread.start()
        with tracer.span("train", "gpu", 0):
            inside_outer.set()
            thread.join(timeout=5.0)

        events = {e.name: e for e in tracer.events}
        # Worker-thread root must be a root, not a child of the main
        # thread's still-open "train" span.
        assert events["sample"].parent_id == -1
        # Nesting *within* the worker thread is still tracked.
        assert events["slice"].parent_id == events["sample"].span_id
        assert events["train"].parent_id == -1
        assert events["sample"].thread != events["train"].thread

    def test_parallel_workers_each_get_their_own_stack(self):
        import threading

        tracer = Tracer()
        barrier = threading.Barrier(4, timeout=5.0)

        def worker(i):
            barrier.wait()
            with tracer.span("outer", f"cpu:{i}", i):
                with tracer.span("inner", f"cpu:{i}", i):
                    pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        outers = {e.batch: e for e in tracer.events if e.name == "outer"}
        inners = {e.batch: e for e in tracer.events if e.name == "inner"}
        assert len(outers) == len(inners) == 4
        for batch, outer in outers.items():
            assert outer.parent_id == -1
            assert inners[batch].parent_id == outer.span_id
        # Span ids are unique across all threads.
        ids = [e.span_id for e in tracer.events]
        assert len(ids) == len(set(ids))


class TestRuntimeShim:
    def test_runtime_trace_reexports_the_telemetry_tracer(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.runtime import trace as shim

        assert shim.Tracer is Tracer
        assert shim.TraceEvent is TraceEvent
