"""Bottleneck attribution: verdicts, report analysis, rendering."""

from dataclasses import replace

import pytest

from repro.telemetry.attribution import (
    Attribution,
    attribute_breakdown,
    attribute_report,
    attribute_trace,
    render_attribution,
)


class TestAttributeBreakdown:
    def test_prep_bound(self):
        attr = attribute_breakdown(
            {"batch_prep": 0.7, "transfer": 0.05, "train": 0.2, "prep_wait": 0.0}
        )
        assert attr.verdict == "prep-bound"
        assert attr.bound_stage == "prep"
        assert attr.shares["prep"] == pytest.approx(0.7)
        assert attr.gpu_idle_fraction == pytest.approx(0.8)
        assert "prep-bound" in attr.detail
        assert "gpu idle 80%" in attr.detail

    def test_prep_wait_counts_toward_prep(self):
        # Overlapped run: batch_prep blocking is ~0, starvation is the
        # visible prep cost.
        attr = attribute_breakdown(
            {"batch_prep": 0.0, "transfer": 0.1, "train": 0.3, "prep_wait": 0.5}
        )
        assert attr.verdict == "prep-bound"
        assert attr.shares["prep"] == pytest.approx(0.5)

    def test_compute_bound(self):
        attr = attribute_breakdown(
            {"batch_prep": 0.1, "transfer": 0.1, "train": 0.7, "prep_wait": 0.05}
        )
        assert attr.verdict == "compute-bound"
        assert attr.gpu_idle_fraction == pytest.approx(0.3)

    def test_transfer_bound(self):
        attr = attribute_breakdown(
            {"batch_prep": 0.1, "transfer": 0.6, "train": 0.25, "prep_wait": 0.0}
        )
        assert attr.verdict == "transfer-bound"

    def test_plan_build_excluded_from_blocking_shares(self):
        attr = attribute_breakdown(
            {
                "batch_prep": 0.2,
                "transfer": 0.1,
                "train": 0.4,
                "prep_wait": 0.0,
                "plan_build": 0.9,  # busy-time view, not blocking
            }
        )
        assert attr.verdict == "compute-bound"
        assert "plan_build" not in attr.shares

    def test_prep_bound_names_busiest_cpu_lane(self):
        attr = attribute_breakdown(
            {"batch_prep": 0.8, "transfer": 0.05, "train": 0.1, "prep_wait": 0.0},
            lanes={"cpu:0": 0.9, "cpu:1": 0.4, "gpu": 0.1},
        )
        assert "on cpu:0" in attr.detail

    def test_storage_bound_when_mmap_waits_dominate_prep(self):
        # 10 s epoch, 7 s of it prep-blocked, 5 s of that faulting slab
        # pages: the fix is tier sizing, not more prepare workers.
        attr = attribute_breakdown(
            {"batch_prep": 0.7, "transfer": 0.05, "train": 0.2, "prep_wait": 0.0},
            stalls={"mmap_wait_s": 5.0},
            total_s=10.0,
        )
        assert attr.verdict == "storage-bound"
        assert attr.bound_stage == "prep"  # still the prep stage at fault
        assert "storage-bound" in attr.detail
        assert "mmap waits" in attr.detail

    def test_prep_bound_when_mmap_waits_are_minor(self):
        attr = attribute_breakdown(
            {"batch_prep": 0.7, "transfer": 0.05, "train": 0.2, "prep_wait": 0.0},
            stalls={"mmap_wait_s": 0.5},
            total_s=10.0,
        )
        assert attr.verdict == "prep-bound"

    def test_no_storage_verdict_without_epoch_seconds(self):
        # Stall seconds can't be compared to shares without total_s.
        attr = attribute_breakdown(
            {"batch_prep": 0.7, "transfer": 0.05, "train": 0.2, "prep_wait": 0.0},
            stalls={"mmap_wait_s": 5.0},
        )
        assert attr.verdict == "prep-bound"

    def test_compute_bound_never_refines_to_storage(self):
        attr = attribute_breakdown(
            {"batch_prep": 0.1, "transfer": 0.1, "train": 0.7, "prep_wait": 0.05},
            stalls={"mmap_wait_s": 9.0},
            total_s=10.0,
        )
        assert attr.verdict == "compute-bound"

    def test_to_doc_round_trip(self):
        import json

        attr = attribute_breakdown(
            {"batch_prep": 0.5, "transfer": 0.2, "train": 0.3, "prep_wait": 0.0},
            stalls={"prep_wait_s": 0.01},
        )
        doc = json.loads(json.dumps(attr.to_doc()))
        assert doc["verdict"] == "prep-bound"
        assert doc["stalls"]["prep_wait_s"] == pytest.approx(0.01)


class TestAttributeTrace:
    def test_lane_utilization_fractions(self):
        from repro.telemetry import Tracer

        tracer = Tracer()
        tracer.record("sample", "cpu:0", 0, 0.0, 0.8)
        tracer.record("train", "gpu", 0, 0.0, 0.4)
        lanes = attribute_trace(tracer)
        assert lanes["cpu:0"] == pytest.approx(1.0)
        assert lanes["gpu"] == pytest.approx(0.5)

    def test_empty_trace_gives_no_lanes(self):
        from repro.telemetry import Tracer

        assert attribute_trace(Tracer()) == {}


class TestVerdictFlip:
    """ISSUE acceptance: the verdict flips prep-bound -> compute-bound
    between the standard workflow and the overlapped configuration."""

    def _attribution(self, executor, sampler):
        from repro.datasets import get_dataset
        from repro.telemetry import Tracer
        from repro.train import Trainer, get_config

        dataset = get_dataset("arxiv", scale=0.08, seed=0)
        config = replace(get_config("arxiv", "sage"), batch_size=48)
        tracer = Tracer()
        trainer = Trainer(
            dataset, config, executor=executor, sampler=sampler, tracer=tracer
        )
        stats = trainer.train_epoch(0)
        trainer.shutdown()
        return stats.attribution(tracer), stats

    def test_serial_pyg_is_prep_bound(self):
        attr, stats = self._attribution("serial", "pyg")
        assert attr.verdict == "prep-bound"
        assert stats.verdict() == "prep-bound"

    def test_staged_fast_is_not_prep_bound(self):
        attr, _ = self._attribution("staged", "fast")
        assert attr.verdict == "compute-bound"
        # Overlap hides preparation: the gpu idles less than the serial
        # workflow's >60%.
        assert attr.shares["prep"] < 0.4


class TestAttributeReport:
    def _report_doc(self, breakdowns, epoch_s=None):
        epoch_s = epoch_s or [1.0] * len(breakdowns)
        return {
            "bench": "run_report",
            "epochs": [
                {"epoch": i, "epoch_s": s, "breakdown": b}
                for i, (b, s) in enumerate(zip(breakdowns, epoch_s))
            ],
            "metrics": [],
        }

    def test_weighted_combination(self):
        # A long prep-bound epoch outweighs a short compute-bound one.
        doc = self._report_doc(
            [
                {"batch_prep": 0.8, "transfer": 0.1, "train": 0.1, "prep_wait": 0.0},
                {"batch_prep": 0.1, "transfer": 0.1, "train": 0.8, "prep_wait": 0.0},
            ],
            epoch_s=[9.0, 1.0],
        )
        attr = attribute_report(doc)
        assert attr.verdict == "prep-bound"
        assert attr.shares["prep"] == pytest.approx(0.9 * 0.8 + 0.1 * 0.1)

    def test_stalls_from_metrics_snapshot(self):
        doc = self._report_doc(
            [{"batch_prep": 0.1, "transfer": 0.1, "train": 0.7, "prep_wait": 0.1}]
        )
        doc["metrics"] = [
            {
                "name": "caller_seconds",
                "labels": {"stage": "prep_wait"},
                "sum": 0.25,
            },
            {"name": "queue_wait_seconds", "labels": {"stage": "slice"}, "sum": 0.5},
            {"name": "pinned_acquire_wait_seconds", "labels": {}, "sum": 0.125},
        ]
        attr = attribute_report(doc)
        assert attr.stalls["prep_wait_s"] == pytest.approx(0.25)
        assert attr.stalls["queue_wait_s[slice]"] == pytest.approx(0.5)
        assert attr.stalls["pinned_acquire_wait_s"] == pytest.approx(0.125)

    def test_empty_report_raises(self):
        with pytest.raises(ValueError):
            attribute_report({"epochs": []})


class TestRender:
    def test_render_includes_verdict_shares_and_epoch_table(self):
        attr = Attribution(
            verdict="prep-bound",
            bound_stage="prep",
            shares={"prep": 0.7, "transfer": 0.1, "train": 0.2},
            gpu_idle_fraction=0.8,
            detail="prep-bound on cpu:0 (prep blocks 70% of epoch time), gpu idle 80%",
            lanes={"cpu:0": 0.9},
            stalls={"prep_wait_s": 0.01},
        )
        epochs = [
            {
                "epoch": 0,
                "breakdown": {
                    "batch_prep": 0.7,
                    "transfer": 0.1,
                    "train": 0.2,
                    "prep_wait": 0.0,
                },
                "verdict": "prep-bound",
            }
        ]
        text = render_attribution(attr, epochs=epochs)
        assert "verdict: prep-bound on cpu:0" in text
        assert "prep=70.0%" in text
        assert "cpu:0=90%" in text
        assert "prep_wait_s=10.0ms" in text
        assert "epoch  prep%" in text
        assert "prep-bound" in text.splitlines()[-1]

    def test_render_without_optional_sections(self):
        attr = attribute_breakdown(
            {"batch_prep": 0.1, "transfer": 0.1, "train": 0.7, "prep_wait": 0.0}
        )
        text = render_attribution(attr)
        assert "lane utilization" not in text
        assert "stalls" not in text
