"""Command-line interface smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "products"
        assert args.executor == "pipelined"

    def test_fanout_override(self):
        args = build_parser().parse_args(["train", "--fanouts", "10", "5"])
        assert args.fanouts == [10, 5]


class TestCommands:
    def test_info_all(self, capsys):
        assert main(["info", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "arxiv" in out and "products" in out and "papers" in out

    def test_info_single(self, capsys):
        assert main(["info", "--dataset", "arxiv", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "arxiv" in out and "products" not in out

    def test_simulate_single_gpu(self, capsys):
        assert main(["simulate", "--dataset", "products", "--gpus", "1"]) == 0
        out = capsys.readouterr().out
        assert "gpu_util" in out

    def test_simulate_scaling(self, capsys):
        assert main(["simulate", "--dataset", "papers", "--gpus", "16"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_train_tiny(self, capsys):
        code = main(
            [
                "train",
                "--dataset",
                "arxiv",
                "--scale",
                "0.1",
                "--epochs",
                "1",
                "--batch-size",
                "32",
                "--hidden",
                "8",
                "--fanouts",
                "4",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out

    def test_timeline(self, capsys):
        assert main(
            ["timeline", "--dataset", "arxiv", "--scale", "0.25", "--batches", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "SALIENT" in out and "legend" in out
