"""Contract tests for ``benchmarks/bench_mp_prepare.py`` and its artifact.

Mirrors the other bench contracts: a fresh ``--smoke`` run must satisfy
the schema, and the committed full-mode ``BENCH_mp_prepare.json`` must
stay valid.  The headline scaling claim — process workers beating one
process worker by >1.5x at 4 workers — is a statement about *multi-core*
hosts, so it is asserted only when the committed artifact was produced on
a machine with at least 4 cores (the artifact records ``cpu_count``
precisely so this gate is about the bench host, not the test host).
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(BENCH_DIR))

import bench_mp_prepare  # noqa: E402
import check_bench_json  # noqa: E402

ALL_VARIANTS = {
    f"{kind}-{workers}" for kind in ("thread", "process") for workers in (1, 2, 4, 8)
}


@pytest.fixture(scope="module")
def smoke_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_mp_prepare.json"
    assert bench_mp_prepare.main(["--smoke", "--output", str(out)]) == 0
    return json.loads(out.read_text()), out


class TestSmokeRun:
    def test_smoke_artifact_satisfies_schema(self, smoke_doc):
        doc, _ = smoke_doc
        assert check_bench_json.validate(doc) == []
        assert doc["mode"] == "smoke"

    def test_smoke_covers_both_kinds_at_every_worker_count(self, smoke_doc):
        doc, _ = smoke_doc
        assert {r["variant"] for r in doc["rows"]} == ALL_VARIANTS

    def test_records_bench_host_core_count(self, smoke_doc):
        doc, _ = smoke_doc
        assert isinstance(doc["cpu_count"], int) and doc["cpu_count"] >= 1

    def test_cli_roundtrip(self, smoke_doc):
        _, path = smoke_doc
        assert check_bench_json.main([str(path)]) == 0


class TestCommittedArtifact:
    @pytest.fixture(scope="class")
    def committed(self):
        path = REPO_ROOT / "BENCH_mp_prepare.json"
        assert path.exists(), "committed BENCH_mp_prepare.json missing from repo root"
        return json.loads(path.read_text())

    def test_valid_full_mode(self, committed):
        assert check_bench_json.validate(committed, min_reps=5) == []
        assert committed["mode"] == "full"

    def test_process_scaling_on_multicore_bench_host(self, committed):
        """ISSUE 9's acceptance bar: >1.5x prepare throughput at 4 process
        workers vs 1.  Skipped (not failed) when the committed numbers come
        from a host with fewer than 4 cores — no amount of de-simulation
        makes one core four."""
        if committed["cpu_count"] < 4:
            pytest.skip(
                f"committed artifact benched on {committed['cpu_count']} "
                "core(s); scaling claim needs >= 4"
            )
        for name, entry in committed["summary"].items():
            assert entry["process_speedup_4w"] > 1.5, name


class TestValidateAll:
    def test_committed_artifact_in_validate_all_sweep(self):
        results = check_bench_json.validate_all(min_reps=5)
        assert "BENCH_mp_prepare.json" in results
        assert results["BENCH_mp_prepare.json"] == []
