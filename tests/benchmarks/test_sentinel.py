"""Tier-1 contract for the perf-regression sentinel.

The sentinel must pass (exit 0) when self-comparing the committed
``BENCH_*.json`` baselines, fail (exit 1) on a synthetically regressed
candidate, and emit a ``BENCH_sentinel.json`` trajectory artifact that
``check_bench_json.py`` validates — the same bar every other committed
artifact meets.  The committed ``BENCH_sentinel.json`` at the repo root is
also re-validated here so schema drift is caught in tier-1.
"""

import copy
import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(BENCH_DIR))

import check_bench_json  # noqa: E402

from repro.telemetry.sentinel import (  # noqa: E402
    DEFAULT_REL_TOL,
    GuardedMetric,
    build_sentinel_doc,
    compare_docs,
    extract_guarded_metrics,
    main,
)


def _baseline_paths():
    return [
        p
        for p in sorted(REPO_ROOT.glob("BENCH_*.json"))
        if p.name != "BENCH_sentinel.json"
    ]


class TestExtractGuardedMetrics:
    def test_rows_and_summary_extracted(self):
        doc = {
            "bench": "pipeline",
            "rows": [
                {
                    "bench": "epoch",
                    "dataset": "arxiv",
                    "variant": "fast",
                    "median_s": 0.25,
                    "throughput": 4.0,
                }
            ],
            "summary": {"arxiv": {"fast_vs_pyg_speedup": 2.5}},
        }
        metrics = {m.metric: m for m in extract_guarded_metrics(doc)}
        assert set(metrics) == {
            "rows.epoch.arxiv.fast.median_s",
            "summary.arxiv.fast_vs_pyg_speedup",
        }
        assert metrics["rows.epoch.arxiv.fast.median_s"].direction == "lower-better"
        assert metrics["summary.arxiv.fast_vs_pyg_speedup"].direction == "higher-better"

    def test_sentinel_and_run_report_docs_are_unguarded(self):
        assert extract_guarded_metrics({"bench": "sentinel", "rows": [{}]}) == []
        assert extract_guarded_metrics({"bench": "run_report"}) == []

    def test_non_finite_values_skipped(self):
        doc = {
            "bench": "x",
            "rows": [{"bench": "a", "dataset": "d", "variant": "v", "median_s": float("nan")}],
            "summary": {"d": {"speedup": float("inf")}},
        }
        assert extract_guarded_metrics(doc) == []


class TestCompareDocs:
    BASE = {
        "bench": "pipeline",
        "rows": [
            {"bench": "epoch", "dataset": "arxiv", "variant": "fast", "median_s": 1.0}
        ],
        "summary": {"arxiv": {"speedup": 2.0}},
    }

    def test_identical_docs_pass(self):
        checks = compare_docs(self.BASE, self.BASE, "a.json")
        assert len(checks) == 2
        assert all(c["status"] == "pass" for c in checks)

    def test_slower_median_within_band_passes(self):
        cand = copy.deepcopy(self.BASE)
        cand["rows"][0]["median_s"] = 1.0 * (1 + DEFAULT_REL_TOL) - 1e-9
        checks = compare_docs(self.BASE, cand, "a.json")
        assert all(c["status"] == "pass" for c in checks)

    def test_median_regression_flagged(self):
        cand = copy.deepcopy(self.BASE)
        cand["rows"][0]["median_s"] = 3.0
        by_metric = {c["metric"]: c for c in compare_docs(self.BASE, cand, "a.json")}
        assert by_metric["rows.epoch.arxiv.fast.median_s"]["status"] == "regressed"
        assert by_metric["summary.arxiv.speedup"]["status"] == "pass"

    def test_speedup_collapse_flagged(self):
        cand = copy.deepcopy(self.BASE)
        cand["summary"]["arxiv"]["speedup"] = 1.0
        by_metric = {c["metric"]: c for c in compare_docs(self.BASE, cand, "a.json")}
        assert by_metric["summary.arxiv.speedup"]["status"] == "regressed"

    def test_missing_metric_is_a_regression(self):
        cand = copy.deepcopy(self.BASE)
        del cand["summary"]
        by_metric = {c["metric"]: c for c in compare_docs(self.BASE, cand, "a.json")}
        check = by_metric["summary.arxiv.speedup"]
        assert check["status"] == "missing"
        assert check["current"] is None

    def test_abs_floor_shields_tiny_medians(self):
        base = {
            "bench": "x",
            "rows": [{"bench": "a", "dataset": "d", "variant": "v", "median_s": 0.0001}],
        }
        cand = copy.deepcopy(base)
        cand["rows"][0]["median_s"] = 0.004  # 40x, but under the 5ms floor
        checks = compare_docs(base, cand, "a.json")
        assert checks[0]["status"] == "pass"

    def test_allowed_bound_directions(self):
        checks = compare_docs(self.BASE, self.BASE, "a.json")
        by_metric = {c["metric"]: c for c in checks}
        assert by_metric["rows.epoch.arxiv.fast.median_s"]["allowed"] > 1.0
        assert by_metric["summary.arxiv.speedup"]["allowed"] < 2.0


class TestCommittedBaselines:
    def test_repo_has_guarded_baselines(self):
        paths = _baseline_paths()
        assert len(paths) >= 3
        guarded = 0
        for path in paths:
            guarded += len(extract_guarded_metrics(json.loads(path.read_text())))
        assert guarded > 0

    def test_self_compare_exits_zero(self, tmp_path):
        out = tmp_path / "BENCH_sentinel.json"
        rc = main(["--baseline-dir", str(REPO_ROOT), "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["mode"] == "self"
        assert doc["summary"]["regressed"] == 0
        assert check_bench_json.validate(doc) == []

    def test_committed_sentinel_artifact_validates(self):
        path = REPO_ROOT / "BENCH_sentinel.json"
        assert path.exists(), "committed BENCH_sentinel.json missing"
        doc = json.loads(path.read_text())
        assert check_bench_json.validate(doc) == []
        assert doc["summary"]["status"] == "pass"

    def test_committed_sentinel_matches_current_baselines(self):
        """The committed trajectory must track the committed baselines."""
        doc = json.loads((REPO_ROOT / "BENCH_sentinel.json").read_text())
        names = {a["name"] for a in doc["artifacts"]}
        assert names == {p.name for p in _baseline_paths()}


class TestRegressionDetection:
    def test_synthetic_regression_exits_one(self, tmp_path, capsys):
        """ISSUE acceptance: a regressed artifact makes the sentinel fail."""
        base_path = _baseline_paths()[0]
        doc = json.loads(base_path.read_text())
        for row in doc.get("rows") or []:
            if isinstance(row.get("median_s"), (int, float)):
                row["median_s"] *= 3.0
        cand = tmp_path / base_path.name
        cand.write_text(json.dumps(doc))
        out = tmp_path / "BENCH_sentinel.json"
        rc = main(["--baseline-dir", str(REPO_ROOT), "--out", str(out), str(cand)])
        assert rc == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.err
        sentinel = json.loads(out.read_text())
        assert sentinel["mode"] == "compare"
        assert sentinel["summary"]["status"] == "regressed"
        assert sentinel["summary"]["regressed"] > 0
        # The failing artifact still validates — regressions are data,
        # not schema errors.
        assert check_bench_json.validate(sentinel) == []

    def test_unknown_candidate_exits_two(self, tmp_path, capsys):
        cand = tmp_path / "BENCH_nonexistent.json"
        cand.write_text("{}")
        rc = main(["--baseline-dir", str(REPO_ROOT), str(cand)])
        assert rc == 2
        assert "no committed baseline" in capsys.readouterr().err

    def test_empty_baseline_dir_exits_two(self, tmp_path):
        assert main(["--baseline-dir", str(tmp_path)]) == 2


class TestSentinelSchema:
    def test_build_doc_shape(self):
        checks = compare_docs(TestCompareDocs.BASE, TestCompareDocs.BASE, "a.json")
        doc = build_sentinel_doc(
            checks,
            [{"name": "a.json", "bench": "pipeline"}],
            "self",
            0.35,
            0.005,
            0.15,
        )
        assert check_bench_json.validate(doc) == []

    def test_validator_rejects_inconsistent_summary(self):
        checks = compare_docs(TestCompareDocs.BASE, TestCompareDocs.BASE, "a.json")
        doc = build_sentinel_doc(checks, [{"name": "a.json"}], "self", 0.35, 0.005, 0.15)
        doc["summary"]["regressed"] = 5  # lie about the tally
        assert check_bench_json.validate(doc) != []

    def test_validator_rejects_bad_status(self):
        checks = compare_docs(TestCompareDocs.BASE, TestCompareDocs.BASE, "a.json")
        doc = build_sentinel_doc(checks, [{"name": "a.json"}], "self", 0.35, 0.005, 0.15)
        doc["checks"][0]["status"] = "maybe"
        assert check_bench_json.validate(doc) != []

    def test_console_entry_point_declared(self):
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert 'repro-sentinel = "repro.telemetry.sentinel:main"' in text

    def test_wrapper_script_exists(self):
        assert (BENCH_DIR / "sentinel.py").exists()
