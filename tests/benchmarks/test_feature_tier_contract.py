"""Contract tests for ``benchmarks/bench_feature_tier.py`` and its artifact.

Mirrors the other bench contracts: a fresh ``--smoke`` run must satisfy
the schema, and the committed full-mode ``BENCH_feature_tier.json`` must
stay valid and keep ISSUE 10's acceptance bars — mmap slicing at >= 0.5x
in-RAM throughput while serving >= 4x the graph per GB of RAM, uint8
codes halving bytes-per-row vs fp16, and the parity section's
byte-identical/bounded-drift guarantees (enforced by the schema itself).
The parity gate also has direct unit coverage here so a schema regression
can't silently drop it.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(BENCH_DIR))

import bench_feature_tier  # noqa: E402
import check_bench_json  # noqa: E402

ALL_VARIANTS = {"ram", "mmap", "mmap-tiered", "mmap-quant"}


@pytest.fixture(scope="module")
def smoke_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_feature_tier.json"
    assert bench_feature_tier.main(["--smoke", "--output", str(out)]) == 0
    return json.loads(out.read_text()), out


class TestSmokeRun:
    def test_smoke_artifact_satisfies_schema(self, smoke_doc):
        doc, _ = smoke_doc
        assert check_bench_json.validate(doc) == []
        assert doc["mode"] == "smoke"

    def test_smoke_covers_every_tier(self, smoke_doc):
        doc, _ = smoke_doc
        assert {r["variant"] for r in doc["rows"]} == ALL_VARIANTS

    def test_parity_holds_on_this_host(self, smoke_doc):
        """Not just the committed numbers: ram vs mmap byte-identity must
        reproduce wherever the suite runs."""
        doc, _ = smoke_doc
        parity = doc["parity"]
        assert parity["ram_vs_mmap_identical_serial"] is True
        assert parity["ram_vs_mmap_identical_multiprocess"] is True
        assert 0 <= parity["quant_final_loss_delta"] < 1e-2

    def test_cli_roundtrip(self, smoke_doc):
        _, path = smoke_doc
        assert check_bench_json.main([str(path)]) == 0


class TestCommittedArtifact:
    @pytest.fixture(scope="class")
    def committed(self):
        path = REPO_ROOT / "BENCH_feature_tier.json"
        assert path.exists(), "committed BENCH_feature_tier.json missing"
        return json.loads(path.read_text())

    def test_valid_full_mode(self, committed):
        assert check_bench_json.validate(committed, min_reps=5) == []
        assert committed["mode"] == "full"

    def test_capacity_and_throughput_bars(self, committed):
        """ISSUE 10's acceptance bars on the committed numbers."""
        for name, entry in committed["summary"].items():
            assert entry["mmap_slice_relative_throughput"] >= 0.5, name
            assert entry["mmap_graph_per_gb_gain"] >= 4.0, name
            assert entry["quant_bytes_per_row_reduction"] >= 2.0, name


class TestParityValidation:
    """The schema enforces the parity gate — pin that it really rejects."""

    @pytest.fixture()
    def doc(self):
        return json.loads((REPO_ROOT / "BENCH_feature_tier.json").read_text())

    def test_missing_parity_section_rejected(self, doc):
        del doc["parity"]
        assert any("parity" in e for e in check_bench_json.validate(doc))

    def test_non_identical_executor_rejected(self, doc):
        doc["parity"]["ram_vs_mmap_identical_multiprocess"] = False
        assert check_bench_json.validate(doc) != []

    def test_excessive_loss_delta_rejected(self, doc):
        doc["parity"]["quant_final_loss_delta"] = 0.5
        errors = check_bench_json.validate(doc)
        assert any("quant_final_loss_delta" in e for e in errors)

    def test_storage_bound_is_a_known_verdict(self):
        assert "storage-bound" in check_bench_json.ATTRIBUTION_VERDICTS
