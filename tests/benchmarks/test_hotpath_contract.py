"""Tier-1 contract for the hot-path bench and its JSON artifact.

Runs ``bench_sampler_hotpath.py --smoke`` end-to-end (seconds-scale) and
validates its output with ``check_bench_json.py``, then validates the
committed ``BENCH_sampler_hotpath.json`` at the repo root — including the
headline acceptance ratio (arena >= 1.3x old-fast on products). Schema or
regression drift in either artifact fails the ordinary test run.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import check_bench_json  # noqa: E402


@pytest.fixture(scope="module")
def smoke_doc(tmp_path_factory):
    import bench_sampler_hotpath

    out = tmp_path_factory.mktemp("bench") / "smoke.json"
    assert bench_sampler_hotpath.main(["--smoke", "--output", str(out)]) == 0
    return json.loads(out.read_text())


class TestSmokeRun:
    def test_smoke_artifact_passes_validator(self, smoke_doc):
        assert check_bench_json.validate(smoke_doc, min_reps=2) == []
        assert smoke_doc["mode"] == "smoke"

    def test_smoke_covers_all_bench_datasets(self, smoke_doc):
        from common import BENCH_SCALES

        assert set(smoke_doc["summary"]) == set(BENCH_SCALES)


class TestCommittedArtifact:
    @pytest.fixture(scope="class")
    def committed(self):
        path = REPO_ROOT / "BENCH_sampler_hotpath.json"
        assert path.exists(), "BENCH_sampler_hotpath.json missing at repo root"
        return json.loads(path.read_text())

    def test_schema_valid_with_full_reps(self, committed):
        assert check_bench_json.validate(committed, min_reps=5) == []
        assert committed["mode"] == "full"

    def test_arena_speedup_meets_acceptance_bar(self, committed):
        assert committed["summary"]["products"]["arena_vs_fast_speedup"] >= 1.3

    def test_fused_slicing_not_slower_than_reference(self, committed):
        for entry in committed["summary"].values():
            assert entry["fused_vs_reference_slicing_speedup"] >= 1.0


class TestValidatorRejects:
    def test_missing_rows(self):
        assert check_bench_json.validate({"bench": "sampler_hotpath"})

    def test_wrong_bench_name(self, smoke_doc):
        doc = dict(smoke_doc, bench="other")
        assert any("sampler_hotpath" in e for e in check_bench_json.validate(doc))

    def test_nonfinite_number(self, smoke_doc):
        doc = json.loads(json.dumps(smoke_doc))
        doc["rows"][0]["median_s"] = 0.0
        assert any("median_s" in e for e in check_bench_json.validate(doc))

    def test_missing_variant_detected(self, smoke_doc):
        doc = json.loads(json.dumps(smoke_doc))
        doc["rows"] = [r for r in doc["rows"] if r["variant"] != "arena"]
        assert any("missing variants" in e for e in check_bench_json.validate(doc))

    def test_min_reps_enforced(self, smoke_doc):
        assert any(
            "reps" in e for e in check_bench_json.validate(smoke_doc, min_reps=99)
        )

    def test_cli_roundtrip(self, tmp_path, smoke_doc, capsys):
        path = tmp_path / "doc.json"
        path.write_text(json.dumps(smoke_doc))
        assert check_bench_json.main([str(path)]) == 0
        path.write_text("{not json")
        assert check_bench_json.main([str(path)]) == 2
