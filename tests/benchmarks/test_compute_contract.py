"""Contract tests for ``benchmarks/bench_compute_kernels.py`` and its artifact.

Mirrors the hotpath/pipeline contracts: a fresh ``--smoke`` run must
satisfy the schema, the committed full-mode ``BENCH_compute_kernels.json``
must stay valid, and the headline claims — plan reuse and fusion beating
the legacy per-call kernels, and the fused epoch beating the legacy epoch
by the PR's >= 1.4x bar on the products configuration — must hold in the
committed numbers.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(BENCH_DIR))

import bench_compute_kernels  # noqa: E402
import check_bench_json  # noqa: E402


@pytest.fixture(scope="module")
def smoke_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_compute_kernels.json"
    assert bench_compute_kernels.main(["--smoke", "--output", str(out)]) == 0
    return json.loads(out.read_text()), out


class TestSmokeRun:
    def test_smoke_artifact_satisfies_schema(self, smoke_doc):
        doc, _ = smoke_doc
        assert check_bench_json.validate(doc) == []
        assert doc["mode"] == "smoke"

    def test_smoke_covers_all_groups_and_variants(self, smoke_doc):
        doc, _ = smoke_doc
        seen = {(r["bench"], r["variant"]) for r in doc["rows"]}
        assert seen == {
            ("aggregation", "legacy"),
            ("aggregation", "plan_reuse"),
            ("aggregation", "fused"),
            ("alloc", "fresh"),
            ("alloc", "pooled"),
            ("epoch", "legacy"),
            ("epoch", "fused"),
        }

    def test_cli_roundtrip(self, smoke_doc):
        _, path = smoke_doc
        assert check_bench_json.main([str(path)]) == 0


class TestCommittedArtifact:
    @pytest.fixture(scope="class")
    def committed(self):
        path = REPO_ROOT / "BENCH_compute_kernels.json"
        assert path.exists(), (
            "committed BENCH_compute_kernels.json missing from repo root"
        )
        return json.loads(path.read_text())

    def test_valid_full_mode(self, committed):
        assert check_bench_json.validate(committed, min_reps=5) == []
        assert committed["mode"] == "full"

    def test_plan_and_fusion_beat_legacy_kernels(self, committed):
        for name, entry in committed["summary"].items():
            assert entry["plan_reuse_speedup"] > 1.0, name
            assert entry["fused_speedup"] > entry["plan_reuse_speedup"], name

    def test_fused_epoch_meets_the_acceptance_bar(self, committed):
        """The PR's acceptance claim: >= 1.4x end-to-end fused+pooled epoch
        speedup on the synthetic products-scale configuration (and a win on
        every other dataset)."""
        assert committed["summary"]["products"]["fused_epoch_speedup"] >= 1.4
        for name, entry in committed["summary"].items():
            assert entry["fused_epoch_speedup"] > 1.0, name
