"""Contract tests for ``benchmarks/bench_pipeline.py`` and its artifact.

Mirrors the hotpath contract: a fresh ``--smoke`` run must satisfy the
schema, the committed full-mode ``BENCH_pipeline.json`` must stay valid,
and the headline claim — staged pipelined inference beating the serial
policy — must hold in the committed numbers.  Also covers the
multi-artifact ``validate_all`` entry point that checks every
``BENCH_*.json`` at the repo root in one pass.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(BENCH_DIR))

import bench_pipeline  # noqa: E402
import check_bench_json  # noqa: E402


@pytest.fixture(scope="module")
def smoke_doc(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_pipeline.json"
    assert bench_pipeline.main(["--smoke", "--output", str(out)]) == 0
    return json.loads(out.read_text()), out


class TestSmokeRun:
    def test_smoke_artifact_satisfies_schema(self, smoke_doc):
        doc, _ = smoke_doc
        assert check_bench_json.validate(doc) == []
        assert doc["mode"] == "smoke"

    def test_smoke_covers_both_workloads_and_all_policies(self, smoke_doc):
        doc, _ = smoke_doc
        seen = {(r["bench"], r["variant"]) for r in doc["rows"]}
        assert seen == {
            (bench, variant)
            for bench in ("train", "inference")
            for variant in ("serial", "pipelined", "staged")
        }

    def test_cli_roundtrip(self, smoke_doc):
        _, path = smoke_doc
        assert check_bench_json.main([str(path)]) == 0


class TestCommittedArtifact:
    @pytest.fixture(scope="class")
    def committed(self):
        path = REPO_ROOT / "BENCH_pipeline.json"
        assert path.exists(), "committed BENCH_pipeline.json missing from repo root"
        return json.loads(path.read_text())

    def test_valid_full_mode(self, committed):
        assert check_bench_json.validate(committed, min_reps=5) == []
        assert committed["mode"] == "full"

    def test_staged_inference_beats_serial(self, committed):
        """The PR's acceptance claim: pipelined inference through the staged
        runtime outperforms the serial policy on every dataset."""
        for name, entry in committed["summary"].items():
            assert entry["staged_inference_speedup"] > 1.0, name


class TestValidateAll:
    def test_all_committed_artifacts_valid(self):
        results = check_bench_json.validate_all(min_reps=5)
        assert results, "no BENCH_*.json artifacts at the repo root"
        assert set(results) >= {"BENCH_sampler_hotpath.json", "BENCH_pipeline.json"}
        bad = {name: errs for name, errs in results.items() if errs}
        assert not bad

    def test_invalid_artifact_reported_by_filename(self, tmp_path):
        good = {"bench": "nope"}
        (tmp_path / "BENCH_broken.json").write_text(json.dumps(good))
        (tmp_path / "BENCH_unreadable.json").write_text("{not json")
        (tmp_path / "ignored.json").write_text("{}")
        results = check_bench_json.validate_all(root=tmp_path)
        assert set(results) == {"BENCH_broken.json", "BENCH_unreadable.json"}
        assert any("bench must be one of" in e for e in results["BENCH_broken.json"])
        assert any("cannot read" in e for e in results["BENCH_unreadable.json"])
