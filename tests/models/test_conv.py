"""Convolution layers: hand-computed values and gradient flow."""

import numpy as np
import pytest

from repro.models import GATConv, GINConv, SAGEConv
from repro.nn import Linear, ReLU, Sequential
from repro.tensor import Tensor


def bipartite_case():
    """3 sources (targets are the first 2), 3 edges: 0->0, 2->0, 1->1."""
    x_src = Tensor(
        np.array([[1.0, 0.0], [0.0, 2.0], [3.0, 1.0]], dtype=np.float32),
        requires_grad=True,
    )
    x_dst = x_src[:2]
    edge_index = np.array([[0, 2, 1], [0, 0, 1]])
    return x_src, x_dst, edge_index


class TestSAGEConv:
    def test_mean_aggregation_value(self, rng):
        x_src, x_dst, edge_index = bipartite_case()
        conv = SAGEConv(2, 2, rng=rng)
        # identity weights isolate the aggregation arithmetic
        conv.lin_neigh.weight.data[...] = np.eye(2)
        conv.lin_root.weight.data[...] = np.eye(2)
        out = conv((x_src, x_dst), edge_index).data
        # target 0: mean of src 0 and 2 = (2.0, 0.5); plus root (1, 0)
        np.testing.assert_allclose(out[0], [3.0, 0.5], rtol=1e-6)
        # target 1: mean of src 1 = (0, 2); plus root (0, 2)
        np.testing.assert_allclose(out[1], [0.0, 4.0], rtol=1e-6)

    def test_sum_and_max_aggregators(self, rng):
        x_src, x_dst, edge_index = bipartite_case()
        for aggr, expected0 in (("sum", [4.0, 1.0]), ("max", [3.0, 1.0])):
            conv = SAGEConv(2, 2, aggregator=aggr, rng=rng)
            conv.lin_neigh.weight.data[...] = np.eye(2)
            conv.lin_root.weight.data[...] = 0.0
            out = conv((x_src, x_dst), edge_index).data
            np.testing.assert_allclose(out[0], expected0, rtol=1e-6)

    def test_node_without_edges_gets_root_only(self, rng):
        x_src, x_dst, _ = bipartite_case()
        edge_index = np.array([[0], [0]])  # target 1 receives nothing
        conv = SAGEConv(2, 2, rng=rng)
        conv.lin_neigh.weight.data[...] = np.eye(2)
        conv.lin_root.weight.data[...] = np.eye(2)
        out = conv((x_src, x_dst), edge_index).data
        np.testing.assert_allclose(out[1], x_dst.data[1], rtol=1e-6)

    def test_gradients_reach_inputs_and_weights(self, rng):
        x_src, x_dst, edge_index = bipartite_case()
        conv = SAGEConv(2, 3, rng=rng)
        conv((x_src, x_dst), edge_index).sum().backward()
        assert x_src.grad is not None
        assert conv.lin_neigh.weight.grad is not None
        assert conv.lin_root.weight.grad is not None

    def test_rejects_unknown_aggregator(self):
        with pytest.raises(ValueError):
            SAGEConv(2, 2, aggregator="median")

    def test_rejects_out_of_range_edges(self, rng):
        x_src, x_dst, _ = bipartite_case()
        conv = SAGEConv(2, 2, rng=rng)
        with pytest.raises(ValueError):
            conv((x_src, x_dst), np.array([[0], [5]]))
        with pytest.raises(ValueError):
            conv((x_src, x_dst), np.array([[9], [0]]))


class TestGATConv:
    def test_attention_weights_normalized(self, rng):
        x_src, x_dst, edge_index = bipartite_case()
        conv = GATConv(2, 4, rng=rng)
        out = conv((x_src, x_dst), edge_index)
        assert out.shape == (2, 4)

    def test_uniform_attention_reduces_to_mean_with_self_loop(self, rng):
        """Zero attention vectors -> uniform weights over {neighbors, self}."""
        x_src, x_dst, edge_index = bipartite_case()
        conv = GATConv(2, 2, rng=rng)
        conv.lin.weight.data[...] = np.eye(2)
        conv.att_src.data[...] = 0.0
        conv.att_dst.data[...] = 0.0
        out = conv((x_src, x_dst), edge_index).data
        # target 0: mean over {src0, src2, self0} = ((1+3+1)/3, (0+1+0)/3)
        np.testing.assert_allclose(out[0], [5 / 3, 1 / 3], rtol=1e-5)
        # target 1: mean over {src1, self1} = (0, 2)
        np.testing.assert_allclose(out[1], [0.0, 2.0], rtol=1e-5)

    def test_gradients_flow_through_attention(self, rng):
        x_src, x_dst, edge_index = bipartite_case()
        conv = GATConv(2, 3, rng=rng)
        conv((x_src, x_dst), edge_index).sum().backward()
        assert conv.att_src.grad is not None
        assert conv.att_dst.grad is not None
        assert x_src.grad is not None

    def test_multi_head_output_concatenates(self, rng):
        x_src, x_dst, edge_index = bipartite_case()
        conv = GATConv(2, 3, heads=4, rng=rng)
        out = conv((x_src, x_dst), edge_index)
        assert out.shape == (2, 12)

    def test_multi_head_gradients_flow(self, rng):
        x_src, x_dst, edge_index = bipartite_case()
        conv = GATConv(2, 3, heads=2, rng=rng)
        conv((x_src, x_dst), edge_index).sum().backward()
        assert conv.att_src.grad is not None
        assert conv.att_src.grad.shape == (2, 3)
        assert x_src.grad is not None

    def test_multi_head_uniform_attention_is_stacked_means(self, rng):
        """With zero attention vectors every head reduces to the neighbor
        mean of its own channel slice."""
        x_src, x_dst, edge_index = bipartite_case()
        conv = GATConv(2, 2, heads=2, rng=rng)
        conv.lin.weight.data[...] = np.vstack([np.eye(2), np.eye(2)])
        conv.att_src.data[...] = 0.0
        conv.att_dst.data[...] = 0.0
        out = conv((x_src, x_dst), edge_index).data
        np.testing.assert_allclose(out[:, :2], out[:, 2:], rtol=1e-5)
        np.testing.assert_allclose(out[0, :2], [5 / 3, 1 / 3], rtol=1e-5)

    def test_invalid_heads(self):
        with pytest.raises(ValueError):
            GATConv(2, 2, heads=0)

    def test_isolated_target_attends_to_itself(self, rng):
        x_src, x_dst, _ = bipartite_case()
        conv = GATConv(2, 2, rng=rng)
        conv.lin.weight.data[...] = np.eye(2)
        conv.att_src.data[...] = 0.0
        conv.att_dst.data[...] = 0.0
        out = conv((x_src, x_dst), np.empty((2, 0), dtype=np.int64)).data
        np.testing.assert_allclose(out, x_dst.data, rtol=1e-5)


class TestGINConv:
    def make_identity_mlp(self):
        lin = Linear(2, 2, bias=False)
        lin.weight.data[...] = np.eye(2)
        return Sequential(lin)

    def test_sum_aggregation_plus_eps_scaled_self(self):
        x_src, x_dst, edge_index = bipartite_case()
        conv = GINConv(self.make_identity_mlp(), eps=0.0)
        out = conv((x_src, x_dst), edge_index).data
        # target 0: sum(src0, src2) + self = (4,1)+(1,0)
        np.testing.assert_allclose(out[0], [5.0, 1.0], rtol=1e-6)

    def test_eps_scales_self_term(self):
        x_src, x_dst, edge_index = bipartite_case()
        conv = GINConv(self.make_identity_mlp(), eps=1.0)
        out = conv((x_src, x_dst), edge_index).data
        np.testing.assert_allclose(out[0], [4.0 + 2.0, 1.0 + 0.0], rtol=1e-6)

    def test_mlp_is_applied(self, rng):
        x_src, x_dst, edge_index = bipartite_case()
        mlp = Sequential(Linear(2, 8, rng=rng), ReLU(), Linear(8, 3, rng=rng))
        conv = GINConv(mlp)
        out = conv((x_src, x_dst), edge_index)
        assert out.shape == (2, 3)

    def test_gradients_reach_mlp(self, rng):
        x_src, x_dst, edge_index = bipartite_case()
        mlp = Sequential(Linear(2, 4, rng=rng))
        conv = GINConv(mlp)
        conv((x_src, x_dst), edge_index).sum().backward()
        assert mlp[0].weight.grad is not None
