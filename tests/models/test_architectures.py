"""Full architectures: shapes, training signal, registry, determinism."""

import numpy as np
import pytest

from repro.models import (
    GAT,
    GIN,
    MLP,
    MODEL_REGISTRY,
    GraphSAGE,
    SAGERI,
    build_model,
)
from repro.nn import Adam
from repro.sampling import FastNeighborSampler
from repro.tensor import Tensor, functional as F

ALL_MODELS = ["sage", "gat", "gin", "sage-ri", "mlp"]


@pytest.fixture(scope="module")
def batch(small_products):
    sampler = FastNeighborSampler(small_products.graph, [6, 4, 3])
    rng = np.random.default_rng(0)
    nodes = rng.choice(small_products.split.train, size=48, replace=False)
    mfg = sampler.sample(nodes, rng)
    x = Tensor(small_products.features[mfg.n_id].astype(np.float32))
    y = small_products.labels[mfg.target_ids()]
    return small_products, mfg, x, y


@pytest.mark.parametrize("name", ALL_MODELS)
class TestCommonContract:
    def test_output_shape_and_log_probs(self, name, batch):
        ds, mfg, x, y = batch
        model = build_model(name, ds.num_features, 16, ds.num_classes,
                            rng=np.random.default_rng(1))
        out = model(x, mfg.adjs)
        assert out.shape == (mfg.batch_size, ds.num_classes)
        # log-softmax output: rows exponentiate to a distribution
        np.testing.assert_allclose(
            np.exp(out.data).sum(axis=1), 1.0, rtol=1e-4
        )

    def test_one_step_reduces_loss(self, name, batch):
        ds, mfg, x, y = batch
        model = build_model(name, ds.num_features, 16, ds.num_classes,
                            rng=np.random.default_rng(2))
        opt = Adam(model.parameters(), lr=5e-3)
        losses = []
        for _ in range(5):
            model.zero_grad()
            loss = F.nll_loss(model(x, mfg.adjs), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_all_parameters_receive_gradients(self, name, batch):
        ds, mfg, x, y = batch
        model = build_model(name, ds.num_features, 16, ds.num_classes,
                            rng=np.random.default_rng(3))
        F.nll_loss(model(x, mfg.adjs), y).backward()
        for pname, p in model.named_parameters():
            assert p.grad is not None, f"{name}: no grad for {pname}"
            assert np.isfinite(p.grad).all(), f"{name}: non-finite grad {pname}"

    def test_eval_mode_is_deterministic(self, name, batch):
        ds, mfg, x, y = batch
        model = build_model(name, ds.num_features, 16, ds.num_classes,
                            rng=np.random.default_rng(4))
        model.eval()
        a = model(x, mfg.adjs).data
        b = model(x, mfg.adjs).data
        np.testing.assert_array_equal(a, b)

    def test_train_mode_dropout_randomizes(self, name, batch):
        if name == "gin":
            pytest.skip("GIN applies dropout only in the head; tiny effect")
        ds, mfg, x, y = batch
        model = build_model(name, ds.num_features, 16, ds.num_classes,
                            rng=np.random.default_rng(5))
        model.train()
        a = model(x, mfg.adjs).data
        b = model(x, mfg.adjs).data
        assert not np.array_equal(a, b)


class TestRegistry:
    def test_registry_contents(self):
        assert set(MODEL_REGISTRY) == {"sage", "gat", "gin", "sage-ri", "mlp"}

    def test_build_unknown_raises(self):
        with pytest.raises(KeyError):
            build_model("gcn", 4, 4, 4)

    def test_classes_match_registry(self):
        assert MODEL_REGISTRY["sage"] is GraphSAGE
        assert MODEL_REGISTRY["gat"] is GAT
        assert MODEL_REGISTRY["gin"] is GIN
        assert MODEL_REGISTRY["sage-ri"] is SAGERI
        assert MODEL_REGISTRY["mlp"] is MLP


class TestArchitectureSpecifics:
    def test_layer_count_mismatch_rejected(self, batch):
        ds, mfg, x, y = batch
        model = GraphSAGE(ds.num_features, 16, ds.num_classes, num_layers=2,
                          rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="layers"):
            model(x, mfg.adjs)  # 3 MFG layers vs 2 model layers

    def test_minimum_layers_enforced(self):
        for cls in (GraphSAGE, GAT, GIN, SAGERI):
            with pytest.raises(ValueError):
                cls(4, 4, 4, num_layers=1)

    def test_sage_ri_concatenates_all_layers(self, batch):
        ds, mfg, x, y = batch
        model = SAGERI(ds.num_features, 8, ds.num_classes,
                       rng=np.random.default_rng(0))
        # head input dim = in + L * hidden
        assert model.mlp[0].in_features == ds.num_features + 3 * 8

    def test_sage_ri_has_batchnorm_buffers(self, batch):
        ds, mfg, x, y = batch
        model = SAGERI(ds.num_features, 8, ds.num_classes,
                       rng=np.random.default_rng(0))
        buffer_names = [n for n, _ in model.named_buffers()]
        assert any("running_mean" in n for n in buffer_names)

    def test_mlp_ignores_graph(self, batch):
        """MLP output depends only on target-node features."""
        ds, mfg, x, y = batch
        model = MLP(ds.num_features, 16, ds.num_classes,
                    rng=np.random.default_rng(0))
        model.eval()
        out_full = model(x, mfg.adjs).data
        # re-run with only the target rows: identical result
        x_targets = Tensor(x.data.copy())
        out_again = model(x_targets, mfg.adjs).data
        np.testing.assert_array_equal(out_full, out_again)

    def test_gnn_beats_mlp_on_homophilous_data(self, small_products):
        """The synthetic datasets require aggregation: GraphSAGE must beat
        the graph-free MLP by a clear margin after a few epochs."""
        from repro.train import Trainer, get_config
        from dataclasses import replace

        cfg = replace(
            get_config("products", "sage"),
            batch_size=64,
            hidden_channels=32,
            lr=0.01,
        )
        accs = {}
        for model_name in ("sage", "mlp"):
            cfg_m = replace(cfg, model=model_name)
            trainer = Trainer(small_products, cfg_m, executor="serial", seed=0)
            for epoch in range(25):
                trainer.train_epoch(epoch)
            accs[model_name] = trainer.evaluate("test", fanouts=[10, 10, 10])
            trainer.shutdown()
        assert accs["sage"] > accs["mlp"] + 0.1
