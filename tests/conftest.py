"""Shared fixtures: small graphs and datasets reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate_dataset
from repro.graph import chain_graph, power_law_community_graph, star_graph


@pytest.fixture(scope="session")
def tiny_dataset():
    """A ~600-node arxiv-like dataset (fast enough for unit tests)."""
    return generate_dataset("arxiv", scale=0.25, seed=0)


@pytest.fixture(scope="session")
def small_products():
    """A ~2000-node products-like dataset for sampler/integration tests."""
    return generate_dataset("products", scale=0.25, seed=0)


@pytest.fixture(scope="session")
def community_graph():
    """A standalone power-law community graph (no features/labels)."""
    return power_law_community_graph(
        num_nodes=800,
        avg_degree=12.0,
        num_communities=4,
        rng=np.random.default_rng(7),
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
