"""Distributed-sampling communication model (future-work extension)."""

import numpy as np
import pytest

from repro.graph import (
    bfs_partition,
    partition_quality_report,
    random_partition,
    sampling_communication,
)


@pytest.fixture(scope="module")
def parts(small_products):
    rng = np.random.default_rng(0)
    return {
        "random": random_partition(small_products.graph, 4, rng=rng),
        "bfs": bfs_partition(small_products.graph, 4, rng=rng),
    }


class TestSamplingCommunication:
    def test_counts_are_consistent(self, small_products, parts):
        stats = sampling_communication(
            small_products.graph,
            parts["bfs"],
            small_products.split.train,
            [5, 3],
            batch_size=32,
            feature_bytes_per_node=256,
            max_batches=4,
        )
        assert stats.num_batches == 4
        assert 0 <= stats.remote_feature_fetches <= stats.total_sampled_nodes
        assert 0 <= stats.remote_adjacency_lookups <= stats.total_sampled_edges
        assert 0.0 <= stats.remote_node_fraction <= 1.0
        assert stats.comm_bytes_per_epoch() == stats.remote_feature_fetches * 256

    def test_locality_partition_reduces_communication(self, small_products, parts):
        """The Section 8 motivation: a locality-aware partition cuts the
        remote traffic of multi-hop sampling vs a random one."""
        kwargs = dict(
            train_nodes=small_products.split.train,
            fanouts=[5, 3],
            batch_size=32,
            max_batches=6,
        )
        random_stats = sampling_communication(
            small_products.graph, parts["random"], rng=np.random.default_rng(1), **kwargs
        )
        bfs_stats = sampling_communication(
            small_products.graph, parts["bfs"], rng=np.random.default_rng(1), **kwargs
        )
        assert bfs_stats.remote_node_fraction < random_stats.remote_node_fraction

    def test_single_part_has_no_communication(self, small_products):
        from repro.graph.partition import Partition

        part = Partition(
            assignment=np.zeros(small_products.num_nodes, dtype=np.int64),
            num_parts=1,
        )
        stats = sampling_communication(
            small_products.graph,
            part,
            small_products.split.train,
            [5],
            batch_size=32,
            max_batches=2,
        )
        assert stats.remote_feature_fetches == 0
        assert stats.remote_adjacency_lookups == 0

    def test_report_rows(self, small_products, parts):
        rows = partition_quality_report(
            small_products.graph,
            parts,
            small_products.split.train,
            [5, 3],
            batch_size=32,
            feature_bytes_per_node=200,
            max_batches=3,
        )
        assert {r["partition"] for r in rows} == {"random", "bfs"}
        for row in rows:
            assert row["edge_cut"] >= 0
            assert row["comm_MB_per_epoch"] >= 0
