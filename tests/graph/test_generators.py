"""Synthetic graph generators: structure, determinism, planted properties."""

import numpy as np
import pytest

from repro.graph import (
    chain_graph,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    power_law_community_graph,
    star_graph,
)


class TestDeterministicGenerators:
    def test_star(self):
        g = star_graph(6)
        assert g.num_nodes == 7
        assert g.num_edges == 12
        assert g.is_undirected()

    def test_chain(self):
        g = chain_graph(5)
        assert g.num_edges == 8
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 20
        assert (g.degree() == 4).all()

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        # corner degree 2, edge degree 3, interior degree 4
        assert g.degree(0) == 2
        assert sorted(np.unique(g.degree())) == [2, 3, 4]

    def test_erdos_renyi_density(self):
        g = erdos_renyi_graph(100, 0.1, rng=np.random.default_rng(0))
        expected = 0.1 * 100 * 99  # directed count of undirected pairs * 2
        assert 0.6 * expected < g.num_edges < 1.4 * expected
        assert g.is_undirected()


class TestPowerLawCommunityGraph:
    def test_basic_shape(self, community_graph):
        g = community_graph.graph
        assert g.num_nodes == 800
        assert g.is_undirected()
        assert community_graph.communities.shape == (800,)
        assert community_graph.weights.shape == (800,)

    def test_heavy_tailed_degrees(self, community_graph):
        deg = community_graph.graph.degree()
        # hubs far above the mean indicate a heavy tail
        assert deg.max() > 6 * deg.mean()

    def test_homophily_above_random(self, community_graph):
        g = community_graph.graph
        comm = community_graph.communities
        ei = g.edge_index()
        same = (comm[ei[0]] == comm[ei[1]]).mean()
        assert same > 0.5  # random would be ~1/4 with 4 communities

    def test_hub_mixing_reduces_hub_homophily(self):
        gen = power_law_community_graph(
            2000, 16.0, num_communities=4, hub_mixing=0.8,
            rng=np.random.default_rng(3),
        )
        g, comm = gen.graph, gen.communities
        deg = g.degree()
        ei = g.edge_index()
        same = comm[ei[0]] == comm[ei[1]]
        hub_nodes = deg > np.quantile(deg, 0.9)
        hub_edges = hub_nodes[ei[0]]
        assert same[hub_edges].mean() < same[~hub_edges].mean()

    def test_deterministic_given_rng_seed(self):
        a = power_law_community_graph(300, 8.0, rng=np.random.default_rng(5))
        b = power_law_community_graph(300, 8.0, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.graph.indices, b.graph.indices)
        np.testing.assert_array_equal(a.communities, b.communities)

    def test_every_community_nonempty(self, community_graph):
        counts = np.bincount(community_graph.communities, minlength=4)
        assert (counts > 0).all()

    def test_no_self_loops(self, community_graph):
        ei = community_graph.graph.edge_index()
        assert (ei[0] != ei[1]).all()

    def test_avg_degree_near_target(self):
        gen = power_law_community_graph(2000, 20.0, rng=np.random.default_rng(11))
        avg = gen.graph.num_edges / gen.graph.num_nodes
        # symmetrization + dedup shifts it, but the order must hold
        assert 10.0 < avg < 45.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            power_law_community_graph(3, 4.0, num_communities=10)
        with pytest.raises(ValueError):
            power_law_community_graph(100, 4.0, intra_prob=1.5)
