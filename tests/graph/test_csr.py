"""CSRGraph invariants and derived-graph operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    CSRGraph,
    chain_graph,
    complete_graph,
    from_edge_index,
    grid_graph,
    star_graph,
)


@st.composite
def random_edge_graph(draw):
    n = draw(st.integers(min_value=1, max_value=15))
    m = draw(st.integers(min_value=0, max_value=40))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    edge_index = np.array([src, dst], dtype=np.int64).reshape(2, -1)
    return from_edge_index(edge_index, n), edge_index, n


class TestValidation:
    def test_rejects_bad_indptr_start(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0]), 1)

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]), 2)

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]), 1)

    def test_rejects_mismatched_edge_count(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 3]), np.array([0]), 1)

    def test_infers_num_nodes(self):
        g = CSRGraph(np.array([0, 1, 1]), np.array([1]))
        assert g.num_nodes == 2


class TestAccessors:
    def test_star_neighbors(self):
        g = star_graph(4)
        assert set(g.neighbors(0)) == {1, 2, 3, 4}
        assert g.degree(0) == 4
        assert g.degree(1) == 1

    def test_degree_vector(self):
        g = chain_graph(4)
        np.testing.assert_array_equal(g.degree(), [1, 2, 2, 1])

    def test_edges_iterator_counts(self):
        g = complete_graph(4)
        assert len(list(g.edges())) == 12

    def test_edge_index_roundtrip(self):
        g = grid_graph(3, 3)
        rebuilt = from_edge_index(g.edge_index(), g.num_nodes, coalesce=False)
        np.testing.assert_array_equal(rebuilt.indptr, g.indptr)
        np.testing.assert_array_equal(rebuilt.indices, g.indices)

    def test_memory_bytes_positive(self):
        assert chain_graph(5).memory_bytes() > 0


class TestDerived:
    def test_reverse_of_directed_edge(self):
        edge_index = np.array([[0], [1]])
        g = from_edge_index(edge_index, 2)
        r = g.reverse()
        assert list(r.neighbors(1)) == [0]
        assert len(r.neighbors(0)) == 0

    @settings(max_examples=30, deadline=None)
    @given(random_edge_graph())
    def test_reverse_twice_is_identity(self, case):
        g, _, _ = case
        rr = g.reverse().reverse()
        np.testing.assert_array_equal(np.sort(rr.edge_index()[0]), np.sort(g.edge_index()[0]))
        assert rr.num_edges == g.num_edges

    def test_undirected_detection(self):
        assert chain_graph(5).is_undirected()
        assert not from_edge_index(np.array([[0], [1]]), 2).is_undirected()

    def test_induced_subgraph_keeps_internal_edges(self):
        g = chain_graph(5)  # 0-1-2-3-4
        sub, mapping = g.induced_subgraph(np.array([1, 2, 3]))
        assert sub.num_nodes == 3
        # edges 1-2, 2-3 survive in both directions
        assert sub.num_edges == 4
        np.testing.assert_array_equal(mapping, [1, 2, 3])

    def test_induced_subgraph_drops_external_edges(self):
        g = star_graph(5)
        sub, _ = g.induced_subgraph(np.array([1, 2]))  # two leaves, no hub
        assert sub.num_edges == 0

    @settings(max_examples=30, deadline=None)
    @given(random_edge_graph())
    def test_degree_sums_to_edges(self, case):
        g, _, _ = case
        assert int(g.degree().sum()) == g.num_edges
