"""Partitioner: balance and edge-cut quality."""

import numpy as np
import pytest

from repro.graph import (
    bfs_partition,
    edge_cut,
    grid_graph,
    random_partition,
)


class TestRandomPartition:
    def test_balanced(self, community_graph):
        p = random_partition(community_graph.graph, 4, rng=np.random.default_rng(0))
        assert p.imbalance() < 1.05
        assert set(np.unique(p.assignment)) == {0, 1, 2, 3}


class TestBFSPartition:
    def test_all_nodes_assigned(self, community_graph):
        p = bfs_partition(community_graph.graph, 4, rng=np.random.default_rng(0))
        assert (p.assignment >= 0).all()
        assert (p.assignment < 4).all()

    def test_roughly_balanced(self, community_graph):
        p = bfs_partition(community_graph.graph, 4, rng=np.random.default_rng(0))
        assert p.imbalance() < 1.35

    def test_cut_beats_random(self, community_graph):
        g = community_graph.graph
        rng = np.random.default_rng(0)
        bfs_cut = edge_cut(g, bfs_partition(g, 4, rng=rng).assignment)
        rand_cut = edge_cut(g, random_partition(g, 4, rng=rng).assignment)
        assert bfs_cut < rand_cut

    def test_grid_partition_is_spatially_coherent(self):
        g = grid_graph(10, 10)
        p = bfs_partition(g, 2, rng=np.random.default_rng(1))
        cut = edge_cut(g, p.assignment)
        # a clean bisection of a 10x10 grid cuts ~10-30 edges; random ~90
        assert cut < 60

    def test_single_part(self):
        g = grid_graph(4, 4)
        p = bfs_partition(g, 1, rng=np.random.default_rng(0))
        assert (p.assignment == 0).all()
        assert edge_cut(g, p.assignment) == 0

    def test_invalid_num_parts(self):
        with pytest.raises(ValueError):
            bfs_partition(grid_graph(2, 2), 0)

    def test_handles_disconnected_graph(self):
        # two disjoint chains via a block-diagonal edge set
        from repro.graph import from_edge_index

        ei = np.array([[0, 1, 3, 4], [1, 2, 4, 5]])
        g = from_edge_index(ei, 6, undirected=True)
        p = bfs_partition(g, 2, rng=np.random.default_rng(2))
        assert (p.assignment >= 0).all()


class TestEdgeCut:
    def test_zero_for_single_part(self, community_graph):
        g = community_graph.graph
        assert edge_cut(g, np.zeros(g.num_nodes, dtype=np.int64)) == 0

    def test_counts_undirected_edges_once(self):
        g = grid_graph(1, 2)  # single undirected edge
        assert edge_cut(g, np.array([0, 1])) == 1
