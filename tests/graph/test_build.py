"""COO->CSR builders: coalescing, symmetrization, self-loops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    add_self_loops,
    coalesce_edge_index,
    from_edge_index,
    remove_self_loops,
    to_undirected_edge_index,
)


class TestCoalesce:
    def test_removes_duplicates(self):
        ei = np.array([[0, 0, 1], [1, 1, 0]])
        out = coalesce_edge_index(ei, 2)
        assert out.shape == (2, 2)

    def test_sorted_by_src_then_dst(self):
        ei = np.array([[1, 0, 1], [0, 1, 2]])
        out = coalesce_edge_index(ei, 3)
        keys = out[0] * 3 + out[1]
        assert (np.diff(keys) > 0).all()

    def test_empty(self):
        out = coalesce_edge_index(np.empty((2, 0), dtype=np.int64), 3)
        assert out.shape == (2, 0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            coalesce_edge_index(np.zeros((3, 4), dtype=np.int64), 5)


class TestSelfLoops:
    def test_remove(self):
        ei = np.array([[0, 1, 2], [0, 2, 2]])
        out = remove_self_loops(ei)
        np.testing.assert_array_equal(out, [[1], [2]])

    def test_add(self):
        ei = np.array([[0], [1]])
        out = add_self_loops(ei, 3)
        assert out.shape == (2, 4)
        loops = out[:, 1:]
        np.testing.assert_array_equal(loops[0], loops[1])


class TestUndirected:
    def test_reverse_edges_added(self):
        ei = np.array([[0], [1]])
        out = to_undirected_edge_index(ei, 2)
        assert out.shape == (2, 2)
        g = from_edge_index(out, 2, coalesce=False)
        assert g.is_undirected()

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(2, 10),
        st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30),
    )
    def test_always_symmetric(self, n, pairs):
        pairs = [(a % n, b % n) for a, b in pairs]
        if not pairs:
            pairs = [(0, 1)]
        ei = np.array(pairs).T
        g = from_edge_index(ei, n, undirected=True)
        assert g.is_undirected()


class TestFromEdgeIndex:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            from_edge_index(np.array([[0], [7]]), 3)

    def test_adjacency_matches_input(self):
        ei = np.array([[0, 0, 2], [1, 2, 0]])
        g = from_edge_index(ei, 3)
        assert set(g.neighbors(0)) == {1, 2}
        assert set(g.neighbors(2)) == {0}
        assert g.degree(1) == 0

    def test_coalesce_flag(self):
        ei = np.array([[0, 0], [1, 1]])
        assert from_edge_index(ei, 2, coalesce=True).num_edges == 1
        assert from_edge_index(ei, 2, coalesce=False).num_edges == 2
