"""Inference paths: sampled vs layer-wise full-neighborhood consistency."""

import numpy as np
import pytest

from repro.models import build_model
from repro.train import layerwise_full_inference, sampled_inference
from repro.train.inference import LayerwiseResult


@pytest.fixture(scope="module")
def trained_setup(small_products):
    """A briefly trained 2-layer SAGE model (training details irrelevant)."""
    from dataclasses import replace

    from repro.train import Trainer, get_config

    cfg = replace(
        get_config("products", "sage"),
        batch_size=64,
        hidden_channels=24,
        num_layers=2,
        train_fanouts=(10, 5),
        infer_fanouts=(10, 10),
        lr=0.01,
    )
    trainer = Trainer(small_products, cfg, executor="serial", seed=0)
    for epoch in range(10):
        trainer.train_epoch(epoch)
    trainer.shutdown()
    return small_products, trainer.model


MODELS_FOR_LAYERWISE = ["sage", "gat", "gin", "sage-ri", "mlp"]


class TestSampledInference:
    def test_output_aligned_with_nodes(self, trained_setup):
        ds, model = trained_setup
        nodes = ds.split.test[:100]
        out = sampled_inference(
            model, ds.features, ds.graph, nodes, [10, 10], batch_size=32
        )
        assert out.shape == (100, ds.num_classes)

    def test_deterministic_given_seed(self, trained_setup):
        ds, model = trained_setup
        nodes = ds.split.test[:50]
        a = sampled_inference(model, ds.features, ds.graph, nodes, [5, 5], seed=3)
        b = sampled_inference(model, ds.features, ds.graph, nodes, [5, 5], seed=3)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_changes_samples(self, trained_setup):
        ds, model = trained_setup
        nodes = ds.split.test[:50]
        a = sampled_inference(model, ds.features, ds.graph, nodes, [3, 3], seed=0)
        b = sampled_inference(model, ds.features, ds.graph, nodes, [3, 3], seed=1)
        assert not np.array_equal(a, b)

    def test_puts_model_in_eval_mode(self, trained_setup):
        ds, model = trained_setup
        model.train()
        sampled_inference(model, ds.features, ds.graph, ds.split.test[:10], [5, 5])
        assert not model.training

    def test_full_fanout_matches_layerwise(self, trained_setup):
        """With fanouts=None the sampled path computes exact neighborhoods,
        so it must agree with layer-wise full inference."""
        ds, model = trained_setup
        nodes = ds.split.test[:64]
        sampled = sampled_inference(
            model, ds.features, ds.graph, nodes, [None, None], batch_size=32
        )
        full = layerwise_full_inference(model, ds.features, ds.graph)
        np.testing.assert_allclose(sampled, full.select(nodes), rtol=1e-3, atol=1e-4)


class TestLayerwiseFullInference:
    @pytest.mark.parametrize("name", MODELS_FOR_LAYERWISE)
    def test_runs_and_shapes(self, name, small_products):
        ds = small_products
        model = build_model(
            name, ds.num_features, 12, ds.num_classes, num_layers=2,
            rng=np.random.default_rng(0),
        )
        result = layerwise_full_inference(model, ds.features, ds.graph, batch_size=512)
        assert isinstance(result, LayerwiseResult)
        assert result.log_probs.shape == (ds.num_nodes, ds.num_classes)
        np.testing.assert_allclose(
            np.exp(result.log_probs).sum(axis=1), 1.0, rtol=1e-3
        )

    def test_batch_size_does_not_change_result(self, trained_setup):
        ds, model = trained_setup
        a = layerwise_full_inference(model, ds.features, ds.graph, batch_size=128)
        b = layerwise_full_inference(model, ds.features, ds.graph, batch_size=1024)
        np.testing.assert_allclose(a.log_probs, b.log_probs, rtol=1e-4, atol=1e-5)

    def test_sage_ri_stores_all_layers(self, small_products):
        """Dense connections force every layer resident: SAGE-RI's peak host
        memory exceeds a plain stack's (the Section 5 trade-off)."""
        ds = small_products
        rngs = [np.random.default_rng(0), np.random.default_rng(0)]
        plain = build_model("sage", ds.num_features, 16, ds.num_classes,
                            num_layers=3, rng=rngs[0])
        dense = build_model("sage-ri", ds.num_features, 16, ds.num_classes,
                            num_layers=3, rng=rngs[1])
        plain_mem = layerwise_full_inference(plain, ds.features, ds.graph).peak_host_bytes
        dense_mem = layerwise_full_inference(dense, ds.features, ds.graph).peak_host_bytes
        assert dense_mem > plain_mem

    def test_select(self, trained_setup):
        ds, model = trained_setup
        result = layerwise_full_inference(model, ds.features, ds.graph)
        nodes = np.array([5, 0, 17])
        np.testing.assert_array_equal(result.select(nodes), result.log_probs[nodes])

    def test_unsupported_model_rejected(self, small_products):
        class Strange:
            def eval(self):
                return self

        with pytest.raises(TypeError):
            layerwise_full_inference(
                Strange(), small_products.features, small_products.graph
            )


class TestFanoutAccuracyShape:
    def test_accuracy_improves_with_fanout(self, trained_setup):
        """Table 6's core finding at small scale: accuracy is monotone-ish in
        inference fanout and saturates by ~20."""
        ds, model = trained_setup
        from repro.train import accuracy

        nodes = ds.split.test
        labels = ds.labels[nodes]
        accs = {}
        for fanout in (2, 20):
            out = sampled_inference(
                model, ds.features, ds.graph, nodes, [fanout, fanout], seed=0
            )
            accs[fanout] = accuracy(out, labels)
        full = layerwise_full_inference(model, ds.features, ds.graph)
        accs["full"] = accuracy(full.select(nodes), labels)
        assert accs[2] < accs[20] + 0.02  # tiny fanout is no better
        assert abs(accs[20] - accs["full"]) < 0.05  # fanout 20 ~ full
