"""End-to-end training with the subgraph-sampling extension.

Demonstrates the Section 2.2 subgraph family actually trains: a
Cluster-GCN-style loop (full-batch within sampled clusters) reaches
accuracy far above chance on the products stand-in, reusing the standard
architectures through ``SampledSubgraph.full_mfg_layers``.
"""

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import Adam
from repro.sampling import ClusterSubgraphSampler, RandomWalkSubgraphSampler
from repro.tensor import Tensor, functional as F
from repro.train import accuracy, sampled_inference


def _train_subgraph_loop(dataset, sampler_step, epochs=20, hidden=32, lr=0.01):
    model = build_model(
        "sage", dataset.num_features, hidden, dataset.num_classes,
        num_layers=2, rng=np.random.default_rng(0),
    )
    optimizer = Adam(model.parameters(), lr=lr)
    train_mask = np.zeros(dataset.num_nodes, dtype=bool)
    train_mask[dataset.split.train] = True

    for epoch in range(epochs):
        sub = sampler_step(np.random.default_rng(epoch))
        labeled_local = np.flatnonzero(train_mask[sub.n_id])
        if len(labeled_local) == 0:
            continue
        layers = sub.full_mfg_layers(2)
        x = Tensor(dataset.features[sub.n_id].astype(np.float32))
        model.train()
        optimizer.zero_grad()
        out = model(x, layers)
        loss = F.nll_loss(out[labeled_local], dataset.labels[sub.n_id][labeled_local])
        loss.backward()
        optimizer.step()
    return model


class TestSubgraphTraining:
    def test_cluster_gcn_loop_learns(self, small_products):
        sampler = ClusterSubgraphSampler(
            small_products.graph, 6, rng=np.random.default_rng(1)
        )
        model = _train_subgraph_loop(
            small_products,
            lambda rng: sampler.sample(rng, clusters_per_batch=2),
            epochs=40,
        )
        log_probs = sampled_inference(
            model,
            small_products.features,
            small_products.graph,
            small_products.split.test,
            [10, 10],
            batch_size=256,
        )
        acc = accuracy(log_probs, small_products.labels[small_products.split.test])
        assert acc > 0.30  # ~3x above the 10-class chance level

    def test_random_walk_loop_learns(self, small_products):
        sampler = RandomWalkSubgraphSampler(
            small_products.graph, num_roots=300, walk_length=2
        )
        model = _train_subgraph_loop(
            small_products, lambda rng: sampler.sample(rng), epochs=40
        )
        log_probs = sampled_inference(
            model,
            small_products.features,
            small_products.graph,
            small_products.split.test,
            [10, 10],
            batch_size=256,
        )
        acc = accuracy(log_probs, small_products.labels[small_products.split.test])
        assert acc > 0.3
