"""Full-batch trainer (comparator batching scheme)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.train import get_config
from repro.train.fullbatch import FullBatchTrainer


@pytest.fixture()
def config():
    return replace(
        get_config("arxiv", "sage"),
        hidden_channels=24,
        num_layers=2,
        lr=0.01,
    )


class TestFullBatchTrainer:
    def test_loss_decreases(self, tiny_dataset, config):
        trainer = FullBatchTrainer(tiny_dataset, config, seed=0)
        losses = [trainer.train_epoch().loss for _ in range(10)]
        assert losses[-1] < losses[0]

    def test_learns_above_chance(self, tiny_dataset, config):
        trainer = FullBatchTrainer(tiny_dataset, config, seed=0)
        for _ in range(30):
            trainer.train_epoch()
        acc = trainer.evaluate("val")
        assert acc > 3.0 / tiny_dataset.num_classes

    def test_deterministic_given_seed(self, tiny_dataset, config):
        runs = []
        for _ in range(2):
            trainer = FullBatchTrainer(tiny_dataset, config, seed=7)
            runs.append([trainer.train_epoch().loss for _ in range(3)])
        np.testing.assert_allclose(runs[0], runs[1], rtol=1e-6)

    def test_gradient_only_from_train_mask(self, tiny_dataset, config):
        """Flipping a *test* node's label must not change the training loss."""
        trainer_a = FullBatchTrainer(tiny_dataset, config, seed=0)
        loss_a = trainer_a.train_epoch().loss

        mutated = tiny_dataset.labels.copy()
        victim = tiny_dataset.split.test[0]
        mutated[victim] = (mutated[victim] + 1) % tiny_dataset.num_classes
        import dataclasses

        dataset_b = dataclasses.replace(tiny_dataset, labels=mutated)
        trainer_b = FullBatchTrainer(dataset_b, config, seed=0)
        loss_b = trainer_b.train_epoch().loss
        assert loss_a == pytest.approx(loss_b, rel=1e-6)

    def test_peak_activation_bytes_scales_with_layers(self, tiny_dataset, config):
        shallow = FullBatchTrainer(tiny_dataset, config, seed=0)
        deep = FullBatchTrainer(
            tiny_dataset, replace(config, num_layers=3), seed=0
        )
        assert deep.peak_activation_bytes() > shallow.peak_activation_bytes()

    def test_epoch_time_recorded(self, tiny_dataset, config):
        trainer = FullBatchTrainer(tiny_dataset, config, seed=0)
        stats = trainer.train_epoch()
        assert stats.epoch_time > 0
