"""DDP simulation: replica synchronization and gradient-averaging semantics."""

from dataclasses import replace

import numpy as np
import pytest

from repro.train import DDPTrainer, allreduce_seconds, get_config


@pytest.fixture()
def ddp_config():
    return replace(
        get_config("arxiv", "sage"),
        batch_size=32,
        hidden_channels=16,
        num_layers=2,
        train_fanouts=(6, 4),
        infer_fanouts=(6, 6),
    )


class TestAllreduceModel:
    def test_zero_for_single_rank(self):
        assert allreduce_seconds(1 << 20, 1) == 0.0

    def test_grows_with_ranks(self):
        times = [allreduce_seconds(1 << 22, k) for k in (2, 4, 8, 16)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_volume_term_dominates_for_large_buffers(self):
        small = allreduce_seconds(1 << 10, 4)
        large = allreduce_seconds(1 << 30, 4)
        assert large > 100 * small


class TestDDPTrainer:
    def test_replicas_start_identical(self, tiny_dataset, ddp_config):
        ddp = DDPTrainer(tiny_dataset, ddp_config, num_ranks=3, seed=0)
        assert ddp.max_replica_divergence() == 0.0

    def test_replicas_stay_in_sync_after_training(self, tiny_dataset, ddp_config):
        ddp = DDPTrainer(tiny_dataset, ddp_config, num_ranks=2, seed=0)
        ddp.train_epoch(0)
        # SAGE has no BatchNorm buffers, so replicas must agree exactly
        assert ddp.max_replica_divergence() == 0.0

    def test_epoch_produces_steps(self, tiny_dataset, ddp_config):
        ddp = DDPTrainer(tiny_dataset, ddp_config, num_ranks=2, seed=0)
        history = ddp.train_epoch(0)
        expected_steps = int(
            np.ceil(len(tiny_dataset.split.train) / (2 * ddp_config.batch_size))
        )
        assert len(history) == expected_steps
        assert all(np.isfinite(h.loss) and h.grad_norm >= 0 for h in history)

    def test_loss_decreases(self, tiny_dataset, ddp_config):
        ddp = DDPTrainer(tiny_dataset, ddp_config, num_ranks=2, seed=0)
        first = np.mean([h.loss for h in ddp.train_epoch(0)])
        for epoch in range(1, 5):
            last = np.mean([h.loss for h in ddp.train_epoch(epoch)])
        assert last < first

    def test_gradient_averaging_matches_big_batch(self, tiny_dataset, ddp_config):
        """The core DDP identity: averaging gradients over K equal shards of
        a batch equals the gradient of the mean loss over the full batch
        (both use mean-reduction NLL)."""
        ddp = DDPTrainer(tiny_dataset, ddp_config, num_ranks=2, seed=0)
        # grab one synchronized step's averaged gradient
        shards = ddp._rank_shards(0)
        grads_a, _ = ddp._rank_grads(0, shards[0][0], 0)
        grads_b, _ = ddp._rank_grads(1, shards[1][0], 0)
        averaged = [(a + b) / 2 for a, b in zip(grads_a, grads_b)]

        # big-batch gradient with the same MFGs: replicate by re-sampling the
        # same shard MFGs through the per-rank RNGs and summing manually.
        from repro.tensor import Tensor, functional as F

        model = ddp.replicas[0]
        model.zero_grad()
        total = None
        for rank, shard_nodes in ((0, shards[0][0]), (1, shards[1][0])):
            rng = np.random.default_rng(
                np.random.SeedSequence([ddp.seed, 11, 0, rank])
            )
            mfg = ddp.samplers[rank].sample(shard_nodes, rng)
            x = Tensor(tiny_dataset.features[mfg.n_id].astype(np.float32))
            y = tiny_dataset.labels[mfg.target_ids()]
            model.eval()  # disable dropout so gradients are comparable
            loss = F.nll_loss(model(x, mfg.adjs), y)
            loss.backward()
        combined = [p.grad / 2 for p in model.parameters()]

        # Eval-mode combined grads vs train-mode averaged grads won't match
        # exactly (dropout); compare only direction/coarse magnitude.
        cos = sum(
            float((a * b).sum())
            for a, b in zip(averaged, combined)
        ) / (
            np.sqrt(sum(float((a * a).sum()) for a in averaged))
            * np.sqrt(sum(float((b * b).sum()) for b in combined))
        )
        assert cos > 0.6

    def test_distributed_inference_covers_all_nodes(self, tiny_dataset, ddp_config):
        ddp = DDPTrainer(tiny_dataset, ddp_config, num_ranks=3, seed=0)
        nodes = tiny_dataset.split.val
        out = ddp.distributed_inference(nodes)
        assert out.shape == (len(nodes), tiny_dataset.num_classes)
        np.testing.assert_allclose(np.exp(out).sum(axis=1), 1.0, rtol=1e-4)

    def test_distributed_inference_matches_single_rank_at_full_fanout(
        self, tiny_dataset, ddp_config
    ):
        """With full neighborhoods there is no sampling noise, so sharded
        inference over identical replicas equals single-replica output."""
        from dataclasses import replace as dc_replace

        from repro.train import sampled_inference

        cfg = dc_replace(ddp_config, infer_fanouts=(None, None))
        ddp = DDPTrainer(tiny_dataset, cfg, num_ranks=2, seed=0)
        nodes = tiny_dataset.split.val[:40]
        sharded = ddp.distributed_inference(nodes)
        single = sampled_inference(
            ddp.replicas[0],
            tiny_dataset.features,
            tiny_dataset.graph,
            nodes,
            [None, None],
            batch_size=cfg.batch_size,
        )
        np.testing.assert_allclose(sharded, single, rtol=1e-4, atol=1e-5)

    def test_evaluate(self, tiny_dataset, ddp_config):
        ddp = DDPTrainer(tiny_dataset, ddp_config, num_ranks=2, seed=0)
        for epoch in range(4):
            ddp.train_epoch(epoch)
        acc = ddp.evaluate("val")
        assert 0.0 <= acc <= 1.0

    def test_single_rank_equals_sequential(self, tiny_dataset, ddp_config):
        """num_ranks=1 DDP reduces to plain mini-batch training."""
        ddp = DDPTrainer(tiny_dataset, ddp_config, num_ranks=1, seed=3)
        history = ddp.train_epoch(0)
        assert len(history) == int(
            np.ceil(len(tiny_dataset.split.train) / ddp_config.batch_size)
        )

    def test_invalid_ranks(self, tiny_dataset, ddp_config):
        with pytest.raises(ValueError):
            DDPTrainer(tiny_dataset, ddp_config, num_ranks=0)

    def test_param_bytes_positive(self, tiny_dataset, ddp_config):
        ddp = DDPTrainer(tiny_dataset, ddp_config, num_ranks=2)
        assert ddp.param_bytes() > 0
