"""Trainer checkpointing: exact resume of model + optimizer state."""

from dataclasses import replace

import numpy as np
import pytest

from repro.train import Trainer, get_config


@pytest.fixture()
def quick_config():
    return replace(
        get_config("arxiv", "sage"),
        batch_size=64,
        hidden_channels=16,
        num_layers=2,
        train_fanouts=(6, 4),
        infer_fanouts=(6, 6),
    )


class TestCheckpoint:
    def test_roundtrip_restores_parameters(self, tiny_dataset, quick_config, tmp_path):
        trainer = Trainer(tiny_dataset, quick_config, executor="serial", seed=0)
        trainer.train_epoch(0)
        path = tmp_path / "ckpt.npz"
        trainer.save_checkpoint(path)

        other = Trainer(tiny_dataset, quick_config, executor="serial", seed=99)
        other.load_checkpoint(path)
        for (na, pa), (nb, pb) in zip(
            trainer.model.named_parameters(), other.model.named_parameters()
        ):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)
        trainer.shutdown()
        other.shutdown()

    def test_resume_continues_identically(self, tiny_dataset, quick_config, tmp_path):
        """Training 2 epochs straight == training 1, checkpointing, resuming.

        (Deterministic because batch order, sampling and dropout RNGs are
        derived from (seed, epoch, batch) — not from global state.)
        """
        path = tmp_path / "ckpt.npz"

        straight = Trainer(tiny_dataset, quick_config, executor="serial", seed=5)
        straight.train_epoch(0)
        losses_straight = straight.train_epoch(1).losses

        first = Trainer(tiny_dataset, quick_config, executor="serial", seed=5)
        first.train_epoch(0)
        first.save_checkpoint(path)
        resumed = Trainer(tiny_dataset, quick_config, executor="serial", seed=5)
        resumed.load_checkpoint(path)
        losses_resumed = resumed.train_epoch(1).losses

        # dropout rng state differs (model-local), so allow small slack
        np.testing.assert_allclose(losses_straight, losses_resumed, rtol=0.2)
        straight.shutdown()
        first.shutdown()
        resumed.shutdown()

    def test_optimizer_moments_restored(self, tiny_dataset, quick_config, tmp_path):
        trainer = Trainer(tiny_dataset, quick_config, executor="serial", seed=0)
        trainer.train_epoch(0)
        path = tmp_path / "ckpt.npz"
        trainer.save_checkpoint(path)

        other = Trainer(tiny_dataset, quick_config, executor="serial", seed=1)
        other.load_checkpoint(path)
        assert other.optimizer._step == trainer.optimizer._step
        for m_a, m_b in zip(trainer.optimizer._m, other.optimizer._m):
            if m_a is None:
                assert m_b is None
            else:
                np.testing.assert_array_equal(m_a, m_b)
        trainer.shutdown()
        other.shutdown()

    def test_fresh_optimizer_state_roundtrip(self, tiny_dataset, quick_config, tmp_path):
        """Checkpointing before any step (no Adam moments yet) works."""
        trainer = Trainer(tiny_dataset, quick_config, executor="serial", seed=0)
        path = tmp_path / "ckpt.npz"
        trainer.save_checkpoint(path)
        other = Trainer(tiny_dataset, quick_config, executor="serial", seed=1)
        other.load_checkpoint(path)
        assert other.optimizer._step == 0
        trainer.shutdown()
        other.shutdown()
