"""Metrics: accuracy, per-degree buckets, mean/std."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.train import accuracy, accuracy_by_degree, mean_and_std


class TestAccuracy:
    def test_from_class_ids(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_from_logits(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert accuracy(logits, np.array([1, 0])) == 1.0

    def test_empty_is_nan(self):
        assert np.isnan(accuracy(np.array([]), np.array([])))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 4), min_size=1, max_size=50))
    def test_bounded(self, labels):
        labels = np.asarray(labels)
        preds = np.roll(labels, 1)
        acc = accuracy(preds, labels)
        assert 0.0 <= acc <= 1.0


class TestAccuracyByDegree:
    def test_counts_partition_nodes(self, rng):
        degrees = rng.integers(1, 500, size=300)
        preds = rng.integers(0, 3, size=300)
        labels = rng.integers(0, 3, size=300)
        result = accuracy_by_degree(preds, labels, degrees)
        assert result.node_counts.sum() == 300

    def test_perfect_predictions_give_unit_accuracy(self, rng):
        degrees = rng.integers(1, 100, size=100)
        labels = rng.integers(0, 3, size=100)
        result = accuracy_by_degree(labels, labels, degrees)
        filled = result.node_counts > 0
        np.testing.assert_allclose(result.accuracies[filled], 1.0)

    def test_empty_buckets_are_nan(self):
        degrees = np.array([1, 1, 1000])
        result = accuracy_by_degree(
            np.zeros(3, dtype=int), np.zeros(3, dtype=int), degrees, num_bins=8
        )
        assert np.isnan(result.accuracies[result.node_counts == 0]).all()

    def test_accepts_logits(self, rng):
        logits = rng.normal(size=(50, 4))
        labels = rng.integers(0, 4, size=50)
        degrees = rng.integers(1, 10, size=50)
        result = accuracy_by_degree(logits, labels, degrees)
        assert result.node_counts.sum() == 50

    def test_rows_export(self, rng):
        degrees = rng.integers(1, 50, size=40)
        result = accuracy_by_degree(
            np.zeros(40, dtype=int), np.zeros(40, dtype=int), degrees
        )
        rows = result.rows()
        assert sum(r["nodes"] for r in rows) == 40
        assert all("degree_lo" in r for r in rows)

    def test_linear_scale_option(self, rng):
        degrees = rng.integers(1, 100, size=60)
        result = accuracy_by_degree(
            np.zeros(60, dtype=int), np.zeros(60, dtype=int), degrees,
            num_bins=5, log_scale=False,
        )
        assert result.node_counts.sum() == 60


class TestMeanAndStd:
    def test_basic(self):
        mean, std = mean_and_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)

    def test_single_value_zero_std(self):
        mean, std = mean_and_std([5.0])
        assert mean == 5.0 and std == 0.0

    def test_empty(self):
        mean, std = mean_and_std([])
        assert np.isnan(mean) and np.isnan(std)


class TestConfusionAndF1:
    def test_confusion_matrix_counts(self):
        from repro.train import confusion_matrix

        preds = np.array([0, 1, 1, 2, 2, 2])
        labels = np.array([0, 1, 2, 2, 2, 0])
        cm = confusion_matrix(preds, labels, 3)
        assert cm[0, 0] == 1  # true 0 predicted 0
        assert cm[2, 1] == 1  # true 2 predicted 1
        assert cm[2, 2] == 2
        assert cm[0, 2] == 1
        assert cm.sum() == 6

    def test_confusion_accepts_logits(self, rng):
        from repro.train import confusion_matrix

        logits = rng.normal(size=(20, 4))
        labels = rng.integers(0, 4, size=20)
        cm = confusion_matrix(logits, labels, 4)
        assert cm.sum() == 20

    def test_perfect_macro_f1(self):
        from repro.train import macro_f1

        labels = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(labels, labels, 3) == pytest.approx(1.0)

    def test_macro_f1_penalizes_minority_errors(self):
        from repro.train import macro_f1, accuracy

        # 9 of class 0 all right; the single class-1 node wrong
        labels = np.array([0] * 9 + [1])
        preds = np.zeros(10, dtype=int)
        assert accuracy(preds, labels) == pytest.approx(0.9)
        assert macro_f1(preds, labels, 2) < 0.6

    def test_macro_f1_absent_classes_ignored(self):
        from repro.train import macro_f1

        labels = np.array([0, 0, 1])
        preds = np.array([0, 0, 1])
        # class 2 never appears: ignored, not counted as zero
        assert macro_f1(preds, labels, 3) == pytest.approx(1.0)
