"""Trainer driver: fit/evaluate, executor and sampler options, configs."""

from dataclasses import replace

import numpy as np
import pytest

from repro.train import TABLE5_CONFIGS, ExperimentConfig, Trainer, get_config


@pytest.fixture()
def quick_config():
    return replace(
        get_config("arxiv", "sage"),
        batch_size=64,
        hidden_channels=16,
        num_layers=2,
        train_fanouts=(8, 4),
        infer_fanouts=(8, 8),
        epochs=2,
    )


class TestConfig:
    def test_table5_covers_paper_rows(self):
        pairs = {(c.dataset, c.model) for c in TABLE5_CONFIGS}
        assert pairs == {
            ("arxiv", "sage"),
            ("products", "sage"),
            ("papers", "sage"),
            ("papers", "gat"),
            ("papers", "gin"),
            ("papers", "sage-ri"),
        }

    def test_paper_fanouts(self):
        assert get_config("papers", "gin").train_fanouts == (20, 20, 20)
        assert get_config("papers", "sage-ri").train_fanouts == (12, 12, 12)
        assert get_config("papers", "sage").train_fanouts == (15, 10, 5)

    def test_unknown_config(self):
        with pytest.raises(KeyError):
            get_config("papers", "gcn")

    def test_scaled_batch(self):
        cfg = ExperimentConfig(dataset="x", model="sage", batch_size=1000)
        assert cfg.scaled(0.1).batch_size == 100
        assert cfg.scaled(0.0001).batch_size == 32  # floor


class TestTrainer:
    def test_fit_returns_history(self, tiny_dataset, quick_config):
        trainer = Trainer(tiny_dataset, quick_config, executor="serial", seed=0)
        result = trainer.fit(epochs=2, evaluate_every=1)
        trainer.shutdown()
        assert len(result.epoch_stats) == 2
        assert len(result.val_accuracy) == 2
        assert result.total_time > 0
        assert np.isfinite(result.final_loss())

    def test_loss_decreases_over_epochs(self, tiny_dataset, quick_config):
        trainer = Trainer(tiny_dataset, quick_config, executor="serial", seed=0)
        result = trainer.fit(epochs=6)
        trainer.shutdown()
        first = np.mean(result.epoch_stats[0].losses)
        last = np.mean(result.epoch_stats[-1].losses)
        assert last < first

    def test_epoch_batches_deterministic(self, tiny_dataset, quick_config):
        t1 = Trainer(tiny_dataset, quick_config, executor="serial", seed=5)
        t2 = Trainer(tiny_dataset, quick_config, executor="serial", seed=5)
        for b1, b2 in zip(t1.epoch_batches(3), t2.epoch_batches(3)):
            np.testing.assert_array_equal(b1, b2)
        t1.shutdown()
        t2.shutdown()

    def test_epochs_reshuffle(self, tiny_dataset, quick_config):
        trainer = Trainer(tiny_dataset, quick_config, executor="serial", seed=0)
        a = np.concatenate(trainer.epoch_batches(0))
        b = np.concatenate(trainer.epoch_batches(1))
        trainer.shutdown()
        assert not np.array_equal(a, b)
        np.testing.assert_array_equal(np.sort(a), np.sort(b))

    def test_pyg_sampler_option(self, tiny_dataset, quick_config):
        trainer = Trainer(
            tiny_dataset, quick_config, executor="serial", sampler="pyg", seed=0
        )
        stats = trainer.train_epoch(0)
        trainer.shutdown()
        assert stats.num_batches > 0

    def test_pipelined_executor_trains(self, tiny_dataset, quick_config):
        trainer = Trainer(tiny_dataset, quick_config, executor="pipelined", seed=0)
        stats = trainer.train_epoch(0)
        trainer.shutdown()
        assert stats.num_batches == len(trainer.epoch_batches(0))

    def test_evaluate_bounds(self, tiny_dataset, quick_config):
        trainer = Trainer(tiny_dataset, quick_config, executor="serial", seed=0)
        trainer.train_epoch(0)
        acc = trainer.evaluate("val")
        trainer.shutdown()
        assert 0.0 <= acc <= 1.0

    def test_invalid_options_rejected(self, tiny_dataset, quick_config):
        with pytest.raises(ValueError):
            Trainer(tiny_dataset, quick_config, executor="async")
        with pytest.raises(ValueError):
            Trainer(tiny_dataset, quick_config, sampler="ladies")

    def test_early_stopping_halts_and_restores_best(self, tiny_dataset, quick_config):
        trainer = Trainer(tiny_dataset, quick_config, executor="serial", seed=0)
        result = trainer.fit(
            epochs=30, evaluate_every=1, early_stopping_patience=2
        )
        trainer.shutdown()
        # either halted early or ran out of epochs; val history recorded
        assert len(result.val_accuracy) <= 30
        assert len(result.epoch_stats) == len(result.val_accuracy)
        # restored parameters reproduce (approximately) the best accuracy
        best = max(result.val_accuracy)
        trainer2_acc = None  # evaluate with the restored model
        restored = Trainer(tiny_dataset, quick_config, executor="serial", seed=0)
        restored.model.load_state_dict(trainer.model.state_dict())
        trainer2_acc = restored.evaluate("val")
        restored.shutdown()
        assert trainer2_acc >= best - 0.05

    def test_early_stopping_requires_evaluation(self, tiny_dataset, quick_config):
        trainer = Trainer(tiny_dataset, quick_config, executor="serial", seed=0)
        with pytest.raises(ValueError):
            trainer.fit(epochs=3, early_stopping_patience=2)
        trainer.shutdown()

    def test_same_seed_same_training(self, tiny_dataset, quick_config):
        results = []
        for _ in range(2):
            trainer = Trainer(tiny_dataset, quick_config, executor="serial", seed=11)
            stats = trainer.train_epoch(0)
            results.append(stats.losses)
            trainer.shutdown()
        np.testing.assert_allclose(results[0], results[1], rtol=1e-6)
