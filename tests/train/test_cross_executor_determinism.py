"""Cross-executor determinism: serial, pipelined and staged runs with one
seed must produce identical per-batch losses on every registered dataset.

Extends the PR 1 sampler-level determinism suite up through full training:
model init, batch shuffling, sampling RNG, slicing, transfer and optimizer
updates all flow through the staged-pipeline runtime, so any policy-specific
drift (worker scheduling, pinned staging, delivery order) would show up here
as a loss mismatch.
"""

import numpy as np
import pytest

from repro.datasets import available_datasets, get_dataset
from repro.train import Trainer
from repro.train.config import ExperimentConfig

EXECUTORS = ("serial", "pipelined", "staged")

#: small scales so the full matrix (datasets x executors) stays fast
SCALES = {"arxiv": 0.25, "products": 0.2, "papers": 0.15}


def _config(name: str) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=name,
        model="sage",
        num_layers=2,
        hidden_channels=16,
        train_fanouts=(6, 4),
        infer_fanouts=(6, 6),
        batch_size=64,
    )


@pytest.mark.parametrize("name", available_datasets())
def test_identical_losses_across_executors(name):
    dataset = get_dataset(name, scale=SCALES.get(name, 0.2), seed=5)
    config = _config(name)
    losses = {}
    for executor in EXECUTORS:
        trainer = Trainer(
            dataset, config, executor=executor, num_workers=2, seed=11
        )
        stats = trainer.train_epoch(0)
        trainer.shutdown()
        assert stats.num_batches > 1, "need a multi-batch epoch to compare"
        losses[executor] = stats.losses
    assert losses["pipelined"] == losses["serial"]
    assert losses["staged"] == losses["serial"]


def test_multiprocess_executor_matches_serial(tiny_dataset):
    """The shared-memory multiprocess prepare executor is the fourth
    policy: worker processes re-derive each batch's RNG from the shared
    ``rng_entries`` seeding, so its losses are bitwise those of serial."""
    config = _config("arxiv")
    losses = {}
    for executor, extra in (
        ("serial", {}),
        # fork keeps the test fast; the spawn path is pinned by
        # tests/runtime/test_mp_prepare.py
        ("multiprocess", {"prepare_workers": 2, "mp_start_method": "fork"}),
    ):
        trainer = Trainer(
            tiny_dataset, config, executor=executor, num_workers=2, seed=11, **extra
        )
        stats = trainer.train_epoch(0)
        trainer.shutdown()
        assert stats.num_batches > 1
        losses[executor] = stats.losses
    assert losses["multiprocess"] == losses["serial"]


def test_second_epoch_stays_identical(tiny_dataset):
    """Optimizer state and epoch-indexed shuffling must stay in lockstep
    across executors beyond the first epoch."""
    config = _config("arxiv")
    per_executor = {}
    for executor in EXECUTORS:
        trainer = Trainer(
            tiny_dataset, config, executor=executor, num_workers=2, seed=4
        )
        history = [trainer.train_epoch(epoch).losses for epoch in range(2)]
        trainer.shutdown()
        per_executor[executor] = history
    assert per_executor["pipelined"] == per_executor["serial"]
    assert per_executor["staged"] == per_executor["serial"]
    assert per_executor["serial"][0] != per_executor["serial"][1]


def test_inference_identical_across_executors(tiny_dataset):
    """Sampled inference (Section 5.4) is deterministic across executor
    policies too — including the device-staged overlapped paths."""
    config = _config("arxiv")
    outputs = []
    for infer_executor in EXECUTORS:
        trainer = Trainer(
            tiny_dataset,
            config,
            executor="serial",
            seed=11,
            infer_executor=infer_executor,
        )
        trainer.train_epoch(0)
        outputs.append(trainer.predict(tiny_dataset.split.val[:80], seed=2))
        trainer.shutdown()
    np.testing.assert_array_equal(outputs[0], outputs[1])
    np.testing.assert_array_equal(outputs[0], outputs[2])
