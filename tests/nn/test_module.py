"""Module system: registration, traversal, state management, modes."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


class Leaf(nn.Module):
    def __init__(self):
        super().__init__()
        self.weight = Tensor(np.ones((2, 2)), requires_grad=True)
        self.register_buffer("stat", np.zeros(2))

    def forward(self, x):
        return x @ self.weight


class Nested(nn.Module):
    def __init__(self):
        super().__init__()
        self.inner = Leaf()
        self.outer_weight = Tensor(np.full((2,), 3.0), requires_grad=True)

    def forward(self, x):
        return self.inner(x) + self.outer_weight


class TestRegistration:
    def test_parameters_found_recursively(self):
        m = Nested()
        names = dict(m.named_parameters())
        assert set(names) == {"outer_weight", "inner.weight"}
        assert len(m.parameters()) == 2

    def test_non_grad_tensor_not_registered(self):
        m = Leaf()
        m.plain = Tensor(np.zeros(2))  # requires_grad False
        assert "plain" not in dict(m.named_parameters())

    def test_buffers_found(self):
        m = Nested()
        assert set(dict(m.named_buffers())) == {"inner.stat"}

    def test_modules_iterates_tree(self):
        m = Nested()
        assert len(list(m.modules())) == 2

    def test_num_parameters(self):
        assert Nested().num_parameters() == 4 + 2


class TestStateDict:
    def test_roundtrip(self):
        m1, m2 = Nested(), Nested()
        m1.inner.weight.data[...] = 7.0
        m1.inner.stat[...] = 5.0
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_allclose(m2.inner.weight.data, 7.0)
        np.testing.assert_allclose(m2.inner.stat, 5.0)

    def test_state_dict_copies(self):
        m = Nested()
        state = m.state_dict()
        state["inner.weight"][...] = 99.0
        assert not np.allclose(m.inner.weight.data, 99.0)

    def test_shape_mismatch_rejected(self):
        m = Nested()
        state = m.state_dict()
        state["inner.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape"):
            m.load_state_dict(state)

    def test_unknown_key_rejected(self):
        m = Nested()
        with pytest.raises(KeyError):
            m.load_state_dict({"inner.nope": np.zeros(2)})


class TestModes:
    def test_train_eval_propagates(self):
        m = Nested()
        m.eval()
        assert not m.training and not m.inner.training
        m.train()
        assert m.training and m.inner.training

    def test_zero_grad(self):
        m = Nested()
        out = m(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert m.inner.weight.grad is not None
        m.zero_grad()
        assert m.inner.weight.grad is None


class TestContainers:
    def test_module_list(self):
        ml = nn.ModuleList([nn.Linear(2, 3), nn.Linear(3, 4)])
        assert len(ml) == 2
        assert ml[1].out_features == 4
        assert len(list(iter(ml))) == 2
        # parameters of children visible from a parent module
        class Holder(nn.Module):
            def __init__(self):
                super().__init__()
                self.layers = ml

        assert len(Holder().parameters()) == 4

    def test_sequential_applies_in_order(self):
        seq = nn.Sequential(nn.Linear(2, 3, bias=False), nn.ReLU())
        x = Tensor(np.ones((1, 2), dtype=np.float32))
        out = seq(x)
        assert out.shape == (1, 3)
        assert (out.data >= 0).all()

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert nn.Identity()(x) is x
