"""Optimizers: update rules, state handling, schedulers."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


def quadratic_param(value=5.0):
    return Tensor(np.array([value], dtype=np.float64), requires_grad=True)


class TestSGD:
    def test_single_step_matches_rule(self):
        p = quadratic_param()
        p.grad = np.array([2.0])
        nn.SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [4.8])

    def test_momentum_accumulates(self):
        p = quadratic_param(0.0)
        opt = nn.SGD([p], lr=1.0, momentum=0.5)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.5, p=-2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_weight_decay(self):
        p = quadratic_param(10.0)
        opt = nn.SGD([p], lr=0.1, weight_decay=0.1)
        p.grad = np.array([0.0])
        opt.step()
        np.testing.assert_allclose(p.data, [10.0 - 0.1 * 1.0])

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        nn.SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [5.0])

    def test_minimizes_quadratic(self):
        p = quadratic_param(3.0)
        opt = nn.SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            ((p - 1.0) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0], atol=1e-4)


class TestAdam:
    def test_first_step_is_lr_sized(self):
        # with bias correction, the first Adam step ~= lr * sign(grad)
        p = quadratic_param(0.0)
        opt = nn.Adam([p], lr=0.01)
        p.grad = np.array([123.0])
        opt.step()
        np.testing.assert_allclose(p.data, [-0.01], rtol=1e-5)

    def test_matches_reference_implementation(self):
        rng = np.random.default_rng(0)
        p = Tensor(rng.normal(size=4), requires_grad=True)
        ref = p.data.copy()
        m = np.zeros(4)
        v = np.zeros(4)
        opt = nn.Adam([p], lr=0.05, betas=(0.9, 0.99), eps=1e-8)
        for t in range(1, 6):
            grad = rng.normal(size=4)
            p.grad = grad.copy()
            opt.step()
            m = 0.9 * m + 0.1 * grad
            v = 0.99 * v + 0.01 * grad * grad
            m_hat = m / (1 - 0.9**t)
            v_hat = v / (1 - 0.99**t)
            ref -= 0.05 * m_hat / (np.sqrt(v_hat) + 1e-8)
            p.grad = None
        np.testing.assert_allclose(p.data, ref, rtol=1e-10)

    def test_minimizes_quadratic(self):
        p = quadratic_param(4.0)
        opt = nn.Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            ((p + 2.0) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [-2.0], atol=1e-3)

    def test_state_dict_roundtrip(self):
        p = quadratic_param()
        opt = nn.Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        state = opt.state_dict()

        p2 = quadratic_param()
        opt2 = nn.Adam([p2], lr=0.1)
        opt2.load_state_dict(state)
        assert opt2._step == 1
        np.testing.assert_allclose(opt2._m[0], opt._m[0])

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([quadratic_param()], lr=-1.0)


class TestSchedulers:
    def test_step_lr(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_cosine_lr_endpoints(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=1.0)
        sched = nn.CosineLR(opt, t_max=10, min_lr=0.1)
        for _ in range(10):
            sched.step()
        np.testing.assert_allclose(opt.lr, 0.1, atol=1e-9)

    def test_cosine_monotone_decreasing(self):
        opt = nn.SGD([quadratic_param()], lr=1.0)
        sched = nn.CosineLR(opt, t_max=8)
        values = []
        for _ in range(8):
            sched.step()
            values.append(opt.lr)
        assert all(a > b for a, b in zip(values, values[1:]))
