"""Leaf layers: Linear and BatchNorm1d semantics."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor

from ..helpers import check_gradient


class TestLinear:
    def test_shapes_and_bias(self, rng):
        lin = nn.Linear(4, 3, rng=rng)
        out = lin(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert out.shape == (2, 3)
        assert lin.bias is not None

    def test_no_bias(self, rng):
        lin = nn.Linear(4, 3, bias=False, rng=rng)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_matches_manual_affine(self, rng):
        lin = nn.Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4)).astype(np.float32)
        np.testing.assert_allclose(
            lin(Tensor(x)).data, x @ lin.weight.data.T + lin.bias.data, rtol=1e-5
        )

    def test_gradients_flow(self, rng):
        lin = nn.Linear(3, 2, rng=rng)
        lin(Tensor(np.ones((4, 3), dtype=np.float32))).sum().backward()
        assert lin.weight.grad is not None and lin.bias.grad is not None
        np.testing.assert_allclose(lin.bias.grad, [4.0, 4.0])

    def test_reset_parameters_changes_weights(self, rng):
        lin = nn.Linear(8, 8, rng=rng)
        before = lin.weight.data.copy()
        lin.reset_parameters()
        assert not np.allclose(before, lin.weight.data)

    def test_init_scale_is_bounded(self, rng):
        lin = nn.Linear(100, 50, rng=rng)
        bound = np.sqrt(2.0 / (1 + 5)) * np.sqrt(3.0 / 100)
        assert np.abs(lin.weight.data).max() <= bound + 1e-6


class TestBatchNorm:
    def test_normalizes_batch_in_train_mode(self, rng):
        bn = nn.BatchNorm1d(4)
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(64, 4)).astype(np.float32))
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_converge(self, rng):
        bn = nn.BatchNorm1d(2)
        for _ in range(200):
            x = Tensor(rng.normal(loc=3.0, scale=2.0, size=(32, 2)).astype(np.float32))
            bn(x)
        np.testing.assert_allclose(bn.running_mean, 3.0, atol=0.3)
        np.testing.assert_allclose(bn.running_var, 4.0, atol=0.8)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm1d(2)
        bn.running_mean[...] = [1.0, 2.0]
        bn.running_var[...] = [4.0, 9.0]
        bn.eval()
        x = np.array([[3.0, 5.0]], dtype=np.float32)
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out, [[1.0, 1.0]], atol=1e-3)

    def test_gradient_through_batch_statistics(self, rng):
        bn = nn.BatchNorm1d(3)

        def build(x):
            return (bn(x) * Tensor(np.arange(3.0))).sum()

        check_gradient(build, (8, 3), rng, atol=1e-4, rtol=1e-3)

    def test_shape_validation(self):
        bn = nn.BatchNorm1d(3)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((2, 4))))

    def test_affine_parameters_trainable(self, rng):
        bn = nn.BatchNorm1d(2)
        bn(Tensor(rng.normal(size=(8, 2)).astype(np.float32))).sum().backward()
        assert bn.weight.grad is not None and bn.bias.grad is not None

    def test_reset_parameters(self):
        bn = nn.BatchNorm1d(2)
        bn.running_mean[...] = 5.0
        bn.weight.data[...] = 3.0
        bn.reset_parameters()
        np.testing.assert_allclose(bn.running_mean, 0.0)
        np.testing.assert_allclose(bn.weight.data, 1.0)


class TestActivationsAndDropout:
    def test_relu_module(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_leaky_relu_module(self):
        out = nn.LeakyReLU(0.5)(Tensor(np.array([-2.0, 2.0])))
        np.testing.assert_allclose(out.data, [-1.0, 2.0])

    def test_dropout_module_respects_training_flag(self, rng):
        drop = nn.Dropout(0.5, rng=rng)
        x = Tensor(np.ones((4, 4)))
        drop.eval()
        assert drop(x) is x
        drop.train()
        assert (drop(Tensor(np.ones((100, 100)))).data == 0).any()
