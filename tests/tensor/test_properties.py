"""Property-based tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, functional as F


def finite_arrays(shape):
    return hnp.arrays(
        dtype=np.float64,
        shape=shape,
        elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
    )


class TestAlgebraicProperties:
    @settings(max_examples=40, deadline=None)
    @given(finite_arrays((3, 4)), finite_arrays((3, 4)))
    def test_addition_commutes(self, a, b):
        np.testing.assert_allclose(
            (Tensor(a) + Tensor(b)).data, (Tensor(b) + Tensor(a)).data
        )

    @settings(max_examples=40, deadline=None)
    @given(finite_arrays((2, 3)), finite_arrays((3, 2)))
    def test_matmul_transpose_identity(self, a, b):
        left = (Tensor(a) @ Tensor(b)).T
        right = Tensor(b).T @ Tensor(a).T
        np.testing.assert_allclose(left.data, right.data, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(finite_arrays((4, 5)))
    def test_sum_of_relu_plus_negrelu_is_abs(self, a):
        x = Tensor(a)
        combined = x.relu() + (-x).relu()
        np.testing.assert_allclose(combined.data, np.abs(a), atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(finite_arrays((3, 6)), st.floats(-5, 5))
    def test_softmax_shift_invariance(self, a, shift):
        base = F.softmax(Tensor(a)).data
        shifted = F.softmax(Tensor(a + shift)).data
        np.testing.assert_allclose(base, shifted, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(finite_arrays((5,)))
    def test_log_softmax_normalizes(self, a):
        out = F.log_softmax(Tensor(a.reshape(1, -1))).data
        np.testing.assert_allclose(np.exp(out).sum(), 1.0, rtol=1e-9)


class TestGradientProperties:
    @settings(max_examples=30, deadline=None)
    @given(finite_arrays((3, 4)))
    def test_sum_gradient_is_ones(self, a):
        x = Tensor(a, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(a))

    @settings(max_examples=30, deadline=None)
    @given(finite_arrays((4,)), finite_arrays((4,)))
    def test_gradient_linearity(self, a, w):
        """grad of (w . x) w.r.t. x is w, independent of x's value."""
        x = Tensor(a, requires_grad=True)
        (x * Tensor(w)).sum().backward()
        np.testing.assert_allclose(x.grad, w, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(finite_arrays((3, 3)))
    def test_quadratic_gradient(self, a):
        x = Tensor(a, requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * a, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(finite_arrays((6, 2)), st.lists(st.integers(0, 3), min_size=6, max_size=6))
    def test_segment_sum_grad_routes_upstream(self, values, index):
        index = np.asarray(index)
        x = Tensor(values, requires_grad=True)
        coeff = np.arange(4.0).reshape(4, 1)
        (F.segment_sum(x, index, 4) * Tensor(coeff)).sum().backward()
        expected = np.broadcast_to(coeff[index], values.shape)
        np.testing.assert_allclose(x.grad, expected, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(finite_arrays((5, 3)))
    def test_detached_path_contributes_nothing(self, a):
        x = Tensor(a, requires_grad=True)
        y = (x * 2).detach() + x
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(a))
