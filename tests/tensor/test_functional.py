"""Gradients and semantics of functional ops (losses, softmax, segment ops)."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F

from ..helpers import check_gradient


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(5, 7)))
        out = F.softmax(x, axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(5), rtol=1e-6)
        assert (out >= 0).all()

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-6
        )

    def test_log_softmax_stable_for_large_inputs(self):
        x = Tensor(np.array([[1000.0, 1000.0, 999.0]]))
        out = F.log_softmax(x).data
        assert np.isfinite(out).all()

    def test_softmax_grad(self, rng):
        w = rng.normal(size=(3, 5))
        check_gradient(lambda x: (F.softmax(x, axis=-1) * Tensor(w)).sum(), (3, 5), rng)

    def test_log_softmax_grad(self, rng):
        w = rng.normal(size=(3, 5))
        check_gradient(
            lambda x: (F.log_softmax(x, axis=-1) * Tensor(w)).sum(), (3, 5), rng
        )


class TestLosses:
    def test_nll_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3))
        target = np.array([0, 2, 1, 2])
        log_probs = F.log_softmax(Tensor(logits))
        loss = F.nll_loss(log_probs, target)
        manual = -log_probs.data[np.arange(4), target].mean()
        np.testing.assert_allclose(loss.item(), manual, rtol=1e-6)

    def test_cross_entropy_equals_composed(self, rng):
        logits = rng.normal(size=(4, 3))
        target = np.array([1, 0, 2, 1])
        a = F.cross_entropy(Tensor(logits), target).item()
        b = F.nll_loss(F.log_softmax(Tensor(logits)), target).item()
        np.testing.assert_allclose(a, b, rtol=1e-6)

    def test_nll_grad(self, rng):
        target = np.array([0, 2, 1])
        check_gradient(
            lambda x: F.nll_loss(F.log_softmax(x), target), (3, 4), rng
        )

    def test_nll_sum_reduction(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)))
        target = np.array([0, 1, 2, 0])
        lp = F.log_softmax(logits)
        np.testing.assert_allclose(
            F.nll_loss(lp, target, reduction="sum").item(),
            F.nll_loss(lp, target, reduction="mean").item() * 4,
            rtol=1e-6,
        )

    def test_nll_ignore_index(self, rng):
        logits = rng.normal(size=(4, 3))
        lp = F.log_softmax(Tensor(logits))
        target = np.array([0, -1, 1, -1])
        loss = F.nll_loss(lp, target, ignore_index=-1)
        manual = -(lp.data[0, 0] + lp.data[2, 1]) / 2
        np.testing.assert_allclose(loss.item(), manual, rtol=1e-6)

    def test_nll_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            F.nll_loss(Tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))

    def test_unknown_reduction(self):
        with pytest.raises(ValueError):
            F.nll_loss(Tensor(np.zeros((2, 3))), np.zeros(2, dtype=int), reduction="x")


class TestDropout:
    def test_identity_in_eval(self, rng):
        x = Tensor(rng.normal(size=(10, 4)))
        assert F.dropout(x, p=0.5, training=False) is x

    def test_identity_at_p_zero(self, rng):
        x = Tensor(rng.normal(size=(10, 4)))
        assert F.dropout(x, p=0.0, training=True) is x

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 50)))
        out = F.dropout(x, p=0.3, training=True, rng=np.random.default_rng(0))
        assert abs(out.data.mean() - 1.0) < 0.02
        # surviving entries are scaled by 1/keep
        survivors = out.data[out.data != 0]
        np.testing.assert_allclose(survivors, 1.0 / 0.7, rtol=1e-6)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), p=1.0, training=True)

    def test_grad_masks_match_forward(self):
        x = Tensor(np.ones(1000), requires_grad=True)
        out = F.dropout(x, p=0.5, training=True, rng=np.random.default_rng(1))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)


class TestSegmentOps:
    def test_segment_sum_values(self):
        vals = Tensor(np.arange(8.0).reshape(4, 2))
        idx = np.array([1, 0, 1, 3])
        out = F.segment_sum(vals, idx, 4).data
        np.testing.assert_allclose(out, [[2, 3], [4, 6], [0, 0], [6, 7]])

    def test_segment_mean_empty_segment_is_zero(self):
        vals = Tensor(np.ones((2, 3)))
        out = F.segment_mean(vals, np.array([0, 0]), 3).data
        np.testing.assert_allclose(out[1:], 0.0)
        np.testing.assert_allclose(out[0], 1.0)

    def test_segment_max_values(self):
        vals = Tensor(np.array([[1.0, -5.0], [3.0, 2.0], [2.0, 9.0]]))
        idx = np.array([0, 0, 1])
        out = F.segment_max(vals, idx, 2).data
        np.testing.assert_allclose(out, [[3.0, 2.0], [2.0, 9.0]])

    def test_segment_sum_grad(self, rng):
        idx = np.array([0, 0, 1, 2, 2, 2])
        check_gradient(lambda x: (F.segment_sum(x, idx, 4) ** 2).sum(), (6, 3), rng)

    def test_segment_mean_grad(self, rng):
        idx = np.array([0, 0, 1, 2, 2, 2])
        check_gradient(lambda x: (F.segment_mean(x, idx, 4) ** 2).sum(), (6, 3), rng)

    def test_segment_max_grad(self, rng):
        idx = np.array([0, 0, 1, 2, 2, 2])
        check_gradient(lambda x: (F.segment_max(x, idx, 3) ** 2).sum(), (6, 2), rng)

    def test_segment_softmax_normalizes_per_segment(self, rng):
        scores = Tensor(rng.normal(size=10))
        idx = np.array([0, 0, 0, 1, 1, 2, 2, 2, 2, 3])
        out = F.segment_softmax(scores, idx, 4).data
        for seg in range(4):
            np.testing.assert_allclose(out[idx == seg].sum(), 1.0, rtol=1e-5)

    def test_segment_softmax_grad(self, rng):
        idx = np.array([0, 0, 1, 1, 1, 2])
        w = rng.normal(size=6)
        check_gradient(
            lambda x: (F.segment_softmax(x, idx, 3) * Tensor(w)).sum(), (6,), rng
        )

    def test_segment_softmax_rejects_2d(self):
        with pytest.raises(ValueError):
            F.segment_softmax(Tensor(np.zeros((3, 2))), np.zeros(3, dtype=int), 2)

    def test_gather_rows_matches_fancy_index(self, rng):
        x = Tensor(rng.normal(size=(6, 4)))
        idx = np.array([5, 0, 0, 3])
        np.testing.assert_allclose(F.gather_rows(x, idx).data, x.data[idx])


class TestLinear:
    def test_linear_with_bias(self, rng):
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(2, 4))
        b = rng.normal(size=2)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b)).data
        np.testing.assert_allclose(out, x @ w.T + b, rtol=1e-6)
