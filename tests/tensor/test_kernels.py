"""Optimized numpy kernels vs obvious reference implementations.

Follows the ml-systems guide's pattern: the slow, clearly correct
formulation lives in the tests and gates the optimized kernel, including
under hypothesis-generated inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import kernels


def reference_scatter_add(values, index, n_rows):
    out = np.zeros((n_rows,) + values.shape[1:], dtype=np.float64)
    for i, row in enumerate(index):
        out[row] += values[i]
    return out.astype(values.dtype)


@st.composite
def scatter_case(draw):
    n_rows = draw(st.integers(min_value=1, max_value=12))
    n_elems = draw(st.integers(min_value=0, max_value=40))
    n_cols = draw(st.integers(min_value=1, max_value=5))
    index = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_rows - 1),
            min_size=n_elems,
            max_size=n_elems,
        )
    )
    values = draw(
        st.lists(
            st.lists(
                st.floats(
                    min_value=-100, max_value=100, allow_nan=False, width=32
                ),
                min_size=n_cols,
                max_size=n_cols,
            ),
            min_size=n_elems,
            max_size=n_elems,
        )
    )
    return (
        np.asarray(values, dtype=np.float32).reshape(n_elems, n_cols),
        np.asarray(index, dtype=np.int64),
        n_rows,
    )


class TestScatterAdd:
    @settings(max_examples=60, deadline=None)
    @given(scatter_case())
    def test_matches_reference(self, case):
        values, index, n_rows = case
        out = kernels.scatter_add_rows(values, index, n_rows)
        np.testing.assert_allclose(out, reference_scatter_add(values, index, n_rows), rtol=1e-5)

    def test_1d_values(self):
        out = kernels.scatter_add_rows(
            np.array([1.0, 2.0, 3.0], dtype=np.float32), np.array([1, 1, 0]), 3
        )
        np.testing.assert_allclose(out, [3.0, 3.0, 0.0])

    def test_empty_input(self):
        out = kernels.scatter_add_rows(
            np.empty((0, 4), dtype=np.float32), np.empty(0, dtype=np.int64), 5
        )
        assert out.shape == (5, 4)
        assert (out == 0).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            kernels.scatter_add_rows(np.zeros((3, 2)), np.zeros(4, dtype=np.int64), 5)
        with pytest.raises(ValueError):
            kernels.scatter_add_rows(np.zeros((3, 2)), np.zeros((3, 1), dtype=np.int64), 5)
        with pytest.raises(ValueError):
            kernels.scatter_add_rows(np.zeros((2, 2, 2)), np.zeros(2, dtype=np.int64), 3)

    def test_wide_matrix_block_path(self):
        # exercise the column-blocking loop with > block width columns
        rng = np.random.default_rng(0)
        values = rng.normal(size=(50, 300)).astype(np.float32)
        index = rng.integers(0, 7, size=50)
        out = kernels.scatter_add_rows(values, index, 7)
        np.testing.assert_allclose(
            out, reference_scatter_add(values, index, 7), rtol=1e-4
        )


class TestSegmentReductions:
    def test_counts(self):
        np.testing.assert_array_equal(
            kernels.segment_counts(np.array([0, 2, 2, 2]), 4), [1, 0, 3, 0]
        )

    def test_mean_divides_by_count(self):
        vals = np.array([[2.0], [4.0], [10.0]], dtype=np.float32)
        out = kernels.segment_mean(vals, np.array([0, 0, 1]), 3)
        np.testing.assert_allclose(out, [[3.0], [10.0], [0.0]])

    @settings(max_examples=40, deadline=None)
    @given(scatter_case())
    def test_segment_max_matches_reference(self, case):
        values, index, n_rows = case
        out, argmax = kernels.segment_max(values, index, n_rows)
        for seg in range(n_rows):
            members = values[index == seg]
            if len(members) == 0:
                np.testing.assert_allclose(out[seg], 0.0)
                assert (argmax[seg] == -1).all()
            else:
                np.testing.assert_allclose(out[seg], members.max(axis=0))

    def test_segment_max_argmax_routes_to_element(self):
        values = np.array([[1.0], [9.0], [5.0]], dtype=np.float32)
        out, argmax = kernels.segment_max(values, np.array([0, 0, 0]), 1)
        assert argmax[0, 0] == 1
        np.testing.assert_allclose(out[0], [9.0])

    def test_segment_max_1d(self):
        out, argmax = kernels.segment_max(
            np.array([3.0, 7.0, 1.0], dtype=np.float32), np.array([1, 1, 0]), 2
        )
        np.testing.assert_allclose(out, [1.0, 7.0])
        np.testing.assert_array_equal(argmax, [2, 1])

    def test_segment_max_empty(self):
        out, argmax = kernels.segment_max(
            np.empty((0, 2), dtype=np.float32), np.empty(0, dtype=np.int64), 3
        )
        assert out.shape == (3, 2)
        assert (argmax == -1).all()


class TestBlockCols:
    """Regression tests for the column-block width computation.

    The original expression ``1 << 22 // max(rows, 1)`` parsed as
    ``1 << (22 // rows)`` — single-column blocks for any input past 22
    rows, and multi-mebibyte blocks for tiny ones.  ``_block_cols`` pins
    the intended ``(1 << 22) // rows`` element budget.
    """

    def test_budget_semantics(self):
        # products-scale rows: the budget allows dozens of columns, not 1.
        assert kernels._block_cols(150_000, 100) == 27
        assert kernels._block_cols(1 << 22, 64) == 1
        # Wide-but-short inputs are capped at n_cols, not the raw budget.
        assert kernels._block_cols(10, 8) == 8
        assert kernels._block_cols(0, 8) == 8

    def test_old_precedence_bug_documented(self):
        # What the buggy expression evaluated to, for the record: 23+ rows
        # degenerated to single-column blocking.
        rows = 150_000
        buggy = 1 << 22 // max(rows, 1)
        assert buggy == 1
        assert kernels._block_cols(rows, 100) > buggy

    def test_never_below_one_column(self):
        for rows in [1, 10, 1 << 22, (1 << 22) + 1, 1 << 25]:
            assert kernels._block_cols(rows, 500) >= 1

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1 << 23),
        st.integers(min_value=1, max_value=512),
    )
    def test_budget_respected(self, rows, cols):
        width = kernels._block_cols(rows, cols)
        assert 1 <= width <= cols
        if width > 1:
            # A block of this width stays within the element budget.
            assert max(rows, 1) * width <= kernels._BLOCK_BUDGET

    def test_scatter_result_independent_of_blocking(self):
        # The same input must produce identical results whether the row
        # count forces 1-column, few-column or single-block processing.
        rng = np.random.default_rng(1)
        values = rng.normal(size=(40, 13)).astype(np.float32)
        index = rng.integers(0, 9, size=40)
        expect = kernels.scatter_add_rows(values, index, 9)
        for budget in [1, 13, 40 * 13, 1 << 22]:
            width = kernels._block_cols(values.shape[0], values.shape[1], budget)
            out = np.zeros((9, 13), dtype=values.dtype)
            col = 0
            while col < 13:
                stop = min(col + width, 13)
                out[:, col:stop] = kernels.scatter_add_rows(
                    values[:, col:stop], index, 9
                )
                col = stop
            np.testing.assert_array_equal(out, expect)
