"""Plan/fused kernels vs the legacy generation: bitwise twins.

The compute path selection (``compute="fused"`` vs ``"legacy"``) must not
change a single bit of any training result, the same contract as the
sampler's ``use_arena`` twin.  These tests pin:

- every plan/fused kernel against its legacy counterpart with
  ``np.array_equal`` (not allclose) across random shapes, empty segments,
  single-edge segments, float32/float64 and non-contiguous inputs;
- the fused linear forward/backward against the legacy op-chain at the
  autograd level;
- the :class:`~repro.tensor.workspace.Workspace` pool semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import (
    AggregationPlan,
    Tensor,
    Workspace,
    compute_scope,
    current_workspace,
    functional as F,
    kernels,
    workspace_scope,
)


@st.composite
def plan_case(draw):
    """Random edge list + features, covering the awkward regimes."""
    n_src = draw(st.integers(min_value=1, max_value=16))
    n_dst = draw(st.integers(min_value=1, max_value=n_src))
    n_edges = draw(st.integers(min_value=0, max_value=60))
    n_cols = draw(st.integers(min_value=1, max_value=6))
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    noncontig = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_src, size=n_edges).astype(np.int64)
    dst = rng.integers(0, n_dst, size=n_edges).astype(np.int64)
    x = rng.normal(size=(n_src, n_cols)).astype(dtype)
    if noncontig:
        # Column-sliced view of a wider array: stride > itemsize.
        wide = rng.normal(size=(n_src, 2 * n_cols)).astype(dtype)
        wide[:, ::2] = x
        x = wide[:, ::2]
    plan = AggregationPlan(src, dst, n_src, n_dst)
    return x, src, dst, plan


class TestPlanKernelsBitwise:
    @settings(max_examples=80, deadline=None)
    @given(plan_case())
    def test_plan_segment_sum(self, case):
        x, src, dst, plan = case
        messages = x[src]
        legacy = kernels.segment_sum(messages, dst, plan.n_dst)
        np.testing.assert_array_equal(kernels.plan_segment_sum(messages, plan), legacy)

    @settings(max_examples=80, deadline=None)
    @given(plan_case())
    def test_plan_segment_mean(self, case):
        x, src, dst, plan = case
        messages = x[src]
        legacy = kernels.segment_mean(messages, dst, plan.n_dst)
        np.testing.assert_array_equal(kernels.plan_segment_mean(messages, plan), legacy)

    @settings(max_examples=80, deadline=None)
    @given(plan_case())
    def test_plan_segment_max(self, case):
        x, src, dst, plan = case
        messages = x[src]
        legacy_out, legacy_arg = kernels.segment_max(messages, dst, plan.n_dst)
        out, arg = kernels.plan_segment_max(messages, plan)
        np.testing.assert_array_equal(out, legacy_out)
        np.testing.assert_array_equal(arg, legacy_arg)
        out2, arg2 = kernels.plan_segment_max(messages, plan, compute_argmax=False)
        np.testing.assert_array_equal(out2, legacy_out)
        assert arg2 is None

    @settings(max_examples=80, deadline=None)
    @given(plan_case())
    def test_fused_gather_segment_sum(self, case):
        x, src, dst, plan = case
        legacy = kernels.segment_sum(x[src], dst, plan.n_dst)
        np.testing.assert_array_equal(kernels.fused_gather_segment_sum(x, plan), legacy)

    @settings(max_examples=80, deadline=None)
    @given(plan_case())
    def test_fused_gather_segment_mean(self, case):
        x, src, dst, plan = case
        legacy = kernels.segment_mean(x[src], dst, plan.n_dst)
        np.testing.assert_array_equal(
            kernels.fused_gather_segment_mean(x, plan), legacy
        )

    @settings(max_examples=80, deadline=None)
    @given(plan_case())
    def test_fused_gather_scatter_add(self, case):
        x, src, dst, plan = case
        rng = np.random.default_rng(7)
        g = rng.normal(size=(plan.n_dst, x.shape[1])).astype(x.dtype)
        legacy = kernels.scatter_add_rows(g[dst], src, plan.n_src)
        np.testing.assert_array_equal(kernels.fused_gather_scatter_add(g, plan), legacy)

    def test_1d_plan_sum(self):
        rng = np.random.default_rng(0)
        dst = rng.integers(0, 5, size=30).astype(np.int64)
        src = rng.integers(0, 8, size=30).astype(np.int64)
        plan = AggregationPlan(src, dst, 8, 5)
        vals = rng.normal(size=30).astype(np.float64)
        legacy = kernels.segment_sum(vals, dst, 5)
        np.testing.assert_array_equal(kernels.plan_segment_sum(vals, plan), legacy)

    def test_single_edge_segments(self):
        # Every destination has exactly one incoming edge.
        src = np.array([3, 1, 0], dtype=np.int64)
        dst = np.array([0, 1, 2], dtype=np.int64)
        plan = AggregationPlan(src, dst, 4, 3)
        x = np.arange(8, dtype=np.float32).reshape(4, 2)
        np.testing.assert_array_equal(kernels.fused_gather_segment_sum(x, plan), x[src])

    def test_empty_edge_list(self):
        plan = AggregationPlan(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 4, 3
        )
        x = np.ones((4, 2), dtype=np.float32)
        assert (kernels.fused_gather_segment_sum(x, plan) == 0).all()
        assert (kernels.plan_segment_sum(np.empty((0, 2), np.float32), plan) == 0).all()
        g = np.ones((3, 2), dtype=np.float32)
        assert (kernels.fused_gather_scatter_add(g, plan) == 0).all()

    def test_plan_shape_mismatch_rejected(self):
        plan = AggregationPlan(
            np.array([0], dtype=np.int64), np.array([0], dtype=np.int64), 2, 1
        )
        with pytest.raises(ValueError):
            kernels.plan_segment_sum(np.zeros((3, 2), np.float32), plan)


class TestPlanObject:
    def test_with_self_loops_memoized(self):
        plan = AggregationPlan(
            np.array([2, 1], dtype=np.int64), np.array([0, 1], dtype=np.int64), 3, 2
        )
        aug = plan.with_self_loops()
        assert aug is plan.with_self_loops()
        assert aug.num_edges == plan.num_edges + plan.n_dst
        np.testing.assert_array_equal(aug.src[-2:], [0, 1])
        np.testing.assert_array_equal(aug.dst[-2:], [0, 1])

    def test_from_edge_index_and_validation(self):
        ei = np.array([[0, 1], [1, 0]], dtype=np.int64)
        plan = AggregationPlan.from_edge_index(ei, (2, 2))
        assert plan.num_edges == 2
        with pytest.raises(ValueError):
            AggregationPlan.from_edge_index(np.zeros((3, 2), np.int64), (2, 2))
        with pytest.raises(ValueError):
            AggregationPlan(np.zeros(2, np.int64), np.zeros(3, np.int64), 4, 4)

    def test_counts_and_nbytes(self):
        plan = AggregationPlan(
            np.array([0, 1, 2], dtype=np.int64),
            np.array([1, 1, 0], dtype=np.int64),
            3,
            2,
        )
        np.testing.assert_array_equal(plan.counts, [1, 2])
        assert plan.nbytes() > 0


def _autograd_pair(x_np, plan, op):
    """Run ``op`` on a fresh leaf tensor; return (out, grad) arrays."""
    x = Tensor(x_np.copy(), requires_grad=True)
    out = op(x, plan)
    out.backward(np.ones_like(out.data))
    return out.data.copy(), x.grad.copy()


class TestFunctionalPlanPaths:
    """Autograd-level equality: the plan kwarg must not change any bit."""

    def _random_case(self, seed, dtype=np.float32):
        rng = np.random.default_rng(seed)
        n_src, n_dst, n_edges, n_cols = 9, 6, 25, 4
        src = rng.integers(0, n_src, size=n_edges).astype(np.int64)
        dst = rng.integers(0, n_dst, size=n_edges).astype(np.int64)
        x = rng.normal(size=(n_src, n_cols)).astype(dtype)
        return x, src, dst, AggregationPlan(src, dst, n_src, n_dst)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("agg", ["sum", "mean"])
    def test_gather_segment_matches_unfused(self, agg, dtype):
        x, src, dst, plan = self._random_case(3, dtype)
        fused_op = getattr(F, f"gather_segment_{agg}")
        seg_op = getattr(F, f"segment_{agg}")

        def unfused(t, _):
            return seg_op(F.gather_rows(t, src), dst, plan.n_dst)

        out_f, grad_f = _autograd_pair(x, plan, fused_op)
        out_l, grad_l = _autograd_pair(x, plan, unfused)
        np.testing.assert_array_equal(out_f, out_l)
        np.testing.assert_array_equal(grad_f, grad_l)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_segment_softmax_plan_matches(self, dtype):
        rng = np.random.default_rng(11)
        n_dst, n_edges = 5, 40
        dst = rng.integers(0, n_dst, size=n_edges).astype(np.int64)
        plan = AggregationPlan(
            rng.integers(0, 7, size=n_edges).astype(np.int64), dst, 7, n_dst
        )
        logits = rng.normal(size=n_edges).astype(dtype)

        def with_plan(t, p):
            return F.segment_softmax(t, dst, n_dst, plan=p)

        def without_plan(t, _):
            return F.segment_softmax(t, dst, n_dst)

        out_f, grad_f = _autograd_pair(logits, plan, with_plan)
        out_l, grad_l = _autograd_pair(logits, plan, without_plan)
        np.testing.assert_array_equal(out_f, out_l)
        np.testing.assert_array_equal(grad_f, grad_l)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("agg", ["sum", "mean", "max"])
    def test_segment_ops_plan_kwarg_matches(self, agg, dtype):
        x, src, dst, plan = self._random_case(5, dtype)
        messages = x[src]
        seg_op = getattr(F, f"segment_{agg}")

        def with_plan(t, p):
            return seg_op(t, dst, plan.n_dst, plan=p)

        def without_plan(t, _):
            return seg_op(t, dst, plan.n_dst)

        out_f, grad_f = _autograd_pair(messages, plan, with_plan)
        out_l, grad_l = _autograd_pair(messages, plan, without_plan)
        np.testing.assert_array_equal(out_f, out_l)
        np.testing.assert_array_equal(grad_f, grad_l)


class TestFusedLinear:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("bias", [True, False])
    @pytest.mark.parametrize("relu", [True, False])
    def test_matches_legacy_chain(self, bias, relu, dtype):
        rng = np.random.default_rng(17)
        x_np = rng.normal(size=(12, 7)).astype(dtype)
        w_np = rng.normal(size=(5, 7)).astype(dtype)
        b_np = rng.normal(size=(5,)).astype(dtype) if bias else None

        def run(fused):
            x = Tensor(x_np.copy(), requires_grad=True)
            w = Tensor(w_np.copy(), requires_grad=True)
            b = Tensor(b_np.copy(), requires_grad=True) if bias else None
            with compute_scope("fused" if fused else "legacy"):
                if relu:
                    out = F.linear_relu(x, w, b) if fused else F.linear(x, w, b).relu()
                else:
                    out = F.linear(x, w, b)
            out.backward(np.ones_like(out.data))
            return (
                out.data.copy(),
                x.grad.copy(),
                w.grad.copy(),
                b.grad.copy() if bias else None,
            )

        fused_res = run(True)
        legacy_res = run(False)
        for got, want in zip(fused_res, legacy_res):
            if want is None:
                assert got is None
            else:
                np.testing.assert_array_equal(got, want)

    def test_kernel_forward_values(self):
        x = np.array([[1.0, -2.0]], dtype=np.float32)
        w = np.array([[3.0, 1.0]], dtype=np.float32)
        b = np.array([4.0], dtype=np.float32)
        np.testing.assert_array_equal(kernels.linear_forward(x, w, b), [[5.0]])
        np.testing.assert_array_equal(
            kernels.linear_forward(x, w, np.array([-6.0], np.float32), relu=True),
            [[0.0]],
        )


class TestWorkspace:
    def test_bucket_reuse_across_row_counts(self):
        ws = Workspace()
        a = ws.zeros((100, 8), np.float32)
        base_a = ws._out[0][1]
        ws.release_all()
        # 100 and 120 share the 128-row bucket: the base is recycled.
        b = ws.zeros((120, 8), np.float32)
        assert ws._out[0][1] is base_a
        assert b.shape == (120, 8)
        assert (b == 0).all()
        assert ws.stats["hits"] == 1 and ws.stats["misses"] == 1

    def test_distinct_buckets_miss(self):
        ws = Workspace()
        ws.zeros((100, 8), np.float32)
        ws.release_all()
        ws.zeros((200, 8), np.float32)  # 256-row bucket: fresh allocation
        assert ws.stats == {
            **ws.stats,
            "hits": 0,
            "misses": 2,
        }

    def test_no_reuse_while_checked_out(self):
        ws = Workspace()
        a = ws.empty((10, 4), np.float32)
        b = ws.empty((10, 4), np.float32)
        assert a.base is not b.base
        ws.release_all()
        assert ws.stats["buffers_pooled"] == 2

    def test_dtype_and_trailing_shape_separate_pools(self):
        ws = Workspace()
        ws.zeros((10, 4), np.float32)
        ws.release_all()
        ws.zeros((10, 4), np.float64)
        ws.zeros((10, 5), np.float32)
        assert ws.stats["hits"] == 0 and ws.stats["misses"] == 3

    def test_zeros_zeroes_only_the_view(self):
        ws = Workspace()
        a = ws.empty((8, 2), np.float32)
        a[...] = 7.0
        ws.release_all()
        b = ws.zeros((5, 2), np.float32)
        assert (b == 0).all()

    def test_pooled_bytes_and_1d(self):
        ws = Workspace()
        ws.zeros(33, np.float32)  # int shape accepted; 64-element bucket
        assert ws.pooled_bytes() == 64 * 4
        ws.release_all()
        ws.zeros(60, np.float32)
        assert ws.stats["hits"] == 1

    def test_scope_restores_previous_and_releases(self):
        outer, inner = Workspace(), Workspace()
        assert current_workspace() is None
        with workspace_scope(outer):
            assert current_workspace() is outer
            outer.empty((4,), np.float32)
            with workspace_scope(inner):
                assert current_workspace() is inner
            assert current_workspace() is outer
            assert inner.stats["buffers_out"] == 0  # released on scope exit
        assert current_workspace() is None
        assert outer.stats["buffers_out"] == 0

    def test_none_scope_is_noop(self):
        with workspace_scope(None):
            assert current_workspace() is None

    def test_pooled_outputs_inside_scope(self):
        ws = Workspace()
        plan = AggregationPlan(
            np.array([0, 1], dtype=np.int64), np.array([0, 0], dtype=np.int64), 2, 1
        )
        x = np.ones((2, 3), dtype=np.float32)
        with workspace_scope(ws):
            out = kernels.fused_gather_segment_sum(x, plan)
        np.testing.assert_array_equal(out, [[2.0, 2.0, 2.0]])
        # The output buffer plus the CSR path's float64 operand/accumulator
        # temporaries all come from the pool.
        assert ws.stats["misses"] >= 1
        assert ws.stats["buffers_out"] == 0

    def test_compute_scope_validation(self):
        with pytest.raises(ValueError):
            with compute_scope("turbo"):
                pass
