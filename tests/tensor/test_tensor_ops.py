"""Autograd correctness for elementwise/linear-algebra/reduction ops."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad

from ..helpers import check_gradient


class TestConstruction:
    def test_float16_upcast(self):
        t = Tensor(np.zeros(3, dtype=np.float16))
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_int_normalized_to_int64(self):
        t = Tensor(np.zeros(3, dtype=np.int32))
        assert t.dtype == np.int64

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        c = (b * 3).sum()
        c.backward()
        assert a.grad is None

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))


class TestArithmeticValues:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3.0))
        np.testing.assert_allclose((a + b).data, np.ones((2, 3)) + np.arange(3.0))

    def test_scalar_ops(self):
        a = Tensor([2.0, 4.0])
        np.testing.assert_allclose((a * 3).data, [6.0, 12.0])
        np.testing.assert_allclose((1 + a).data, [3.0, 5.0])
        np.testing.assert_allclose((a - 1).data, [1.0, 3.0])
        np.testing.assert_allclose((8 / a).data, [4.0, 2.0])
        np.testing.assert_allclose((1 - a).data, [-1.0, -3.0])

    def test_matmul(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(12.0).reshape(3, 4)
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** np.array([2.0, 3.0])


class TestGradients:
    def test_add_broadcast_grad(self, rng):
        other = rng.normal(size=(1, 4))
        check_gradient(lambda x: (x + Tensor(other)).sum(), (3, 4), rng)

    def test_mul_grad(self, rng):
        other = rng.normal(size=(3, 4))
        check_gradient(lambda x: (x * Tensor(other) * x).sum(), (3, 4), rng)

    def test_div_grad(self, rng):
        denom = rng.normal(size=(3,)) + 5.0
        check_gradient(lambda x: (x / Tensor(denom)).sum(), (2, 3), rng)

    def test_rdiv_grad(self, rng):
        # gradient through the denominator
        check_gradient(lambda x: (1.0 / (x * x + 2.0)).sum(), (4,), rng)

    def test_matmul_grad_left(self, rng):
        other = rng.normal(size=(4, 2))
        check_gradient(lambda x: (x @ Tensor(other)).sum(), (3, 4), rng)

    def test_matmul_grad_right(self, rng):
        other = rng.normal(size=(3, 4))
        check_gradient(lambda x: (Tensor(other) @ x).sum(), (4, 2), rng)

    def test_neg_pow_grad(self, rng):
        check_gradient(lambda x: (-(x**3)).sum(), (5,), rng)

    def test_transpose_grad(self, rng):
        w = rng.normal(size=(3, 5))
        check_gradient(lambda x: (x.T @ Tensor(w)).sum(), (3, 4), rng)

    def test_reshape_grad(self, rng):
        check_gradient(lambda x: (x.reshape(6) * np.arange(6.0)).sum(), (2, 3), rng)

    def test_sum_axis_grad(self, rng):
        check_gradient(lambda x: (x.sum(axis=0) ** 2).sum(), (3, 4), rng)

    def test_sum_keepdims_grad(self, rng):
        check_gradient(
            lambda x: (x - x.sum(axis=1, keepdims=True)).sum() + (x * x).sum(),
            (3, 4),
            rng,
        )

    def test_mean_grad(self, rng):
        check_gradient(lambda x: (x.mean(axis=1) ** 2).sum(), (3, 4), rng)

    def test_max_grad_no_ties(self, rng):
        # distinct values so the subgradient is unique
        data = np.arange(12.0).reshape(3, 4)
        rng2 = np.random.default_rng(0)

        def build(x):
            return (x.max(axis=1) ** 2).sum()

        leaf = Tensor(data.copy(), requires_grad=True)
        build(leaf).backward()
        expected = np.zeros((3, 4))
        expected[:, 3] = 2 * data[:, 3]
        np.testing.assert_allclose(leaf.grad, expected)

    def test_nonlinearity_grads(self, rng):
        check_gradient(lambda x: x.tanh().sum(), (4,), rng)
        check_gradient(lambda x: x.sigmoid().sum(), (4,), rng)
        check_gradient(lambda x: (x * x + 1.0).sqrt().sum(), (4,), rng)
        check_gradient(lambda x: x.exp().sum(), (4,), rng)
        check_gradient(lambda x: (x * x + 1.0).log().sum(), (4,), rng)

    def test_relu_grad_away_from_kink(self, rng):
        data = rng.normal(size=(10,))
        data[np.abs(data) < 0.1] = 0.5  # keep finite differences valid
        leaf = Tensor(data.astype(np.float64), requires_grad=True)
        leaf.relu().sum().backward()
        np.testing.assert_allclose(leaf.grad, (data > 0).astype(float))

    def test_leaky_relu_grad(self):
        leaf = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        leaf.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(leaf.grad, [0.1, 1.0])

    def test_abs_grad(self):
        leaf = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        leaf.abs().sum().backward()
        np.testing.assert_allclose(leaf.grad, [-1.0, 1.0])

    def test_getitem_fancy_grad_accumulates_duplicates(self):
        leaf = Tensor(np.arange(4.0), requires_grad=True)
        idx = np.array([0, 0, 2])
        leaf[idx].sum().backward()
        np.testing.assert_allclose(leaf.grad, [2.0, 0.0, 1.0, 0.0])

    def test_getitem_slice_grad(self, rng):
        check_gradient(lambda x: (x[1:3] ** 2).sum(), (5, 2), rng)

    def test_gather_rows_grad(self, rng):
        idx = np.array([0, 2, 2, 4, 1])
        check_gradient(lambda x: (x.gather_rows(idx) ** 2).sum(), (5, 3), rng)

    def test_concat_grad(self, rng):
        other = rng.normal(size=(3, 2))

        def build(x):
            return (Tensor.concat([x, Tensor(other)], axis=1) ** 2).sum()

        check_gradient(build, (3, 4), rng)

    def test_stack_grad(self, rng):
        def build(x):
            return (Tensor.stack([x, x * 2.0], axis=0) ** 2).sum()

        check_gradient(build, (3,), rng)


class TestBackwardSemantics:
    def test_grad_accumulates_across_backwards(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 3).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 5.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_backward_requires_scalar_without_seed(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (a * 2).backward()

    def test_backward_seed_shape_checked(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError, match="shape"):
            (a * 2).backward(np.ones(3))

    def test_diamond_graph(self):
        # d = b + c where b, c both derive from a: gradients must merge.
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2
        c = a * 5
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [7.0])

    def test_shared_subexpression_counted_once_per_path(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * a  # da = 2a
        (b * b).sum().backward()  # d(a^4) = 4a^3 = 32
        np.testing.assert_allclose(a.grad, [32.0])

    def test_deep_chain_does_not_recurse(self):
        # would overflow the default recursion limit if implemented recursively
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_no_grad_blocks_tape(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert b._parents == ()
        c = a * 2
        c.sum().backward()
        np.testing.assert_allclose(a.grad, [2.0])

    def test_no_grad_nests_and_restores(self):
        from repro.tensor import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()
