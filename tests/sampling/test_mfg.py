"""MFG structural invariants and validation errors."""

import numpy as np
import pytest

from repro.sampling import MFG, Adj


def simple_mfg():
    # batch of 2 targets; hop adds node 2 and 3.
    inner = Adj(
        edge_index=np.array([[2, 3, 0], [0, 1, 1]]), e_id=None, size=(4, 2)
    )
    outer = Adj(
        edge_index=np.array([[4, 5], [2, 3]]), e_id=None, size=(6, 4)
    )
    return MFG(n_id=np.arange(6), adjs=[outer, inner], batch_size=2)


class TestAdj:
    def test_unpacks_like_pyg(self):
        adj = Adj(edge_index=np.array([[0], [0]]), e_id=None, size=(1, 1))
        edge_index, e_id, size = adj
        assert size == (1, 1) and e_id is None

    def test_rejects_bad_edge_index_shape(self):
        with pytest.raises(ValueError):
            Adj(edge_index=np.zeros((3, 2)), e_id=None, size=(2, 2))

    def test_validate_rejects_dst_exceeding_prefix(self):
        adj = Adj(edge_index=np.array([[0], [3]]), e_id=None, size=(4, 2))
        with pytest.raises(ValueError, match="destination"):
            adj.validate()

    def test_validate_rejects_src_out_of_range(self):
        adj = Adj(edge_index=np.array([[9], [0]]), e_id=None, size=(4, 2))
        with pytest.raises(ValueError, match="source"):
            adj.validate()

    def test_nbytes(self):
        adj = Adj(edge_index=np.zeros((2, 5), dtype=np.int64), e_id=None, size=(5, 5))
        assert adj.nbytes() == 2 * 5 * 8


class TestMFG:
    def test_valid_mfg_passes(self):
        simple_mfg().validate()

    def test_target_ids(self):
        np.testing.assert_array_equal(simple_mfg().target_ids(), [0, 1])

    def test_counts(self):
        mfg = simple_mfg()
        assert mfg.num_layers == 2
        assert mfg.num_input_nodes == 6
        assert mfg.total_edges() == 5

    def test_rejects_non_telescoping(self):
        bad = simple_mfg()
        bad.adjs[0] = Adj(
            edge_index=np.array([[4], [2]]), e_id=None, size=(6, 3)
        )
        with pytest.raises(ValueError, match="telescope"):
            bad.validate()

    def test_rejects_wrong_batch_size(self):
        mfg = simple_mfg()
        mfg.batch_size = 3
        with pytest.raises(ValueError):
            mfg.validate()

    def test_rejects_duplicate_n_id(self):
        mfg = simple_mfg()
        mfg.n_id = np.array([0, 1, 2, 3, 4, 4])
        with pytest.raises(ValueError, match="duplicates"):
            mfg.validate()

    def test_rejects_n_id_length_mismatch(self):
        mfg = simple_mfg()
        mfg.n_id = np.arange(7)
        with pytest.raises(ValueError, match="n_id"):
            mfg.validate()

    def test_rejects_empty_layers(self):
        with pytest.raises(ValueError):
            MFG(n_id=np.arange(2), adjs=[], batch_size=2).validate()
