"""Layer-wise samplers (FastGCN / LADIES extensions)."""

import numpy as np
import pytest

from repro.sampling import FastGCNSampler, LadiesSampler, weighted_segment_mean
from repro.tensor import Tensor

SAMPLERS = [FastGCNSampler, LadiesSampler]


@pytest.mark.parametrize("sampler_cls", SAMPLERS)
class TestLayerwiseContract:
    def test_mfg_structurally_valid(self, sampler_cls, small_products, rng):
        sampler = sampler_cls(small_products.graph, [64, 32])
        batch = rng.choice(small_products.num_nodes, size=16, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(0))
        mfg.validate()
        np.testing.assert_array_equal(mfg.n_id[:16], batch)

    def test_budget_bounds_layer_growth(self, sampler_cls, small_products, rng):
        """Each hop adds at most `budget` new nodes — the defining property
        of layer-wise (vs node-wise) sampling."""
        budget = 20
        sampler = sampler_cls(small_products.graph, [budget, budget])
        batch = rng.choice(small_products.num_nodes, size=32, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(1))
        sizes = [adj.size for adj in mfg.adjs]  # input-side first
        # innermost layer: 32 targets; each hop adds <= budget sources
        assert sizes[-1][0] - sizes[-1][1] <= budget
        assert sizes[0][0] - sizes[0][1] <= budget

    def test_edges_exist_in_graph(self, sampler_cls, small_products, rng):
        sampler = sampler_cls(small_products.graph, [32])
        batch = rng.choice(small_products.num_nodes, size=8, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(2))
        adj = mfg.adjs[0]
        for s, d in zip(mfg.n_id[adj.edge_index[0]], mfg.n_id[adj.edge_index[1]]):
            assert s in small_products.graph.neighbors(int(d))

    def test_edge_weights_attached_and_positive(self, sampler_cls, small_products, rng):
        sampler = sampler_cls(small_products.graph, [32])
        batch = rng.choice(small_products.num_nodes, size=8, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(3))
        weights = mfg.adjs[0].edge_weight
        assert weights.shape == (mfg.adjs[0].num_edges,)
        assert (weights > 0).all()

    def test_rejects_none_budget(self, sampler_cls, small_products):
        with pytest.raises(ValueError):
            sampler_cls(small_products.graph, [None])

    def test_empty_batch_rejected(self, sampler_cls, small_products):
        sampler = sampler_cls(small_products.graph, [16])
        with pytest.raises(ValueError):
            sampler.sample(np.array([], dtype=np.int64), np.random.default_rng(0))


class TestImportanceDistributions:
    def test_ladies_prefers_frontier_connected_nodes(self, small_products):
        """LADIES probability is zero-heavy toward nodes with many frontier
        connections; check monotonicity on a constructed case."""
        sampler = LadiesSampler(small_products.graph, [16])
        frontier = np.arange(50)
        candidates = np.arange(50, 120)
        probs = sampler._distribution_over(candidates, frontier)
        counts = np.array(
            [
                np.isin(small_products.graph.neighbors(int(v)), frontier).sum()
                for v in candidates
            ],
            dtype=float,
        )
        # probabilities proportional to counts^2 (up to normalization)
        expected = counts**2
        if expected.sum() > 0:
            np.testing.assert_allclose(probs, expected / expected.sum(), rtol=1e-6)

    def test_fastgcn_degree_proportional(self, small_products):
        sampler = FastGCNSampler(small_products.graph, [16])
        candidates = np.arange(80)
        probs = sampler._distribution_over(candidates, np.arange(10))
        degrees = small_products.graph.degree()[candidates].astype(float)
        np.testing.assert_allclose(probs, degrees / degrees.sum(), rtol=1e-6)


class TestWeightedAggregation:
    def test_uniform_weights_equal_plain_mean(self, rng):
        from repro.tensor import functional as F

        messages = Tensor(rng.normal(size=(6, 4)).astype(np.float32))
        index = np.array([0, 0, 1, 1, 1, 2])
        weighted = weighted_segment_mean(messages, np.ones(6), index, 3)
        plain = F.segment_mean(messages, index, 3)
        np.testing.assert_allclose(weighted.data, plain.data, rtol=1e-5)

    def test_weights_bias_the_mean(self, rng):
        messages = Tensor(np.array([[0.0], [10.0]], dtype=np.float32))
        index = np.array([0, 0])
        out = weighted_segment_mean(messages, np.array([3.0, 1.0]), index, 1)
        np.testing.assert_allclose(out.data, [[2.5]], rtol=1e-5)

    def test_gradients_flow(self, rng):
        messages = Tensor(
            rng.normal(size=(5, 3)).astype(np.float32), requires_grad=True
        )
        index = np.array([0, 1, 1, 0, 1])
        out = weighted_segment_mean(messages, rng.random(5) + 0.5, index, 2)
        out.sum().backward()
        assert messages.grad is not None

    def test_self_normalized_estimator_unbiasedness(self, small_products):
        """Monte-Carlo check: LADIES-weighted aggregation over repeated
        samples approaches the exact full-neighborhood mean."""
        from repro.tensor import functional as F

        graph = small_products.graph
        features = small_products.features.astype(np.float32)
        target = 5
        exact = features[graph.neighbors(target)].mean(axis=0)

        sampler = LadiesSampler(graph, [24])
        estimates = []
        for trial in range(60):
            mfg = sampler.sample(np.array([target]), np.random.default_rng(trial))
            adj = mfg.adjs[0]
            msgs = Tensor(features[mfg.n_id[adj.edge_index[0]]])
            est = weighted_segment_mean(msgs, adj.edge_weight, adj.edge_index[1], 1)
            estimates.append(est.data[0])
        mc = np.mean(estimates, axis=0)
        # self-normalized IS is consistent; tolerate Monte-Carlo noise
        err = np.abs(mc - exact).mean() / (np.abs(exact).mean() + 1e-6)
        assert err < 0.6
