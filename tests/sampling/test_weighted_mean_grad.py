"""Numerical gradient check for the importance-weighted aggregation."""

import numpy as np

from repro.sampling import weighted_segment_mean
from repro.tensor import Tensor

from ..helpers import check_gradient


class TestWeightedMeanGradients:
    def test_matches_numerical_gradient(self, rng):
        index = np.array([0, 0, 1, 2, 2, 2])
        weights = rng.random(6) + 0.25

        def build(x):
            return (weighted_segment_mean(x, weights, index, 3) ** 2).sum()

        check_gradient(build, (6, 4), rng, atol=1e-5, rtol=1e-3)

    def test_zero_weight_edge_gets_zero_gradient(self, rng):
        messages = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        weights = np.array([1.0, 0.0, 1.0])
        index = np.array([0, 0, 0])
        weighted_segment_mean(messages, weights, index, 1).sum().backward()
        np.testing.assert_allclose(messages.grad[1], 0.0, atol=1e-7)
        assert np.abs(messages.grad[0]).sum() > 0
