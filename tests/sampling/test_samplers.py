"""Sampler backends: structural equivalence, fanout semantics, distribution.

The reference (PyG-style) and fast (SALIENT) samplers must produce
identically *distributed* MFGs; these tests check the structural
invariants both must satisfy, plus a statistical uniformity check on the
fast sampler's without-replacement selection.
"""

import numpy as np
import pytest

from repro.graph import star_graph
from repro.sampling import (
    BatchIterator,
    FastNeighborSampler,
    PyGNeighborSampler,
    full_fanouts,
)

SAMPLERS = [PyGNeighborSampler, FastNeighborSampler]


def assert_valid_against_graph(mfg, graph):
    """Every sampled edge must exist in the graph, with correct counts."""
    mfg.validate()
    for adj in mfg.adjs:
        src_global = mfg.n_id[adj.edge_index[0]]
        dst_global = mfg.n_id[adj.edge_index[1]]
        for s, d in zip(src_global, dst_global):
            assert s in graph.neighbors(int(d)), f"edge {s}->{d} not in graph"


@pytest.mark.parametrize("sampler_cls", SAMPLERS)
class TestSamplerContract:
    def test_mfg_valid_and_edges_exist(self, sampler_cls, small_products, rng):
        sampler = sampler_cls(small_products.graph, [5, 3])
        batch = rng.choice(small_products.num_nodes, size=16, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(0))
        assert_valid_against_graph(mfg, small_products.graph)

    def test_batch_nodes_prefix_n_id(self, sampler_cls, small_products, rng):
        sampler = sampler_cls(small_products.graph, [4, 4])
        batch = rng.choice(small_products.num_nodes, size=8, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(1))
        np.testing.assert_array_equal(mfg.n_id[:8], batch)

    def test_fanout_caps_neighbor_count(self, sampler_cls, small_products, rng):
        fanout = 6
        sampler = sampler_cls(small_products.graph, [fanout])
        batch = rng.choice(small_products.num_nodes, size=64, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(2))
        adj = mfg.adjs[0]
        counts = np.bincount(adj.edge_index[1], minlength=len(batch))
        degrees = small_products.graph.degree()[batch]
        np.testing.assert_array_equal(counts, np.minimum(degrees, fanout))

    def test_no_duplicate_neighbors_per_target(self, sampler_cls, small_products, rng):
        sampler = sampler_cls(small_products.graph, [10])
        batch = rng.choice(small_products.num_nodes, size=32, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(3))
        adj = mfg.adjs[0]
        pairs = set(zip(adj.edge_index[0], adj.edge_index[1]))
        assert len(pairs) == adj.num_edges

    def test_full_fanout_returns_entire_neighborhood(self, sampler_cls, small_products):
        sampler = sampler_cls(small_products.graph, full_fanouts(1))
        batch = np.array([0, 1, 2, 3])
        mfg = sampler.sample(batch, np.random.default_rng(4))
        adj = mfg.adjs[0]
        counts = np.bincount(adj.edge_index[1], minlength=4)
        np.testing.assert_array_equal(counts, small_products.graph.degree()[batch])
        # and the exact neighbor sets match
        for local, v in enumerate(batch):
            sampled = set(mfg.n_id[adj.edge_index[0][adj.edge_index[1] == local]])
            assert sampled == set(small_products.graph.neighbors(int(v)))

    def test_multihop_telescopes(self, sampler_cls, small_products, rng):
        sampler = sampler_cls(small_products.graph, [5, 4, 3])
        batch = rng.choice(small_products.num_nodes, size=16, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(5))
        assert mfg.num_layers == 3
        assert mfg.adjs[-1].size[1] == 16
        # destination sets grow outward
        assert mfg.adjs[0].size[0] >= mfg.adjs[1].size[0] >= mfg.adjs[2].size[0]

    def test_isolated_node_ok(self, sampler_cls):
        # a graph with an isolated node: star + extra unattached node
        from repro.graph import CSRGraph

        star = star_graph(3)
        g = CSRGraph(
            np.concatenate([star.indptr, [star.indptr[-1]]]),
            star.indices,
            star.num_nodes + 1,
        )
        sampler = sampler_cls(g, [3])
        mfg = sampler.sample(np.array([4]), np.random.default_rng(0))
        assert mfg.total_edges() == 0
        assert mfg.batch_size == 1

    def test_empty_batch_rejected(self, sampler_cls, small_products):
        sampler = sampler_cls(small_products.graph, [3])
        with pytest.raises(ValueError):
            sampler.sample(np.array([], dtype=np.int64), np.random.default_rng(0))

    def test_bad_fanout_rejected(self, sampler_cls, small_products):
        with pytest.raises(ValueError):
            sampler_cls(small_products.graph, [0])
        with pytest.raises(ValueError):
            sampler_cls(small_products.graph, [])


class TestEquivalence:
    def test_same_structure_at_full_fanout(self, small_products, rng):
        """With fanout >= max degree, both samplers return the exact
        neighborhood, so their MFGs must agree up to node ordering."""
        max_deg = int(small_products.graph.degree().max())
        batch = rng.choice(small_products.num_nodes, size=8, replace=False)
        mfgs = []
        for cls in SAMPLERS:
            sampler = cls(small_products.graph, [max_deg + 1, max_deg + 1])
            mfgs.append(sampler.sample(batch, np.random.default_rng(0)))
        a, b = mfgs
        assert sorted(a.n_id) == sorted(b.n_id)
        assert a.total_edges() == b.total_edges()
        for adj_a, adj_b in zip(a.adjs, b.adjs):
            # compare global edge sets
            ea = set(zip(a.n_id[adj_a.edge_index[0]], a.n_id[adj_a.edge_index[1]]))
            eb = set(zip(b.n_id[adj_b.edge_index[0]], b.n_id[adj_b.edge_index[1]]))
            assert ea == eb

    def test_fast_sampler_uniform_selection(self):
        """Chi-square style check: the vectorized random-keys selection picks
        each neighbor of a fixed node with equal probability."""
        g = star_graph(20)  # hub 0 with 20 leaves
        sampler = FastNeighborSampler(g, [5])
        rng = np.random.default_rng(0)
        counts = np.zeros(21)
        trials = 2000
        for _ in range(trials):
            mfg = sampler.sample(np.array([0]), rng)
            adj = mfg.adjs[0]
            picked = mfg.n_id[adj.edge_index[0]]
            counts[picked] += 1
        leaf_counts = counts[1:]
        expected = trials * 5 / 20
        # each leaf picked ~500 times; allow 5 sigma of binomial noise
        sigma = np.sqrt(trials * (5 / 20) * (15 / 20))
        assert np.all(np.abs(leaf_counts - expected) < 5 * sigma)

    def test_pyg_sampler_uniform_selection(self):
        g = star_graph(12)
        sampler = PyGNeighborSampler(g, [4])
        rng = np.random.default_rng(0)
        counts = np.zeros(13)
        trials = 1500
        for _ in range(trials):
            mfg = sampler.sample(np.array([0]), rng)
            picked = mfg.n_id[mfg.adjs[0].edge_index[0]]
            counts[picked] += 1
        expected = trials * 4 / 12
        sigma = np.sqrt(trials * (4 / 12) * (8 / 12))
        assert np.all(np.abs(counts[1:] - expected) < 5 * sigma)

    def test_fast_sampler_state_reset_between_calls(self, small_products, rng):
        """The persistent array ID map must be fully cleaned after a batch."""
        sampler = FastNeighborSampler(small_products.graph, [5, 5])
        for trial in range(5):
            batch = rng.choice(small_products.num_nodes, size=16, replace=False)
            mfg = sampler.sample(batch, np.random.default_rng(trial))
            mfg.validate()
        assert (sampler._local_of == -1).all()


class TestBatchIterator:
    def test_covers_all_nodes(self):
        it = BatchIterator(np.arange(10), 3, shuffle=False)
        batches = list(it)
        assert len(batches) == 4
        np.testing.assert_array_equal(np.concatenate(batches), np.arange(10))

    def test_drop_last(self):
        it = BatchIterator(np.arange(10), 3, shuffle=False, drop_last=True)
        batches = list(it)
        assert len(batches) == 3 == len(it)
        assert all(len(b) == 3 for b in batches)

    def test_shuffle_deterministic_by_rng(self):
        a = list(BatchIterator(np.arange(20), 5, rng=np.random.default_rng(0)))
        b = list(BatchIterator(np.arange(20), 5, rng=np.random.default_rng(0)))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_shuffle_permutes(self):
        batches = list(BatchIterator(np.arange(100), 100, rng=np.random.default_rng(1)))
        assert not np.array_equal(batches[0], np.arange(100))
        np.testing.assert_array_equal(np.sort(batches[0]), np.arange(100))

    def test_len_without_drop(self):
        assert len(BatchIterator(np.arange(10), 3)) == 4

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchIterator(np.arange(5), 0)
