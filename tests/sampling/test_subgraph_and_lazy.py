"""Subgraph samplers, lazy schedules, and the GNS cache sampler."""

import numpy as np
import pytest

from repro.sampling import (
    CacheRestrictedSampler,
    ClusterSubgraphSampler,
    FastNeighborSampler,
    LazySamplerSchedule,
    RandomNodeSubgraphSampler,
    RandomWalkSubgraphSampler,
)


class TestRandomNodeSubgraph:
    def test_size_and_mapping(self, small_products, rng):
        sampler = RandomNodeSubgraphSampler(small_products.graph, 200)
        sub = sampler.sample(rng)
        assert sub.num_nodes == 200
        assert len(np.unique(sub.n_id)) == 200
        sub.graph.validate()

    def test_edges_are_induced(self, small_products, rng):
        sampler = RandomNodeSubgraphSampler(small_products.graph, 150)
        sub = sampler.sample(rng)
        members = set(sub.n_id.tolist())
        for local_src, local_dst in zip(*sub.graph.edge_index()):
            g_src, g_dst = int(sub.n_id[local_src]), int(sub.n_id[local_dst])
            assert g_src in members and g_dst in members
            assert g_dst in small_products.graph.neighbors(g_src)

    def test_size_validation(self, small_products):
        with pytest.raises(ValueError):
            RandomNodeSubgraphSampler(small_products.graph, 0)
        with pytest.raises(ValueError):
            RandomNodeSubgraphSampler(
                small_products.graph, small_products.num_nodes + 1
            )

    def test_full_mfg_layers(self, small_products, rng):
        sampler = RandomNodeSubgraphSampler(small_products.graph, 100)
        sub = sampler.sample(rng)
        layers = sub.full_mfg_layers(3)
        assert len(layers) == 3
        for adj in layers:
            assert adj.size == (100, 100)
            adj.validate()


class TestRandomWalkSubgraph:
    def test_contains_roots_and_is_connected_ish(self, small_products, rng):
        sampler = RandomWalkSubgraphSampler(small_products.graph, num_roots=10, walk_length=4)
        sub = sampler.sample(rng)
        # walks of length 4 from 10 roots: between 10 and 50 nodes
        assert 10 <= sub.num_nodes <= 50
        # the induced subgraph of a random walk has edges (walk steps)
        assert sub.graph.num_edges > 0

    def test_parameter_validation(self, small_products):
        with pytest.raises(ValueError):
            RandomWalkSubgraphSampler(small_products.graph, 0, 3)
        with pytest.raises(ValueError):
            RandomWalkSubgraphSampler(small_products.graph, 3, 0)


class TestClusterSubgraph:
    def test_single_cluster_batches(self, small_products, rng):
        sampler = ClusterSubgraphSampler(small_products.graph, 8, rng=np.random.default_rng(1))
        sub = sampler.sample(rng, clusters_per_batch=1)
        # one cluster of an 8-way partition: roughly n/8 nodes
        assert sub.num_nodes < small_products.num_nodes / 2

    def test_clusters_cover_graph(self, small_products):
        sampler = ClusterSubgraphSampler(small_products.graph, 4, rng=np.random.default_rng(1))
        total = sum(len(sampler.cluster_nodes(c)) for c in range(4))
        assert total == small_products.num_nodes

    def test_multi_cluster_batch_is_larger(self, small_products, rng):
        sampler = ClusterSubgraphSampler(small_products.graph, 8, rng=np.random.default_rng(1))
        one = sampler.sample(np.random.default_rng(3), clusters_per_batch=1)
        three = sampler.sample(np.random.default_rng(3), clusters_per_batch=3)
        assert three.num_nodes > one.num_nodes


class TestLazySchedule:
    def test_recycles_within_period(self, small_products, rng):
        base = FastNeighborSampler(small_products.graph, [5, 3])
        lazy = LazySamplerSchedule(base, recycle=3)
        batch = rng.choice(small_products.num_nodes, size=16, replace=False)

        lazy.start_epoch(0)
        first = lazy.sample(0, batch, np.random.default_rng(0))
        lazy.start_epoch(1)
        second = lazy.sample(0, batch, np.random.default_rng(99))
        assert second is first  # recycled, RNG ignored
        assert lazy.sampler_calls == 1

    def test_refreshes_at_period(self, small_products, rng):
        base = FastNeighborSampler(small_products.graph, [5, 3])
        lazy = LazySamplerSchedule(base, recycle=2)
        batch = rng.choice(small_products.num_nodes, size=16, replace=False)
        lazy.start_epoch(0)
        first = lazy.sample(0, batch, np.random.default_rng(0))
        lazy.start_epoch(2)  # period boundary: cache cleared
        third = lazy.sample(0, batch, np.random.default_rng(1))
        assert third is not first
        assert lazy.sampler_calls == 2

    def test_distinct_batches_cached_separately(self, small_products, rng):
        base = FastNeighborSampler(small_products.graph, [5])
        lazy = LazySamplerSchedule(base, recycle=2)
        lazy.start_epoch(0)
        a = lazy.sample(0, np.array([1, 2]), np.random.default_rng(0))
        b = lazy.sample(1, np.array([3, 4]), np.random.default_rng(0))
        assert a is not b
        assert lazy.sampler_calls == 2

    def test_invalid_period(self, small_products):
        with pytest.raises(ValueError):
            LazySamplerSchedule(FastNeighborSampler(small_products.graph, [3]), recycle=0)


class TestCacheRestrictedSampler:
    def test_produces_valid_mfgs(self, small_products, rng):
        sampler = CacheRestrictedSampler(
            small_products.graph, [5, 3], cache_size=400,
            rng=np.random.default_rng(0),
        )
        batch = rng.choice(small_products.num_nodes, size=16, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(1))
        mfg.validate()
        # per-target neighbor counts still respect the fanout
        adj = mfg.adjs[-1]
        counts = np.bincount(adj.edge_index[1], minlength=16)
        degrees = small_products.graph.degree()[batch]
        np.testing.assert_array_equal(counts, np.minimum(degrees, 5))

    def test_sampled_edges_exist(self, small_products, rng):
        sampler = CacheRestrictedSampler(
            small_products.graph, [4], cache_size=300, rng=np.random.default_rng(0)
        )
        batch = rng.choice(small_products.num_nodes, size=8, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(1))
        adj = mfg.adjs[0]
        for s, d in zip(mfg.n_id[adj.edge_index[0]], mfg.n_id[adj.edge_index[1]]):
            assert s in small_products.graph.neighbors(int(d))

    def test_bigger_cache_more_hits(self, small_products, rng):
        batch = rng.choice(small_products.num_nodes, size=32, replace=False)
        rates = []
        for size in (100, small_products.num_nodes):
            sampler = CacheRestrictedSampler(
                small_products.graph, [10], cache_size=size,
                rng=np.random.default_rng(0),
            )
            sampler.sample(batch, np.random.default_rng(1))
            total = sampler.cached_hit_count + sampler.fallback_count
            rates.append(sampler.cached_hit_count / max(total, 1))
        assert rates[1] > rates[0]

    def test_full_cache_equals_unrestricted_distribution(self, small_products, rng):
        """With every node cached, the restriction is a no-op structurally."""
        sampler = CacheRestrictedSampler(
            small_products.graph, [6], cache_size=small_products.num_nodes,
            rng=np.random.default_rng(0),
        )
        batch = rng.choice(small_products.num_nodes, size=16, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(1))
        assert sampler.fallback_count <= len(batch)  # only low-degree fallbacks
        mfg.validate()

    def test_refresh_changes_cache(self, small_products):
        sampler = CacheRestrictedSampler(
            small_products.graph, [5], cache_size=200, refresh_every=1,
            rng=np.random.default_rng(0),
        )
        before = sampler.cached_nodes.copy()
        sampler.start_epoch(1)
        after = sampler.cached_nodes
        assert not np.array_equal(before, after)

    def test_cache_size_validation(self, small_products):
        with pytest.raises(ValueError):
            CacheRestrictedSampler(small_products.graph, [3], cache_size=0)
