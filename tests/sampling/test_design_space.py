"""The 96-variant design space: enumeration and per-variant correctness."""

import numpy as np
import pytest

from repro.sampling import (
    BASELINE_VARIANT,
    WINNING_VARIANT,
    ParameterizedSampler,
    SamplerVariant,
    all_variants,
    expand_hop,
)
from repro.sampling.design_space import (
    _select_fisher_yates,
    _select_random_keys,
    _select_rejection,
    _select_reservoir,
)


class TestEnumeration:
    def test_exactly_96_variants(self):
        variants = all_variants()
        assert len(variants) == 96
        assert len(set(variants)) == 96  # all distinct (frozen dataclass)

    def test_baseline_and_winner_in_space(self):
        variants = set(all_variants())
        assert BASELINE_VARIANT in variants
        assert WINNING_VARIANT in variants

    def test_winner_matches_paper_findings(self):
        # Figure 2 analysis: array map + array set + fused construction
        assert WINNING_VARIANT.id_map == "array"
        assert WINNING_VARIANT.sample_set == "linear_array"
        assert WINNING_VARIANT.fused

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            SamplerVariant(id_map="btree")
        with pytest.raises(ValueError):
            SamplerVariant(sample_set="bloom")
        with pytest.raises(ValueError):
            SamplerVariant(selection="sorted")

    def test_label_readable(self):
        assert BASELINE_VARIANT.label() == "dict/hashset/rejection/staged"


class TestSelectionStrategies:
    """Each selection strategy must return `fanout` distinct valid offsets."""

    @pytest.mark.parametrize("degree,fanout", [(10, 3), (7, 7), (50, 12)])
    def test_rejection_all_sets(self, degree, fanout):
        for sample_set in ("hashset", "linear_array", "sorted_array", "bitmask"):
            picks = _select_rejection(
                degree, fanout, np.random.default_rng(0), sample_set
            )
            assert len(picks) == fanout
            assert len(set(picks)) == fanout
            assert all(0 <= p < degree for p in picks)

    @pytest.mark.parametrize(
        "strategy", [_select_fisher_yates, _select_reservoir, _select_random_keys]
    )
    def test_other_strategies(self, strategy):
        picks = strategy(20, 6, np.random.default_rng(1))
        assert len(picks) == 6
        assert len(set(picks)) == 6
        assert all(0 <= p < 20 for p in picks)

    @pytest.mark.parametrize(
        "strategy", [_select_fisher_yates, _select_reservoir, _select_random_keys]
    )
    def test_uniformity(self, strategy):
        """Each offset selected with probability fanout/degree."""
        degree, fanout, trials = 8, 2, 4000
        counts = np.zeros(degree)
        rng = np.random.default_rng(2)
        for _ in range(trials):
            for p in strategy(degree, fanout, rng):
                counts[p] += 1
        expected = trials * fanout / degree
        sigma = np.sqrt(trials * (fanout / degree) * (1 - fanout / degree))
        assert np.all(np.abs(counts - expected) < 5 * sigma)


@pytest.mark.parametrize(
    "variant",
    # exercising all 96 end-to-end is slow; cover the axes combinatorially:
    # every value of every knob appears, plus the two special corners.
    [
        BASELINE_VARIANT,
        WINNING_VARIANT,
        SamplerVariant("array", "bitmask", "fisher_yates", True),
        SamplerVariant("hybrid", "sorted_array", "reservoir", False),
        SamplerVariant("dict", "linear_array", "random_keys", True),
        SamplerVariant("hybrid", "hashset", "random_keys", True),
        SamplerVariant("array", "sorted_array", "rejection", False),
    ],
    ids=lambda v: v.label(),
)
class TestVariantCorrectness:
    def test_mfg_valid(self, variant, small_products, rng):
        sampler = ParameterizedSampler(small_products.graph, [5, 3], variant)
        batch = rng.choice(small_products.num_nodes, size=16, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(0))
        mfg.validate()
        # per-node counts respect fanout
        adj = mfg.adjs[-1]
        counts = np.bincount(adj.edge_index[1], minlength=16)
        degrees = small_products.graph.degree()[batch]
        np.testing.assert_array_equal(counts, np.minimum(degrees, 5))

    def test_edges_exist_in_graph(self, variant, small_products, rng):
        sampler = ParameterizedSampler(small_products.graph, [4], variant)
        batch = rng.choice(small_products.num_nodes, size=8, replace=False)
        mfg = sampler.sample(batch, np.random.default_rng(1))
        adj = mfg.adjs[0]
        for s, d in zip(
            mfg.n_id[adj.edge_index[0]], mfg.n_id[adj.edge_index[1]]
        ):
            assert s in small_products.graph.neighbors(int(d))


class TestHopEquivalenceAcrossVariants:
    def test_full_fanout_hop_identical_everywhere(self, small_products):
        """With full neighborhoods there is no sampling randomness, so all
        96 variants must produce exactly the same hop expansion."""
        frontier = np.array([3, 14, 159])
        reference = None
        for variant in all_variants():
            n_id, edge_index = expand_hop(
                small_products.graph,
                frontier,
                None,
                np.random.default_rng(0),
                variant,
            )
            edges = set(zip(n_id[edge_index[0]], edge_index[1]))
            if reference is None:
                reference = (sorted(n_id), edges)
            else:
                assert sorted(n_id) == reference[0], variant.label()
                assert edges == reference[1], variant.label()
