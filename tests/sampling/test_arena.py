"""Arena hot-path tests: buffer semantics, equivalence, allocation telemetry."""

import numpy as np
import pytest

from repro.datasets import available_datasets, get_dataset
from repro.sampling import FastNeighborSampler, SamplerArena
from repro.sampling.arena import (
    expand_frontier_arena,
    first_occurrence_dedup,
    gather_frontier_edges,
)
from repro.telemetry import Counters


def assert_mfgs_identical(a, b):
    np.testing.assert_array_equal(a.n_id, b.n_id)
    assert len(a.adjs) == len(b.adjs)
    for adj_a, adj_b in zip(a.adjs, b.adjs):
        assert adj_a.size == adj_b.size
        np.testing.assert_array_equal(adj_a.edge_index, adj_b.edge_index)


def random_batches(dataset, count, size, seed=0):
    rng = np.random.default_rng(seed)
    train = dataset.split.train
    return [
        rng.choice(train, size=min(size, len(train)), replace=False)
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# SamplerArena buffer semantics
# ----------------------------------------------------------------------
class TestSamplerArena:
    def test_request_returns_view_of_requested_size(self):
        arena = SamplerArena()
        buf = arena.request("scratch", 10)
        assert buf.shape == (10,)
        assert buf.dtype == np.int64

    def test_same_name_reuses_backing_buffer(self):
        arena = SamplerArena()
        first = arena.request("scratch", 10)
        first[:] = 7
        again = arena.request("scratch", 5)
        # Same storage: the smaller request is a prefix view of it.
        assert np.shares_memory(first, again)
        np.testing.assert_array_equal(again, 7)

    def test_growth_is_amortized_doubling(self):
        arena = SamplerArena()
        arena.request("scratch", 10)
        grows = arena.grow_count
        arena.request("scratch", 11)  # exceeds capacity -> doubles to 20
        assert arena.grow_count == grows + 1
        arena.request("scratch", 20)  # fits the doubled buffer -> no grow
        assert arena.grow_count == grows + 1
        arena.request("scratch", 1000)
        assert arena.grow_count == grows + 2

    def test_grow_counters_recorded(self):
        counters = Counters()
        arena = SamplerArena(counters)
        arena.request("a", 100)
        arena.request("b", 100, dtype=np.float64)
        assert counters["arena_grow_count"] == 2
        assert counters["arena_grow_bytes"] >= 100 * 8
        assert arena.nbytes() > 0
        assert set(arena.buffer_names()) == {"a", "b"}

    def test_iota_prefix(self):
        arena = SamplerArena()
        np.testing.assert_array_equal(arena.iota(5), np.arange(5))
        big = arena.iota(50)
        np.testing.assert_array_equal(big, np.arange(50))
        # prefix view of the same persistent buffer
        assert np.shares_memory(arena.iota(5), big)

    def test_dtype_mismatch_reallocates(self):
        arena = SamplerArena()
        as_int = arena.request("keys", 8)
        as_float = arena.request("keys", 8, dtype=np.float64)
        assert as_int.dtype == np.int64
        assert as_float.dtype == np.float64


# ----------------------------------------------------------------------
# Kernel-level equivalence
# ----------------------------------------------------------------------
class TestArenaKernels:
    def test_gather_matches_csr(self, small_products):
        graph = small_products.graph
        arena = SamplerArena()
        frontier = np.array([0, 5, 17, 3], dtype=np.int64)
        src, dst, degrees, total = gather_frontier_edges(graph, frontier, arena)
        assert total == int(degrees.sum())
        for local, node in enumerate(frontier):
            mask = dst[:total] == local
            np.testing.assert_array_equal(
                np.sort(src[:total][mask]), np.sort(graph.neighbors(int(node)))
            )

    def test_first_occurrence_dedup_discovery_order(self):
        arena = SamplerArena()
        local_of = np.full(100, -1, dtype=np.int64)
        src_sel = np.array([42, 7, 42, 13, 7, 99], dtype=np.int64)
        src_local, ordered_new = first_occurrence_dedup(src_sel, local_of, 3, arena)
        np.testing.assert_array_equal(ordered_new, [42, 7, 13, 99])
        np.testing.assert_array_equal(src_local, [3, 4, 3, 5, 4, 6])
        local_of[ordered_new] = -1
        assert (local_of == -1).all()

    def test_dedup_with_no_new_nodes(self):
        arena = SamplerArena()
        local_of = np.full(10, -1, dtype=np.int64)
        local_of[[4, 6]] = [0, 1]
        src_sel = np.array([4, 6, 4], dtype=np.int64)
        src_local, ordered_new = first_occurrence_dedup(src_sel, local_of, 2, arena)
        assert ordered_new is None
        np.testing.assert_array_equal(src_local, [0, 1, 0])

    def test_split_and_copy_paths_match_legacy_kernel(self, small_products):
        from repro.sampling import expand_frontier_vectorized

        graph = small_products.graph
        arena = SamplerArena()
        rng_state = np.random.default_rng(3)
        frontier = rng_state.choice(
            graph.num_nodes, size=200, replace=False
        ).astype(np.int64)
        for fanout in (None, 1, 5, 50):
            old = expand_frontier_vectorized(
                graph, frontier, fanout, np.random.default_rng(11)
            )
            new = expand_frontier_arena(
                graph, frontier, fanout, np.random.default_rng(11), arena
            )
            np.testing.assert_array_equal(old[0], new[0])
            np.testing.assert_array_equal(old[1], new[1])


# ----------------------------------------------------------------------
# Determinism: old-fast vs arena-fast, byte-identical MFGs (satellite d)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", available_datasets())
def test_arena_and_legacy_mfgs_byte_identical(name):
    dataset = get_dataset(name, scale=0.2, seed=0)
    legacy = FastNeighborSampler(dataset.graph, [10, 5], use_arena=False)
    arena = FastNeighborSampler(dataset.graph, [10, 5], use_arena=True)
    for index, nodes in enumerate(random_batches(dataset, 50, 64, seed=5)):
        seed = np.random.SeedSequence([9, index])
        mfg_legacy = legacy.sample(nodes, np.random.default_rng(seed))
        mfg_arena = arena.sample(nodes, np.random.default_rng(seed))
        assert_mfgs_identical(mfg_legacy, mfg_arena)
    assert (legacy._local_of == -1).all()
    assert (arena._local_of == -1).all()


# ----------------------------------------------------------------------
# Exception safety (satellite a)
# ----------------------------------------------------------------------
class TestExceptionSafety:
    def test_out_of_range_batch_raises_and_leaves_map_clean(self, small_products):
        sampler = FastNeighborSampler(small_products.graph, [5, 5])
        bad = np.array([0, small_products.graph.num_nodes + 3], dtype=np.int64)
        with pytest.raises(ValueError, match="out of range"):
            sampler.sample(bad, np.random.default_rng(0))
        assert (sampler._local_of == -1).all()

    def test_negative_ids_rejected_before_map_write(self, small_products):
        sampler = FastNeighborSampler(small_products.graph, [5])
        with pytest.raises(ValueError, match="out of range"):
            sampler.sample(np.array([-1, 2]), np.random.default_rng(0))
        assert (sampler._local_of == -1).all()

    @pytest.mark.parametrize("use_arena", [False, True])
    def test_mid_hop_failure_leaves_sampler_reusable(self, small_products, use_arena):
        sampler = FastNeighborSampler(
            small_products.graph, [10, 5], use_arena=use_arena
        )
        nodes = small_products.split.train[:32]

        class ExplodingRng:
            """Fails on the second hop, after the map already has entries."""

            def __init__(self):
                self.calls = 0
                self._real = np.random.default_rng(0)

            def random(self, *args, **kwargs):
                self.calls += 1
                if self.calls > 1:
                    raise RuntimeError("injected failure")
                return self._real.random(*args, **kwargs)

        with pytest.raises(RuntimeError, match="injected failure"):
            sampler.sample(nodes, ExplodingRng())
        assert (sampler._local_of == -1).all()
        # and the sampler still produces correct batches afterwards
        mfg = sampler.sample(nodes, np.random.default_rng(1))
        mfg.validate()
        assert (sampler._local_of == -1).all()


# ----------------------------------------------------------------------
# Allocation telemetry: O(1) array allocations per batch after warm-up
# ----------------------------------------------------------------------
class TestAllocationTelemetry:
    def test_arena_stops_growing_after_warmup(self, small_products):
        counters = Counters()
        sampler = FastNeighborSampler(
            small_products.graph, [15, 10, 5], counters=counters
        )
        batches = random_batches(small_products, 25, 256, seed=2)
        # Warm-up on the first few batches grows buffers to steady state.
        for index, nodes in enumerate(batches[:5]):
            sampler.sample(nodes, np.random.default_rng([1, index]))
        grows_after_warmup = counters["arena_grow_count"]
        assert grows_after_warmup > 0  # warm-up really did allocate
        for index, nodes in enumerate(batches[5:]):
            sampler.sample(nodes, np.random.default_rng([2, index]))
        # O(1) allocations per batch in steady state: the arena performs
        # ZERO further scratch allocations; only fixed-count outputs
        # (edge_index, n_id, MFG wrappers) are created per batch.
        assert counters["arena_grow_count"] == grows_after_warmup
        assert counters["sampler_batches"] == 25

    def test_copy_and_sort_path_counters(self, small_products):
        counters = Counters()
        # Fanouts sized against the products degree distribution so both
        # sub-paths engage (tiny fanouts push every segment over-degree,
        # which takes the whole-array sort fallback instead).
        sampler = FastNeighborSampler(
            small_products.graph, [25, 20], counters=counters
        )
        for index, nodes in enumerate(random_batches(small_products, 5, 256)):
            sampler.sample(nodes, np.random.default_rng([3, index]))
        # Heavy-tail degrees: both the verbatim-copy path (under-degree
        # segments) and the sort path (over-degree remainder) must engage.
        assert counters["sampler_edges_copy_path"] > 0
        assert counters["sampler_edges_sort_path"] > 0

    def test_attach_counters_redirects_arena(self, small_products):
        sampler = FastNeighborSampler(small_products.graph, [5])
        shared = Counters()
        sampler.attach_counters(shared)
        sampler.sample(small_products.split.train[:16], np.random.default_rng(0))
        assert shared["sampler_batches"] == 1
        assert shared["arena_grow_count"] > 0
