"""Property-based tests: sampler invariants on arbitrary random graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edge_index
from repro.sampling import (
    FastNeighborSampler,
    ParameterizedSampler,
    PyGNeighborSampler,
    SamplerVariant,
)


@st.composite
def graph_and_request(draw):
    """A random directed graph plus a sampling request over it."""
    n = draw(st.integers(min_value=2, max_value=30))
    m = draw(st.integers(min_value=0, max_value=120))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    edge_index = np.array([src, dst], dtype=np.int64).reshape(2, -1)
    graph = from_edge_index(edge_index, n, undirected=draw(st.booleans()))
    batch_size = draw(st.integers(min_value=1, max_value=min(8, n)))
    batch = draw(
        st.lists(
            st.integers(0, n - 1),
            min_size=batch_size,
            max_size=batch_size,
            unique=True,
        )
    )
    fanouts = draw(
        st.lists(
            st.one_of(st.none(), st.integers(1, 6)), min_size=1, max_size=3
        )
    )
    seed = draw(st.integers(0, 2**31 - 1))
    return graph, np.asarray(batch, dtype=np.int64), fanouts, seed


def assert_mfg_invariants(graph, batch, fanouts, mfg):
    mfg.validate()
    # batch prefix
    np.testing.assert_array_equal(mfg.n_id[: len(batch)], batch)
    # per-layer: counts respect fanout; every edge exists; no duplicates
    frontier_size = len(batch)
    for adj, fanout in zip(reversed(mfg.adjs), fanouts):
        counts = np.bincount(adj.edge_index[1], minlength=adj.size[1])
        dst_global = mfg.n_id[adj.edge_index[1]]
        src_global = mfg.n_id[adj.edge_index[0]]
        degrees = graph.degree()[mfg.n_id[: adj.size[1]]]
        cap = degrees if fanout is None else np.minimum(degrees, fanout)
        np.testing.assert_array_equal(counts, cap)
        for s, d in zip(src_global, dst_global):
            assert s in graph.neighbors(int(d))
        pairs = set(zip(adj.edge_index[0], adj.edge_index[1]))
        assert len(pairs) == adj.num_edges
        assert adj.size[1] == frontier_size
        frontier_size = adj.size[0]


class TestSamplerProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph_and_request())
    def test_fast_sampler_invariants(self, case):
        graph, batch, fanouts, seed = case
        sampler = FastNeighborSampler(graph, fanouts)
        mfg = sampler.sample(batch, np.random.default_rng(seed))
        assert_mfg_invariants(graph, batch, fanouts, mfg)

    @settings(max_examples=25, deadline=None)
    @given(graph_and_request())
    def test_reference_sampler_invariants(self, case):
        graph, batch, fanouts, seed = case
        sampler = PyGNeighborSampler(graph, fanouts)
        mfg = sampler.sample(batch, np.random.default_rng(seed))
        assert_mfg_invariants(graph, batch, fanouts, mfg)

    @settings(max_examples=15, deadline=None)
    @given(
        graph_and_request(),
        st.sampled_from(
            [
                SamplerVariant("array", "linear_array", "rejection", True),
                SamplerVariant("hybrid", "bitmask", "random_keys", False),
                SamplerVariant("dict", "sorted_array", "fisher_yates", True),
            ]
        ),
    )
    def test_parameterized_variants_invariants(self, case, variant):
        graph, batch, fanouts, seed = case
        sampler = ParameterizedSampler(graph, fanouts, variant)
        mfg = sampler.sample(batch, np.random.default_rng(seed))
        assert_mfg_invariants(graph, batch, fanouts, mfg)

    @settings(max_examples=25, deadline=None)
    @given(graph_and_request())
    def test_fast_sampler_map_always_reset(self, case):
        """The persistent array ID map never leaks state across samples."""
        graph, batch, fanouts, seed = case
        sampler = FastNeighborSampler(graph, fanouts)
        sampler.sample(batch, np.random.default_rng(seed))
        assert (sampler._local_of == -1).all()

    @settings(max_examples=20, deadline=None)
    @given(graph_and_request())
    def test_fast_and_reference_agree_at_full_fanout(self, case):
        """Without randomness the two backends must produce the same edges."""
        graph, batch, fanouts, seed = case
        full = [None] * len(fanouts)
        mfg_a = FastNeighborSampler(graph, full).sample(
            batch, np.random.default_rng(0)
        )
        mfg_b = PyGNeighborSampler(graph, full).sample(
            batch, np.random.default_rng(0)
        )
        assert sorted(mfg_a.n_id) == sorted(mfg_b.n_id)
        for adj_a, adj_b in zip(mfg_a.adjs, mfg_b.adjs):
            edges_a = set(
                zip(mfg_a.n_id[adj_a.edge_index[0]], mfg_a.n_id[adj_a.edge_index[1]])
            )
            edges_b = set(
                zip(mfg_b.n_id[adj_b.edge_index[0]], mfg_b.n_id[adj_b.edge_index[1]])
            )
            assert edges_a == edges_b


class TestSelectionUniformity:
    """The fanout-selection kernels draw uniform without-replacement samples.

    Covers all three code shapes: the legacy lexsort kernel, the arena
    *split* path (a mix of under- and over-degree segments), and the arena
    whole-array sort *fallback* (every segment over-degree).  For each, the
    per-neighbor selection frequency of an over-degree destination across
    many independent seeds must sit inside binomial confidence bounds, and
    no destination segment may ever exceed ``fanout``.
    """

    TRIALS = 300

    @staticmethod
    def _kernels():
        from repro.sampling import SamplerArena, expand_frontier_arena
        from repro.sampling.fast_sampler import expand_frontier_vectorized

        arena = SamplerArena()

        def arena_kernel(graph, frontier, fanout, rng):
            return expand_frontier_arena(graph, frontier, fanout, rng, arena)

        return {"legacy": expand_frontier_vectorized, "arena": arena_kernel}

    @staticmethod
    def _build_graph(degree: int, split_path: bool):
        """Node 0 with ``degree`` out-neighbors (the over-degree segment).

        With ``split_path``, ``degree`` extra frontier nodes with a single
        neighbor each are added: every such segment is under-degree for any
        fanout >= 1, and the over-degree edge fraction drops to 0.5 — well
        below the sort-fallback threshold, forcing the arena split path.
        """
        k = degree if split_path else 0
        first_neighbor = 1 + k
        edges = [(0, first_neighbor + j) for j in range(degree)]
        edges += [(i, first_neighbor + degree + i - 1) for i in range(1, 1 + k)]
        frontier = np.arange(1 + k, dtype=np.int64)
        num_nodes = first_neighbor + degree + k
        edge_index = np.array(edges, dtype=np.int64).T.reshape(2, -1)
        graph = from_edge_index(edge_index, num_nodes)
        return graph, frontier, slice(first_neighbor, first_neighbor + degree)

    @settings(max_examples=6, deadline=None)
    @given(
        degree=st.integers(min_value=6, max_value=14),
        fanout=st.integers(min_value=1, max_value=5),
        split_path=st.booleans(),
        seed=st.integers(0, 2**20),
    )
    def test_selection_is_uniform_without_replacement(
        self, degree, fanout, split_path, seed
    ):
        # split_path=True mixes under- and over-degree segments in the
        # same call (arena split path); False leaves a single
        # over-degree segment (arena whole-array sort fallback).
        graph, frontier, neighbors = self._build_graph(degree, split_path)
        for name, kernel in self._kernels().items():
            counts = np.zeros(graph.num_nodes, dtype=np.int64)
            for trial in range(self.TRIALS):
                rng = np.random.default_rng([seed, trial])
                src_sel, dst_sel = kernel(graph, frontier, fanout, rng)
                seg = np.bincount(dst_sel, minlength=len(frontier))
                assert seg.max() <= fanout, name
                # without replacement within each segment
                assert len(np.unique(src_sel[dst_sel == 0])) == seg[0], name
                np.add.at(counts, src_sel, 1)
            # Binomial bounds for node 0's neighbors: each is kept with
            # p = fanout/degree per trial; 4.5 sigma two-sided, so a false
            # failure is ~1-in-10^5 even across all hypothesis examples.
            p = min(1.0, fanout / degree)
            expected = self.TRIALS * p
            slack = 4.5 * np.sqrt(self.TRIALS * p * (1 - p)) + 1e-9
            neighbor_counts = counts[neighbors]
            assert neighbor_counts.min() >= expected - slack, name
            assert neighbor_counts.max() <= expected + slack, name
