"""Property-based tests: sampler invariants on arbitrary random graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edge_index
from repro.sampling import (
    FastNeighborSampler,
    ParameterizedSampler,
    PyGNeighborSampler,
    SamplerVariant,
)


@st.composite
def graph_and_request(draw):
    """A random directed graph plus a sampling request over it."""
    n = draw(st.integers(min_value=2, max_value=30))
    m = draw(st.integers(min_value=0, max_value=120))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    edge_index = np.array([src, dst], dtype=np.int64).reshape(2, -1)
    graph = from_edge_index(edge_index, n, undirected=draw(st.booleans()))
    batch_size = draw(st.integers(min_value=1, max_value=min(8, n)))
    batch = draw(
        st.lists(
            st.integers(0, n - 1),
            min_size=batch_size,
            max_size=batch_size,
            unique=True,
        )
    )
    fanouts = draw(
        st.lists(
            st.one_of(st.none(), st.integers(1, 6)), min_size=1, max_size=3
        )
    )
    seed = draw(st.integers(0, 2**31 - 1))
    return graph, np.asarray(batch, dtype=np.int64), fanouts, seed


def assert_mfg_invariants(graph, batch, fanouts, mfg):
    mfg.validate()
    # batch prefix
    np.testing.assert_array_equal(mfg.n_id[: len(batch)], batch)
    # per-layer: counts respect fanout; every edge exists; no duplicates
    frontier_size = len(batch)
    for adj, fanout in zip(reversed(mfg.adjs), fanouts):
        counts = np.bincount(adj.edge_index[1], minlength=adj.size[1])
        dst_global = mfg.n_id[adj.edge_index[1]]
        src_global = mfg.n_id[adj.edge_index[0]]
        degrees = graph.degree()[mfg.n_id[: adj.size[1]]]
        cap = degrees if fanout is None else np.minimum(degrees, fanout)
        np.testing.assert_array_equal(counts, cap)
        for s, d in zip(src_global, dst_global):
            assert s in graph.neighbors(int(d))
        pairs = set(zip(adj.edge_index[0], adj.edge_index[1]))
        assert len(pairs) == adj.num_edges
        assert adj.size[1] == frontier_size
        frontier_size = adj.size[0]


class TestSamplerProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph_and_request())
    def test_fast_sampler_invariants(self, case):
        graph, batch, fanouts, seed = case
        sampler = FastNeighborSampler(graph, fanouts)
        mfg = sampler.sample(batch, np.random.default_rng(seed))
        assert_mfg_invariants(graph, batch, fanouts, mfg)

    @settings(max_examples=25, deadline=None)
    @given(graph_and_request())
    def test_reference_sampler_invariants(self, case):
        graph, batch, fanouts, seed = case
        sampler = PyGNeighborSampler(graph, fanouts)
        mfg = sampler.sample(batch, np.random.default_rng(seed))
        assert_mfg_invariants(graph, batch, fanouts, mfg)

    @settings(max_examples=15, deadline=None)
    @given(
        graph_and_request(),
        st.sampled_from(
            [
                SamplerVariant("array", "linear_array", "rejection", True),
                SamplerVariant("hybrid", "bitmask", "random_keys", False),
                SamplerVariant("dict", "sorted_array", "fisher_yates", True),
            ]
        ),
    )
    def test_parameterized_variants_invariants(self, case, variant):
        graph, batch, fanouts, seed = case
        sampler = ParameterizedSampler(graph, fanouts, variant)
        mfg = sampler.sample(batch, np.random.default_rng(seed))
        assert_mfg_invariants(graph, batch, fanouts, mfg)

    @settings(max_examples=25, deadline=None)
    @given(graph_and_request())
    def test_fast_sampler_map_always_reset(self, case):
        """The persistent array ID map never leaks state across samples."""
        graph, batch, fanouts, seed = case
        sampler = FastNeighborSampler(graph, fanouts)
        sampler.sample(batch, np.random.default_rng(seed))
        assert (sampler._local_of == -1).all()

    @settings(max_examples=20, deadline=None)
    @given(graph_and_request())
    def test_fast_and_reference_agree_at_full_fanout(self, case):
        """Without randomness the two backends must produce the same edges."""
        graph, batch, fanouts, seed = case
        full = [None] * len(fanouts)
        mfg_a = FastNeighborSampler(graph, full).sample(
            batch, np.random.default_rng(0)
        )
        mfg_b = PyGNeighborSampler(graph, full).sample(
            batch, np.random.default_rng(0)
        )
        assert sorted(mfg_a.n_id) == sorted(mfg_b.n_id)
        for adj_a, adj_b in zip(mfg_a.adjs, mfg_b.adjs):
            edges_a = set(
                zip(mfg_a.n_id[adj_a.edge_index[0]], mfg_a.n_id[adj_a.edge_index[1]])
            )
            edges_b = set(
                zip(mfg_b.n_id[adj_b.edge_index[0]], mfg_b.n_id[adj_b.edge_index[1]])
            )
            assert edges_a == edges_b
