"""Per-channel affine uint8 quantization and fused dequantize-on-slice."""

import numpy as np
import pytest

from repro.slicing import QuantizationParams, dequantize_rows, quantize_uint8
from repro.slicing.quantize import max_quantization_error


@pytest.fixture()
def features(rng):
    return rng.normal(size=(200, 16)).astype(np.float32)


class TestQuantizeUint8:
    def test_codes_are_uint8(self, features):
        codes, params = quantize_uint8(features)
        assert codes.dtype == np.uint8
        assert codes.shape == features.shape
        assert params.num_channels == features.shape[1]

    def test_round_trip_within_half_step(self, features):
        codes, params = quantize_uint8(features)
        recon = dequantize_rows(codes, params, dtype=np.float32)
        bound = max_quantization_error(params) + 1e-6
        assert np.max(np.abs(recon - features)) <= bound

    def test_channel_extremes_are_exact(self, features):
        # min maps to code 0, max to 255; affine reconstruction recovers
        # both endpoints up to f32 rounding.
        codes, params = quantize_uint8(features)
        recon = dequantize_rows(codes, params, dtype=np.float32)
        np.testing.assert_allclose(
            recon.min(axis=0), features.min(axis=0), atol=1e-5
        )

    def test_constant_channel_reproduced_exactly(self):
        features = np.full((50, 3), 2.5, dtype=np.float32)
        codes, params = quantize_uint8(features)
        assert np.all(codes == 0)
        recon = dequantize_rows(codes, params, dtype=np.float32)
        np.testing.assert_array_equal(recon, features)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            quantize_uint8(np.zeros(10, dtype=np.float32))


class TestQuantizationParams:
    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            QuantizationParams(scale=np.ones(3), offset=np.zeros(4))

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            QuantizationParams(scale=np.array([1.0, 0.0]), offset=np.zeros(2))

    def test_coerced_to_float32(self):
        params = QuantizationParams(
            scale=np.ones(2, dtype=np.float64), offset=np.zeros(2, dtype=np.int64)
        )
        assert params.scale.dtype == np.float32
        assert params.offset.dtype == np.float32


class TestDequantizeRows:
    def test_writes_into_float16_out(self, features):
        codes, params = quantize_uint8(features)
        out = np.empty(codes.shape, dtype=np.float16)
        result = dequantize_rows(codes, params, out=out)
        assert result is out
        expected = dequantize_rows(codes, params, dtype=np.float32)
        np.testing.assert_allclose(out, expected, rtol=1e-2, atol=1e-2)

    def test_writes_into_float32_out(self, features):
        codes, params = quantize_uint8(features)
        out = np.empty(codes.shape, dtype=np.float32)
        assert dequantize_rows(codes, params, out=out) is out

    def test_default_dtype_is_float16(self, features):
        codes, params = quantize_uint8(features)
        assert dequantize_rows(codes, params).dtype == np.float16

    def test_out_shape_validated(self, features):
        codes, params = quantize_uint8(features)
        with pytest.raises(ValueError):
            dequantize_rows(codes, params, out=np.empty((1, 1), np.float32))

    def test_channel_count_validated(self, features):
        codes, params = quantize_uint8(features)
        with pytest.raises(ValueError):
            dequantize_rows(codes[:, :4], params)
