"""On-disk feature slabs, the memmap cold tier, and the RAM-hot hierarchy."""

import numpy as np
import pytest

from repro.slicing import (
    FeatureStore,
    MemmapFeatureStore,
    TieredFeatureStore,
    open_store_from_spec,
    write_slab,
)
from repro.slicing.memmap_store import (
    SLAB_ALIGNMENT,
    SLAB_MAGIC,
    read_slab_header,
)
from repro.telemetry import MetricsRegistry


@pytest.fixture()
def slab(tmp_path, small_products):
    path = tmp_path / "products.raw.slab"
    write_slab(path, small_products.features, small_products.labels)
    return path


@pytest.fixture()
def quant_slab(tmp_path, small_products):
    path = tmp_path / "products.uint8.slab"
    write_slab(
        path, small_products.features, small_products.labels, encoding="uint8"
    )
    return path


@pytest.fixture()
def ram(small_products):
    return FeatureStore(small_products.features, small_products.labels)


class TestSlabFormat:
    def test_magic_and_header(self, slab):
        assert slab.read_bytes()[: len(SLAB_MAGIC)] == SLAB_MAGIC
        header = read_slab_header(slab)
        assert header["encoding"] == "raw"
        assert set(header["sections"]) == {"features", "labels"}

    def test_sections_are_aligned(self, quant_slab):
        header = read_slab_header(quant_slab)
        assert set(header["sections"]) == {"codes", "scale", "offset", "labels"}
        for meta in header["sections"].values():
            assert meta["offset"] % SLAB_ALIGNMENT == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.slab"
        path.write_bytes(b"NOTASLAB" + b"\x00" * 64)
        with pytest.raises(ValueError, match="bad magic"):
            read_slab_header(path)

    def test_unknown_encoding_rejected(self, tmp_path, small_products):
        with pytest.raises(ValueError, match="encoding"):
            write_slab(tmp_path / "x.slab", small_products.features, encoding="zstd")

    def test_labels_default_to_zeros(self, tmp_path):
        path = write_slab(tmp_path / "x.slab", np.zeros((4, 2), np.float16))
        store = MemmapFeatureStore(path)
        np.testing.assert_array_equal(store.labels, np.zeros(4, np.int64))


class TestMemmapFeatureStore:
    def test_matches_ram_store_exactly(self, slab, ram, rng):
        """The cold tier is byte-identical to the in-RAM fp16 store."""
        store = MemmapFeatureStore(slab)
        assert store.feature_dtype == ram.feature_dtype
        ids = rng.choice(store.num_nodes, size=64)
        np.testing.assert_array_equal(
            store.slice_features(ids), ram.slice_features(ids)
        )
        np.testing.assert_array_equal(store.slice_labels(ids), ram.slice_labels(ids))

    def test_slice_into_out_buffer(self, slab, ram, rng):
        store = MemmapFeatureStore(slab)
        ids = rng.choice(store.num_nodes, size=10)
        out = np.empty((10, store.num_features), dtype=store.feature_dtype)
        assert store.slice_features(ids, out=out) is out
        np.testing.assert_array_equal(out, ram.slice_features(ids))

    def test_out_shape_validated(self, slab):
        store = MemmapFeatureStore(slab)
        with pytest.raises(ValueError):
            store.slice_features(
                np.arange(5), out=np.empty((4, store.num_features), np.float16)
            )
        with pytest.raises(ValueError):
            store.slice_labels(np.arange(5), out=np.empty(4, np.int64))

    def test_ids_out_of_range_raise(self, slab):
        store = MemmapFeatureStore(slab)
        with pytest.raises(IndexError):
            store.slice_features(np.array([store.num_nodes]))

    def test_mapping_is_read_only(self, slab):
        store = MemmapFeatureStore(slab)
        with pytest.raises(ValueError):
            store._features[0, 0] = 1.0

    def test_gather_metrics_accumulate(self, slab, rng):
        store = MemmapFeatureStore(slab)
        ids = rng.choice(store.num_nodes, size=32)
        store.slice_features(ids)
        assert store.metrics.value("mmap_rows_read") == 32
        assert store.metrics.value("mmap_bytes_read") == 32 * store.stored_row_bytes()
        assert store.metrics.value("mmap_wait_seconds") > 0

    def test_attach_metrics_rebinds_registry(self, slab):
        store = MemmapFeatureStore(slab)
        registry = MetricsRegistry()
        store.attach_metrics(registry)
        store.slice_features(np.arange(4))
        assert registry.value("mmap_rows_read") == 4

    def test_resident_bytes_excludes_the_slab(self, slab, ram):
        store = MemmapFeatureStore(slab)
        assert store.resident_bytes() < ram.features.nbytes / 100

    def test_spec_round_trip(self, slab, rng):
        store = MemmapFeatureStore(slab)
        reopened = open_store_from_spec(store.mmap_spec())
        ids = rng.choice(store.num_nodes, size=16)
        np.testing.assert_array_equal(
            reopened.slice_features(ids), store.slice_features(ids)
        )

    def test_spec_with_missing_slab_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_store_from_spec(
                {"kind": "memmap", "path": str(tmp_path / "gone.slab")}
            )

    def test_unknown_spec_kind_raises(self):
        with pytest.raises(ValueError):
            open_store_from_spec({"kind": "s3"})


class TestQuantizedStore:
    def test_reconstruction_error_bounded(self, quant_slab, small_products, rng):
        store = MemmapFeatureStore(quant_slab)
        assert store.feature_dtype == np.float16
        assert store.stored_row_bytes() == store.num_features  # 1 byte/value
        ids = rng.choice(store.num_nodes, size=64)
        recon = store.slice_features(ids).astype(np.float32)
        exact = small_products.features[ids].astype(np.float32)
        step = float(store.params.scale.max())
        # half a quantization step plus fp16 rounding of the output
        assert np.max(np.abs(recon - exact)) <= step

    def test_dequantizes_into_pinned_shaped_out(self, quant_slab, rng):
        store = MemmapFeatureStore(quant_slab)
        ids = rng.choice(store.num_nodes, size=8)
        out = np.empty((8, store.num_features), dtype=np.float16)
        assert store.slice_features(ids, out=out) is out
        np.testing.assert_array_equal(out, store.slice_features(ids))


class TestTieredFeatureStore:
    @pytest.fixture()
    def tiered(self, slab):
        cold = MemmapFeatureStore(slab)
        return TieredFeatureStore(cold, np.arange(0, cold.num_nodes, 2))

    def test_byte_identical_to_cold(self, tiered, rng):
        """Tier routing can never change what a slice returns."""
        ids = rng.choice(tiered.num_nodes, size=128)
        np.testing.assert_array_equal(
            tiered.slice_features(ids), tiered.cold.slice_features(ids)
        )

    def test_slice_into_out_buffer(self, tiered, rng):
        ids = rng.choice(tiered.num_nodes, size=16)
        out = np.empty((16, tiered.num_features), dtype=tiered.feature_dtype)
        assert tiered.slice_features(ids, out=out) is out
        with pytest.raises(ValueError):
            tiered.slice_features(ids, out=out[:4])

    def test_per_tier_counters_and_hit_rate(self, tiered):
        ids = np.array([0, 2, 4, 1])  # evens are hot
        tiered.slice_features(ids)
        assert tiered.metrics.value("feature_tier_rows", tier="hot") == 3
        assert tiered.metrics.value("feature_tier_rows", tier="cold") == 1
        assert tiered.hit_rate() == pytest.approx(0.75)

    def test_all_cold_fast_path(self, tiered, rng):
        odds = np.arange(1, tiered.num_nodes, 2)[:32]
        np.testing.assert_array_equal(
            tiered.slice_features(odds), tiered.cold.slice_features(odds)
        )
        assert tiered.metrics.value("feature_tier_rows", tier="hot") == 0

    def test_hot_ids_validated(self, slab):
        cold = MemmapFeatureStore(slab)
        with pytest.raises(ValueError):
            TieredFeatureStore(cold, np.array([cold.num_nodes]))

    def test_labels_delegate_to_cold(self, tiered, rng):
        ids = rng.choice(tiered.num_nodes, size=8)
        np.testing.assert_array_equal(
            tiered.slice_labels(ids), tiered.cold.slice_labels(ids)
        )

    def test_worker_spec_attaches_cold_tier_only(self, tiered):
        assert tiered.mmap_spec() == tiered.cold.mmap_spec()

    def test_resident_bytes_counts_hot_rows(self, tiered):
        assert tiered.resident_bytes() >= tiered.hot_rows.nbytes

    def test_register_probes(self, tiered):
        probes = {}

        class Sampler:
            def add_probe(self, name, fn, unit=None):
                probes[name] = fn

        tiered.register_probes(Sampler())
        tiered.slice_features(np.array([0, 1]))
        assert probes["feature_tier/hot_hit_rate"]() == pytest.approx(0.5)
        assert probes["feature_tier/cold_bytes"]() > 0
        assert probes["feature_tier/mmap_wait_s"]() > 0
