"""Feature store and slicing paths."""

import numpy as np
import pytest

from repro.sampling import FastNeighborSampler
from repro.slicing import (
    FeatureStore,
    slice_batch_fused,
    slice_batch_reference,
)


@pytest.fixture()
def store(small_products):
    return FeatureStore(small_products.features, small_products.labels)


@pytest.fixture()
def mfg(small_products, rng):
    sampler = FastNeighborSampler(small_products.graph, [5, 3])
    batch = rng.choice(small_products.num_nodes, size=16, replace=False)
    return sampler.sample(batch, np.random.default_rng(0))


class TestFeatureStore:
    def test_half_precision_default(self, store):
        assert store.features.dtype == np.float16

    def test_full_precision_option(self, small_products):
        s = FeatureStore(
            small_products.features, small_products.labels, half_precision=False
        )
        assert s.features.dtype == np.float32

    def test_row_major_layout(self, store):
        assert store.features.flags["C_CONTIGUOUS"]

    def test_slice_features_matches_fancy_index(self, store, rng):
        ids = rng.choice(store.num_nodes, size=20)
        np.testing.assert_array_equal(store.slice_features(ids), store.features[ids])

    def test_slice_into_out_buffer(self, store, rng):
        ids = rng.choice(store.num_nodes, size=10)
        out = np.empty((10, store.num_features), dtype=store.feature_dtype)
        result = store.slice_features(ids, out=out)
        assert result is out
        np.testing.assert_array_equal(out, store.features[ids])

    def test_out_shape_validated(self, store):
        with pytest.raises(ValueError):
            store.slice_features(np.arange(5), out=np.empty((4, store.num_features)))

    def test_labels_out_shape_validated(self, store):
        with pytest.raises(ValueError):
            store.slice_labels(np.arange(5), out=np.empty(4, dtype=np.int64))

    def test_labels_slice(self, store):
        ids = np.array([0, 5, 9])
        np.testing.assert_array_equal(store.slice_labels(ids), store.labels[ids])

    def test_row_bytes(self, store):
        assert store.row_bytes() == store.num_features * 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FeatureStore(np.zeros((3, 2, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            FeatureStore(np.zeros((3, 2)), np.zeros(4))


class TestSlicingPaths:
    def test_reference_and_fused_agree(self, store, mfg):
        a = slice_batch_reference(store, mfg)
        b = slice_batch_fused(store, mfg)
        np.testing.assert_array_equal(a.xs, b.xs)
        np.testing.assert_array_equal(a.ys, b.ys)

    def test_fused_writes_into_pinned_view(self, store, mfg):
        xs_buf = np.zeros((len(mfg.n_id) + 100, store.num_features), dtype=np.float16)
        ys_buf = np.zeros(mfg.batch_size + 10, dtype=np.int64)
        batch = slice_batch_fused(store, mfg, xs_out=xs_buf, ys_out=ys_buf, pinned_slot=3)
        assert batch.pinned_slot == 3
        assert batch.xs.base is xs_buf  # a view, not a copy
        np.testing.assert_array_equal(xs_buf[: len(mfg.n_id)], store.features[mfg.n_id])

    def test_sliced_batch_validates(self, store, mfg):
        batch = slice_batch_fused(store, mfg)
        batch.validate()

    def test_validate_catches_row_mismatch(self, store, mfg):
        batch = slice_batch_fused(store, mfg)
        batch.xs = batch.xs[:-1]
        with pytest.raises(ValueError):
            batch.validate()

    def test_nbytes_counts_everything(self, store, mfg):
        batch = slice_batch_fused(store, mfg)
        assert batch.nbytes() == batch.xs.nbytes + batch.ys.nbytes + mfg.nbytes()

    def test_labels_are_target_only(self, store, mfg):
        batch = slice_batch_fused(store, mfg)
        assert batch.ys.shape == (mfg.batch_size,)
        np.testing.assert_array_equal(batch.ys, store.labels[mfg.target_ids()])


class TestZeroIntermediateGather:
    def test_out_of_range_ids_raise_with_out_buffer(self, store):
        out = np.empty((2, store.num_features), dtype=store.feature_dtype)
        with pytest.raises(IndexError, match="out of range"):
            store.slice_features(
                np.array([0, store.num_nodes], dtype=np.int64), out=out
            )
        with pytest.raises(IndexError, match="out of range"):
            store.slice_labels(np.array([-1, 0], dtype=np.int64), out=np.empty(2, np.int64))

    def test_empty_id_list_with_out_buffer(self, store):
        out = np.empty((0, store.num_features), dtype=store.feature_dtype)
        result = store.slice_features(np.empty(0, dtype=np.int64), out=out)
        assert result.shape == (0, store.num_features)

    def test_gather_into_out_allocates_no_intermediate(self, store):
        """The out= gather must not materialize a hidden full-size copy.

        ``np.take(..., mode="raise", out=...)`` builds a temporary the size
        of the result before copying into ``out``; the bounds-check +
        ``mode="clip"`` path writes rows directly. Peak traced allocation
        during the gather must therefore stay far below the payload size.
        """
        import tracemalloc

        n_id = np.arange(0, store.num_nodes, 2, dtype=np.int64)
        out = np.empty((len(n_id), store.num_features), dtype=store.feature_dtype)
        store.slice_features(n_id, out=out)  # warm-up
        tracemalloc.start()
        store.slice_features(n_id, out=out)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < out.nbytes / 10
        np.testing.assert_array_equal(out, store.features[n_id])


class TestSliceCounters:
    def test_fused_slice_reports_bytes_and_batches(self, store, mfg):
        from repro.telemetry import Counters

        counters = Counters()
        batch = slice_batch_fused(store, mfg, counters=counters)
        assert counters["slice_fused_batches"] == 1
        assert counters["slice_bytes_gathered"] == batch.xs.nbytes + batch.ys.nbytes
        assert counters["slice_pinned_batches"] == 0

    def test_pinned_slot_counted(self, store, mfg):
        from repro.telemetry import Counters

        counters = Counters()
        xs_buf = np.empty((len(mfg.n_id), store.num_features), store.feature_dtype)
        ys_buf = np.empty(mfg.batch_size, np.int64)
        slice_batch_fused(
            store, mfg, xs_out=xs_buf, ys_out=ys_buf, pinned_slot=3, counters=counters
        )
        assert counters["slice_pinned_batches"] == 1
