"""End-to-end integration: the paper's headline claims at test scale.

These are the repository's acceptance tests. Each one exercises the full
stack (dataset -> sampler -> batch prep -> device -> model -> optimizer ->
inference) and asserts a *finding* from the paper rather than a unit
behaviour.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.datasets import generate_dataset
from repro.train import (
    Trainer,
    accuracy,
    accuracy_by_degree,
    get_config,
    layerwise_full_inference,
    sampled_inference,
)


@pytest.fixture(scope="module")
def trained_products():
    """products stand-in trained to convergence (the Table 6 workhorse)."""
    dataset = generate_dataset("products", scale=0.375, seed=0)  # 3000 nodes
    config = replace(
        get_config("products", "sage"),
        batch_size=64,
        hidden_channels=48,
        lr=0.01,
        train_fanouts=(15, 10, 5),
    )
    trainer = Trainer(dataset, config, executor="pipelined", sampler="fast", seed=0)
    for epoch in range(30):
        trainer.train_epoch(epoch)
    yield dataset, trainer
    trainer.shutdown()


class TestTrainingConverges:
    def test_loss_low_and_val_accuracy_reasonable(self, trained_products):
        dataset, trainer = trained_products
        acc = trainer.evaluate("val")
        assert acc > 0.55  # far above the 10% random baseline


class TestInferenceWithSampling:
    """Section 5 / Table 6: sampled inference matches full-neighborhood."""

    def test_fanout20_matches_full_neighborhood(self, trained_products):
        dataset, trainer = trained_products
        nodes = dataset.split.test
        labels = dataset.labels[nodes]

        full = layerwise_full_inference(
            trainer.model, dataset.features, dataset.graph
        )
        acc_full = accuracy(full.select(nodes), labels)
        acc_20 = accuracy(trainer.predict(nodes, fanouts=[20, 20, 20]), labels)
        acc_5 = accuracy(trainer.predict(nodes, fanouts=[5, 5, 5]), labels)

        assert abs(acc_20 - acc_full) < 0.03  # fanout 20 ~ full (Table 6)
        assert acc_5 <= acc_20 + 0.01  # small fanouts degrade, not improve

    def test_degree_accuracy_profile(self, trained_products):
        """Figure 3: low-degree nodes dominate the test set, a small fanout
        'already approximates well the left half of the accuracy
        distribution', and the sampling penalty concentrates on high-degree
        nodes (the right half needs larger fanouts)."""
        dataset, trainer = trained_products
        nodes = dataset.split.test
        labels = dataset.labels[nodes]
        degrees = dataset.graph.degree()[nodes]

        full = layerwise_full_inference(
            trainer.model, dataset.features, dataset.graph
        )
        prof_full = accuracy_by_degree(full.select(nodes), labels, degrees, num_bins=6)
        preds = trainer.predict(nodes, fanouts=[10, 10, 10])
        prof_10 = accuracy_by_degree(preds, labels, degrees, num_bins=6)

        # most test nodes live in the low-degree buckets
        counts = prof_full.node_counts
        median_bucket = np.argmax(np.cumsum(counts) >= counts.sum() / 2)
        assert median_bucket <= len(counts) // 2
        # sampling penalty (full - sampled accuracy) grows with degree:
        # negligible on the populous low-degree buckets, pronounced on hubs
        gap = prof_full.accuracies - prof_10.accuracies
        filled = counts >= 10
        gaps = gap[filled]
        assert gaps[0] < 0.10  # left half approximated well at fanout 10
        assert gaps[-1] >= gaps[0] - 0.02  # penalty concentrated on the right


class TestSamplerParity:
    """The fast sampler trains as well as the reference sampler."""

    def test_fast_vs_pyg_final_accuracy(self):
        dataset = generate_dataset("arxiv", scale=0.375, seed=0)
        config = replace(
            get_config("arxiv", "sage"),
            batch_size=64,
            hidden_channels=32,
            lr=0.01,
        )
        accs = {}
        for sampler in ("fast", "pyg"):
            trainer = Trainer(
                dataset, config, executor="serial", sampler=sampler, seed=0
            )
            for epoch in range(12):
                trainer.train_epoch(epoch)
            accs[sampler] = trainer.evaluate("test")
            trainer.shutdown()
        assert abs(accs["fast"] - accs["pyg"]) < 0.06


class TestDDPEndToEnd:
    """Multi-rank training reaches single-rank quality."""

    def test_two_rank_training_quality(self):
        from repro.train import DDPTrainer

        dataset = generate_dataset("arxiv", scale=0.375, seed=0)
        config = replace(
            get_config("arxiv", "sage"),
            batch_size=32,
            hidden_channels=32,
            lr=0.01,
        )
        ddp = DDPTrainer(dataset, config, num_ranks=2, seed=0)
        for epoch in range(10):
            ddp.train_epoch(epoch)
        assert ddp.max_replica_divergence() == 0.0
        assert ddp.evaluate("test") > 0.5
