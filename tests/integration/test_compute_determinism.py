"""Tier-1 twin contract: fused+pooled compute is byte-identical to legacy.

The fused aggregation/linear kernels, per-batch plans and the workspace
buffer pool are performance features only — switching ``compute`` between
``"fused"`` and ``"legacy"`` must not change a single bit of any training
result.  One epoch per model architecture, asserting byte-identical
losses, gradients and final parameters (``array_equal``, not allclose).
"""

import numpy as np
import pytest

from repro.datasets import generate_dataset
from repro.train.config import ExperimentConfig
from repro.train.loop import Trainer


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset("arxiv", scale=0.1, seed=0)


def _run_epoch(dataset, model, compute, executor):
    config = ExperimentConfig(
        dataset="arxiv",
        model=model,
        hidden_channels=32,
        num_layers=2,
        train_fanouts=(5, 5),
        infer_fanouts=(5, 5),
        batch_size=64,
        epochs=1,
    )
    trainer = Trainer(dataset, config, executor=executor, compute=compute, seed=0)
    stats = trainer.train_epoch(0)
    params = {
        name: np.array(p.data, copy=True)
        for name, p in trainer.model.named_parameters()
    }
    grads = {
        name: None if p.grad is None else np.array(p.grad, copy=True)
        for name, p in trainer.model.named_parameters()
    }
    workspace = trainer._workspace
    trainer.shutdown()
    return list(stats.losses), grads, params, workspace


@pytest.mark.parametrize("model", ["sage", "gat", "gin", "sage-ri"])
def test_fused_pooled_epoch_byte_identical_to_legacy(dataset, model):
    losses_l, grads_l, params_l, ws_l = _run_epoch(dataset, model, "legacy", "pipelined")
    losses_f, grads_f, params_f, ws_f = _run_epoch(dataset, model, "fused", "pipelined")

    assert losses_f == losses_l  # float-exact, not approx
    assert grads_f.keys() == grads_l.keys()
    for name in grads_l:
        if grads_l[name] is None:
            assert grads_f[name] is None
        else:
            np.testing.assert_array_equal(grads_f[name], grads_l[name], err_msg=name)
    for name in params_l:
        np.testing.assert_array_equal(params_f[name], params_l[name], err_msg=name)

    # The twin really exercised the pool / really stayed off it.
    assert ws_l is None
    assert ws_f is not None and ws_f.stats["misses"] > 0
    assert ws_f.stats["buffers_out"] == 0  # everything released at step end


def test_serial_matches_pipelined_under_fused(dataset):
    losses_serial, _, params_serial, _ = _run_epoch(dataset, "sage", "fused", "serial")
    losses_pipe, _, params_pipe, _ = _run_epoch(dataset, "sage", "fused", "pipelined")
    assert losses_serial == losses_pipe
    for name in params_serial:
        np.testing.assert_array_equal(params_serial[name], params_pipe[name])
