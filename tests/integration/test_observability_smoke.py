"""Tier-1 smoke: a tiny training run emits valid observability artifacts.

Drives ``python -m repro train --trace-out --report-out`` end to end (the
CLI entry point, not internal APIs) and validates both artifacts:

- the run report passes ``check_bench_json.validate_all`` — the same
  schema contract the bench artifacts live under;
- the Chrome trace is loadable trace-event JSON with ``ph``/``ts``/
  ``dur``/``pid``/``tid`` complete events and labelled lanes;
- the registry-backed stage accounting agrees with the report rows.

Also asserts the determinism contract: enabling observability must not
perturb training (byte-identical losses for a shared seed).
"""

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from check_bench_json import validate_all  # noqa: E402

TRAIN_ARGS = [
    "train",
    "--dataset",
    "arxiv",
    "--scale",
    "0.375",
    "--epochs",
    "2",
    "--batch-size",
    "64",
    "--hidden",
    "16",
    "--executor",
    "staged",
    "--seed",
    "0",
]


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    out = tmp_path_factory.mktemp("observability")
    trace_path = out / "trace.json"
    report_path = out / "REPORT_smoke.json"
    code = main(
        TRAIN_ARGS
        + ["--trace-out", str(trace_path), "--report-out", str(report_path)]
    )
    assert code == 0
    return out, trace_path, report_path


class TestRunReportArtifact:
    def test_validates_through_the_bench_contract(self, artifacts):
        out, _, report_path = artifacts
        results = validate_all(out)
        assert results, "validate_all found no artifacts"
        assert results == {report_path.name: []}

    def test_report_contents(self, artifacts):
        _, _, report_path = artifacts
        doc = json.loads(report_path.read_text())
        assert doc["bench"] == "run_report"
        assert doc["totals"]["epochs"] == 2
        assert doc["evaluation"].keys() == {"val", "test"}
        # The overlapped executor reports the blocking-perspective stages,
        # plus the plan-build busy fraction (fused compute is the default).
        for row in doc["epochs"]:
            assert row["overlapped"] is True
            assert set(row["breakdown"]) == {
                "batch_prep",
                "transfer",
                "train",
                "prep_wait",
                "plan_build",
            }
            assert row["plan_build_s"] > 0.0
        # Registry snapshot made it into the artifact, including the
        # fused-compute instrumentation.
        names = {entry["name"] for entry in doc["metrics"]}
        assert "caller_seconds" in names
        assert "batches" in names
        assert "plan_build_seconds" in names
        assert "workspace_hits" in names or "workspace_misses" in names

    def test_registry_accounting_matches_epoch_rows(self, artifacts):
        _, _, report_path = artifacts
        doc = json.loads(report_path.read_text())
        total_train = sum(
            entry["sum"]
            for entry in doc["metrics"]
            if entry["name"] == "caller_seconds"
            and entry["labels"].get("stage") == "train"
        )
        reported = sum(row["train_s"] for row in doc["epochs"])
        assert total_train == pytest.approx(reported, rel=1e-6)


class TestChromeTraceArtifact:
    def test_trace_structure(self, artifacts):
        _, trace_path, _ = artifacts
        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        assert events, "trace should contain events"
        xs = [e for e in events if e["ph"] == "X"]
        assert xs
        for event in xs:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert "batch" in event["args"]
        lanes = [
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert lanes and lanes == sorted(
            lanes, key=lambda lane: (not lane.startswith("cpu"), lane)
        )
        stage_names = {e["name"] for e in xs}
        assert "train" in stage_names


class TestProbeArtifacts:
    """Continuous-monitoring sections ride along in both artifacts."""

    def test_report_carries_probe_series(self, artifacts):
        _, _, report_path = artifacts
        doc = json.loads(report_path.read_text())
        probes = doc["probes"]
        assert probes["interval_s"] > 0.0
        assert probes["overhead_fraction"] <= 0.02
        names = {series["name"] for series in probes["series"]}
        assert "pipeline/input_queue_depth" in names
        assert "queue_depth/sample" in names
        assert "stage_occupancy/sample" in names
        assert "pinned_pool/utilization" in names
        for series in probes["series"]:
            assert len(series["t"]) == len(series["values"]) > 0

    def test_report_carries_attribution(self, artifacts):
        _, _, report_path = artifacts
        doc = json.loads(report_path.read_text())
        attribution = doc["attribution"]
        assert attribution["verdict"] in {
            "prep-bound",
            "transfer-bound",
            "compute-bound",
        }
        assert set(attribution["shares"]) == {"prep", "transfer", "train"}
        for row in doc["epochs"]:
            assert row["verdict"] in {
                "prep-bound",
                "transfer-bound",
                "compute-bound",
            }

    def test_trace_carries_counter_tracks(self, artifacts):
        _, trace_path, _ = artifacts
        doc = json.loads(trace_path.read_text())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters, "trace should contain probe counter tracks"
        names = {e["name"] for e in counters}
        assert any(name.startswith("queue_depth/sample") for name in names)
        for event in counters:
            assert event["cat"] == "probe"
            assert "value" in event["args"]
            assert event["ts"] >= 0.0


class TestDiagnoseCli:
    def test_diagnose_renders_attribution(self, artifacts, capsys):
        _, _, report_path = artifacts
        assert main(["diagnose", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "verdict:" in out
        assert "epoch  prep%" in out

    def test_diagnose_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["diagnose", str(tmp_path / "nope.json")]) == 2
        assert capsys.readouterr().err

    def test_diagnose_rejects_non_report_json(self, tmp_path, capsys):
        path = tmp_path / "BENCH_pipeline.json"
        path.write_text(json.dumps({"bench": "pipeline", "rows": []}))
        assert main(["diagnose", str(path)]) == 2
        assert "run_report" in capsys.readouterr().err


class TestObservabilityIsNonPerturbing:
    def test_losses_identical_with_and_without_artifacts(self, tmp_path):
        from dataclasses import replace

        from repro.datasets import generate_dataset
        from repro.telemetry import Tracer
        from repro.train import Trainer, get_config

        dataset = generate_dataset("arxiv", scale=0.375, seed=0)
        config = replace(
            get_config("arxiv", "sage"), batch_size=64, hidden_channels=16
        )

        def run(tracer):
            trainer = Trainer(
                dataset,
                config,
                executor="staged",
                sampler="fast",
                seed=0,
                tracer=tracer,
            )
            losses = []
            for epoch in range(2):
                losses.extend(trainer.train_epoch(epoch).losses)
            trainer.shutdown()
            return np.asarray(losses)

        plain = run(None)
        traced = run(Tracer(enabled=True))
        np.testing.assert_array_equal(plain, traced)
