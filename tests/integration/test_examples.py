"""Smoke tests: the quick runnable examples must execute end-to-end.

(The two long-running studies — inference_fanout_study and
multi_gpu_scaling — are exercised indirectly by the benchmark suite, which
covers the same code paths at controlled sizes.)
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

QUICK_EXAMPLES = [
    "quickstart.py",
    "custom_dataset.py",
    "sampling_strategies.py",
    "diagnose_bottleneck.py",
]


@pytest.mark.parametrize("script", QUICK_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_reports_accuracy():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "sampled inference" in result.stdout
    assert "test=" in result.stdout
