"""Reservation-based resource semantics."""

import pytest

from repro.perfmodel import Interval, Resource


class TestResource:
    def test_single_server_serializes(self):
        r = Resource(1)
        a = r.serve(0.0, 2.0)
        b = r.serve(0.0, 3.0)
        assert (a.start, a.end) == (0.0, 2.0)
        assert (b.start, b.end) == (2.0, 5.0)

    def test_ready_time_respected(self):
        r = Resource(1)
        a = r.serve(10.0, 1.0)
        assert a.start == 10.0

    def test_multi_server_parallelism(self):
        r = Resource(3)
        ends = [r.serve(0.0, 1.0).end for _ in range(3)]
        assert ends == [1.0, 1.0, 1.0]
        # fourth job queues behind the earliest finisher
        assert r.serve(0.0, 1.0).start == 1.0

    def test_makespan_and_busy(self):
        r = Resource(2)
        r.serve(0.0, 4.0)
        r.serve(0.0, 2.0)
        assert r.makespan() == 4.0
        assert r.busy_time == 6.0
        assert r.utilization(4.0) == pytest.approx(6.0 / 8.0)

    def test_next_free(self):
        r = Resource(2)
        r.serve(0.0, 5.0)
        assert r.next_free() == 0.0
        r.serve(0.0, 3.0)
        assert r.next_free() == 3.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Resource(1).serve(0.0, -1.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Resource(0)

    def test_interval_duration(self):
        assert Interval(1.0, 3.5).duration == 2.5
