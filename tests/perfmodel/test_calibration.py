"""Calibration: the simulated pipelines must reproduce Tables 1-3's shape.

Tolerances are deliberately loose (the goal is the paper's *shape*:
orderings, ratios, crossovers), but every headline quantity is pinned:

- Table 1: baseline breakdown within 35% per cell; GPU-train fraction ~28%.
- Table 2: PyG-vs-SALIENT sampler ratio ~2.5x; thread scaling sublinear.
- Table 3: each added optimization strictly reduces epoch time.
- Figure 4: single-GPU speedups land in the paper's ~2.4-3.5x band.
"""

import pytest

from repro.perfmodel import (
    ABLATION_STEPS,
    CONFIG_PYG,
    CONFIG_SALIENT,
    SALIENT_SAMPLER_SPEEDUP,
    TABLE1_REFERENCE,
    TABLE3_REFERENCE,
    simulate_epoch,
)

DATASETS = ["arxiv", "products", "papers"]


def rel_err(sim: float, ref: float) -> float:
    return abs(sim - ref) / ref


class TestTable1:
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_baseline_breakdown_close(self, dataset):
        b = simulate_epoch(dataset, CONFIG_PYG)
        ref = TABLE1_REFERENCE[dataset]
        assert rel_err(b.epoch_time, ref["epoch"]) < 0.35
        assert rel_err(b.prep_blocking, ref["prep"]) < 0.35
        assert rel_err(b.transfer_blocking, ref["transfer"]) < 0.35
        assert rel_err(b.train_time, ref["train"]) < 0.15

    @pytest.mark.parametrize("dataset", DATASETS)
    def test_gpu_is_minor_fraction_of_baseline(self, dataset):
        """The paper's headline: only ~28% of baseline time is GPU training."""
        b = simulate_epoch(dataset, CONFIG_PYG)
        assert 0.15 < b.fractions()["train"] < 0.45

    def test_prep_dominates_arxiv_products(self):
        for dataset in ("arxiv", "products"):
            b = simulate_epoch(dataset, CONFIG_PYG)
            fractions = b.fractions()
            assert fractions["prep"] > fractions["train"]


class TestTable2Shape:
    def test_sampler_speedup_constant_matches_table2(self):
        assert SALIENT_SAMPLER_SPEEDUP == pytest.approx(71.1 / 28.3)

    def test_more_workers_faster_prep(self):
        from dataclasses import replace

        times = []
        for workers in (1, 10, 20):
            cfg = replace(CONFIG_SALIENT, num_workers=workers)
            times.append(simulate_epoch("products", cfg).prep_wall)
        assert times[0] > times[1] > times[2]

    def test_thread_scaling_sublinear(self):
        from dataclasses import replace

        t1 = simulate_epoch(
            "products", replace(CONFIG_SALIENT, num_workers=1)
        ).prep_wall
        t20 = simulate_epoch(
            "products", replace(CONFIG_SALIENT, num_workers=20)
        ).prep_wall
        assert 5.0 < t1 / t20 < 20.0  # real speedup, below perfect


class TestTable3:
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_each_optimization_strictly_helps(self, dataset):
        times = [simulate_epoch(dataset, c).epoch_time for c in ABLATION_STEPS]
        assert all(a > b for a, b in zip(times, times[1:])), times

    @pytest.mark.parametrize("dataset", DATASETS)
    def test_endpoints_near_reference(self, dataset):
        times = [simulate_epoch(dataset, c).epoch_time for c in ABLATION_STEPS]
        ref = TABLE3_REFERENCE[dataset]
        assert rel_err(times[0], ref[0]) < 0.35
        assert rel_err(times[-1], ref[-1]) < 0.45


class TestFigure4:
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_speedup_band(self, dataset):
        base = simulate_epoch(dataset, CONFIG_PYG).epoch_time
        opt = simulate_epoch(dataset, CONFIG_SALIENT).epoch_time
        assert 2.2 < base / opt < 4.0  # paper: 3x-3.4x

    def test_salient_gpu_utilization_near_one_for_papers(self):
        """'per-epoch runtime nearly equal to the GPU compute time'."""
        b = simulate_epoch("papers", CONFIG_SALIENT)
        assert b.gpu_utilization > 0.9
