"""Sensitivity-analysis sweeps over the calibrated model."""

import pytest

from repro.perfmodel import (
    CONFIG_PYG,
    CONFIG_SALIENT,
    bottleneck,
    stage_totals,
    sweep_cores,
    sweep_fanout,
    sweep_feature_width,
)


class TestStageTotals:
    def test_positive_and_complete(self):
        totals = stage_totals("products")
        assert set(totals) == {"prep", "transfer", "gpu"}
        assert all(v > 0 for v in totals.values())

    def test_pipelined_epoch_approaches_slowest_stage(self):
        """Section 8: 'end-to-end training time per epoch is nearly equal
        to the time for the slowest of these components in isolation'."""
        from repro.perfmodel import simulate_epoch

        for dataset in ("products", "papers"):
            totals = stage_totals(dataset)
            slowest = max(totals.values())
            epoch = simulate_epoch(dataset, CONFIG_SALIENT).epoch_time
            assert epoch < 1.35 * slowest

    def test_gpu_total_config_independent(self):
        a = stage_totals("papers", CONFIG_SALIENT)["gpu"]
        b = stage_totals("papers", CONFIG_PYG)["gpu"]
        assert a == pytest.approx(b)


class TestBottleneck:
    def test_single_core_is_prep_bound(self):
        from dataclasses import replace

        cfg = replace(CONFIG_SALIENT, num_workers=1)
        assert bottleneck("papers", cfg) == "prep"

    def test_huge_features_are_transfer_bound(self):
        from dataclasses import replace

        from repro.perfmodel import PAPER_WORKLOADS

        workload = replace(
            PAPER_WORKLOADS["papers"],
            transfer_bytes=PAPER_WORKLOADS["papers"].transfer_bytes * 20,
        )
        assert bottleneck("papers", workload=workload) == "transfer"


class TestSweeps:
    def test_cores_monotone(self):
        rows = sweep_cores("products", [1, 4, 16])
        times = [r["epoch_s"] for r in rows]
        assert times[0] > times[1] > times[2]

    def test_feature_width_monotone_above_one(self):
        rows = sweep_feature_width("products", [1.0, 2.0, 4.0])
        times = [r["epoch_s"] for r in rows]
        assert times[0] < times[1] < times[2]

    def test_fanout_monotone(self):
        rows = sweep_fanout("arxiv", [1.0, 2.0, 3.0])
        times = [r["epoch_s"] for r in rows]
        assert times[0] < times[1] < times[2]

    def test_rows_carry_bottleneck_labels(self):
        for row in sweep_cores("papers", [2, 20]):
            assert row["bottleneck"] in {"prep", "transfer", "gpu"}
