"""Pipeline simulation: structural/monotonicity properties."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel import (
    CONFIG_PYG,
    CONFIG_SALIENT,
    PAPER_WORKLOADS,
    PipelineConfig,
    simulate_epoch,
)


class TestInvariants:
    @pytest.mark.parametrize("dataset", ["arxiv", "products", "papers"])
    @pytest.mark.parametrize("config", [CONFIG_PYG, CONFIG_SALIENT])
    def test_epoch_bounds(self, dataset, config):
        b = simulate_epoch(dataset, config)
        # epoch at least as long as pure GPU compute, at most the sum of all
        # serial work
        assert b.epoch_time >= b.train_time - 1e-9
        assert b.prep_blocking >= 0 and b.transfer_blocking >= 0
        assert 0 <= b.gpu_utilization <= 1.0

    def test_train_time_config_independent(self):
        """GPU compute is untouched by the CPU-side optimizations."""
        a = simulate_epoch("products", CONFIG_PYG)
        b = simulate_epoch("products", CONFIG_SALIENT)
        assert a.train_time == pytest.approx(b.train_time)

    def test_batch_scale_scales_epoch(self):
        small = simulate_epoch("products", CONFIG_SALIENT, batch_scale=1.0)
        large = simulate_epoch("products", CONFIG_SALIENT, batch_scale=3.0)
        assert large.epoch_time > 2.0 * small.epoch_time

    def test_num_batches_override(self):
        full = simulate_epoch("products", CONFIG_SALIENT)
        half = simulate_epoch(
            "products", CONFIG_SALIENT, num_batches=PAPER_WORKLOADS["products"].num_batches // 2
        )
        assert half.epoch_time < full.epoch_time

    def test_extra_gpu_time_extends_epoch(self):
        base = simulate_epoch("papers", CONFIG_SALIENT)
        loaded = simulate_epoch(
            "papers", CONFIG_SALIENT, extra_gpu_time_per_batch=0.05
        )
        assert loaded.epoch_time > base.epoch_time + 0.04 * 1172 * 0.9


class TestOptimizationMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(
        st.booleans(), st.booleans(), st.booleans(),
        st.sampled_from(["arxiv", "products", "papers"]),
    )
    def test_enabling_any_optimization_never_hurts(
        self, fast, shared, pipelined, dataset
    ):
        """Property: flipping any single optimization ON cannot slow the
        simulated epoch (the optimizations are independent improvements)."""
        base = PipelineConfig(
            name="x",
            fast_sampling=fast,
            shared_memory_prep=shared,
            pipelined_transfers=pipelined,
        )
        t_base = simulate_epoch(dataset, base).epoch_time
        for flag in ("fast_sampling", "shared_memory_prep", "pipelined_transfers"):
            if getattr(base, flag):
                continue
            improved = replace(base, **{flag: True})
            t_improved = simulate_epoch(dataset, improved).epoch_time
            assert t_improved <= t_base + 1e-6, (flag, dataset)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 40), st.integers(1, 40))
    def test_more_workers_never_slower(self, w1, w2):
        lo, hi = min(w1, w2), max(w1, w2)
        t_lo = simulate_epoch(
            "products", replace(CONFIG_SALIENT, num_workers=lo)
        ).epoch_time
        t_hi = simulate_epoch(
            "products", replace(CONFIG_SALIENT, num_workers=hi)
        ).epoch_time
        assert t_hi <= t_lo + 1e-9
