"""Cluster model: Figure 5 scaling shapes, Figure 6 orderings, Table 7."""

import numpy as np
import pytest

from repro.perfmodel import (
    COMPARATOR_SYSTEMS,
    CONFIG_PYG,
    MODEL_PROFILES,
    model_param_bytes,
    ring_allreduce_time,
    salient_row,
    scaling_curve,
    simulate_cluster_epoch,
    systems_table,
)

DATASETS = ["arxiv", "products", "papers"]


class TestParamCounting:
    def test_sage_param_bytes_plausible(self):
        # 3-layer SAGE at in=128 h=256 out=172: a few hundred K params, fp32
        nbytes = model_param_bytes("sage", 256)
        assert 0.5e6 < nbytes < 5e6

    def test_sage_ri_much_larger(self):
        assert model_param_bytes("sage-ri", 1024) > 5 * model_param_bytes("sage", 256)

    def test_cache_stable(self):
        assert model_param_bytes("gat", 256) == model_param_bytes("gat", 256)


class TestAllreduce:
    def test_single_rank_free(self):
        assert ring_allreduce_time(1 << 20, 1) == 0.0

    def test_intra_machine_faster_than_cross(self):
        # 2 GPUs on one machine vs 4 GPUs over two machines
        assert ring_allreduce_time(1 << 22, 2) < ring_allreduce_time(1 << 22, 4)


class TestFigure5:
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_epoch_time_monotone_decreasing(self, dataset):
        points = scaling_curve(dataset)
        times = [p.epoch_time for p in points]
        assert all(a > b for a, b in zip(times, times[1:])), times

    def test_16gpu_speedups_in_paper_band(self):
        """Paper: 4.45x to 8.05x at 16 GPUs; allow a generous band with the
        ordering preserved (bigger datasets scale better)."""
        speedups = {
            ds: scaling_curve(ds)[-1].speedup_vs_1gpu for ds in DATASETS
        }
        assert speedups["arxiv"] < speedups["products"] < speedups["papers"]
        assert 2.5 < speedups["arxiv"]
        assert speedups["papers"] < 10.0
        assert speedups["papers"] > 6.0

    def test_papers_16gpu_matches_headline(self):
        """The abstract's number: 2.0 s/epoch for papers on 16 GPUs."""
        epoch = simulate_cluster_epoch("papers", 16).epoch_time
        assert abs(epoch - 2.0) / 2.0 < 0.35

    def test_steps_shrink_with_gpus(self):
        a = simulate_cluster_epoch("products", 1)
        b = simulate_cluster_epoch("products", 16)
        assert b.steps == int(np.ceil(a.steps / 16))

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            simulate_cluster_epoch("papers", 0)


class TestFigure6:
    def test_all_models_speed_up_over_pyg(self):
        for model in MODEL_PROFILES:
            salient = simulate_cluster_epoch("papers", 16, model=model)
            pyg = simulate_cluster_epoch("papers", 16, config=CONFIG_PYG, model=model)
            assert pyg.epoch_time > salient.epoch_time, model

    def test_sage_benefits_most_sage_ri_least(self):
        """Figure 6's narrative: computation density inversely orders the
        speedup - GraphSAGE gains most, GraphSAGE-RI least."""
        speedups = {}
        for model in MODEL_PROFILES:
            salient = simulate_cluster_epoch("papers", 16, model=model)
            pyg = simulate_cluster_epoch("papers", 16, config=CONFIG_PYG, model=model)
            speedups[model] = pyg.epoch_time / salient.epoch_time
        assert speedups["sage"] == max(speedups.values())
        assert speedups["sage-ri"] == min(speedups.values())

    def test_training_times_vary_significantly(self):
        times = [
            simulate_cluster_epoch("papers", 16, model=m).epoch_time
            for m in MODEL_PROFILES
        ]
        assert max(times) > 3 * min(times)


class TestTable7:
    def test_salient_row_fastest_on_papers(self):
        row, infer = salient_row()
        papers_rows = [
            r for r in COMPARATOR_SYSTEMS if r.dataset == "ogbn-papers100M"
        ]
        assert all(row.seconds_per_epoch < r.seconds_per_epoch for r in papers_rows)
        assert infer > 0

    def test_train_and_infer_near_paper(self):
        row, infer = salient_row()
        assert abs(row.seconds_per_epoch - 2.0) / 2.0 < 0.35
        assert abs(infer - 2.4) / 2.4 < 0.45

    def test_systems_table_rows(self):
        rows = systems_table(measured_accuracy=64.58)
        assert len(rows) == len(COMPARATOR_SYSTEMS) + 1
        assert rows[-1]["acc (%)"] == 64.58

    def test_comparators_quote_sources(self):
        assert all(r.source for r in COMPARATOR_SYSTEMS)
