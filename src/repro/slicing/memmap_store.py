"""Tiered feature store: memory-mapped cold slabs + RAM-hot cache hierarchy.

The paper's batch-prep analysis (Section 3) assumes the feature matrix
fits in host RAM.  papers100M-scale workloads break that assumption, so
this module grows :class:`~repro.slicing.store.FeatureStore` into a
hierarchy behind the *same* slicing contract:

- :class:`MemmapFeatureStore` — the **cold tier**.  Features live in an
  on-disk slab (see the format below) opened read-only with
  ``np.memmap``; slicing is the identical zero-intermediate
  ``np.take(..., out=pinned, mode="clip")`` gather, with the OS page
  cache standing in for RAM residency.  Slabs may store raw float16 rows
  or uint8 per-channel affine codes (:mod:`repro.slicing.quantize`); the
  quantized path fuses dequantization into the slice so the float row
  materializes directly in the pinned slot, never as an intermediate.
- :class:`TieredFeatureStore` — the **hot tier**.  A degree-ordered node
  subset (``runtime.feature_cache.hottest_nodes``) stays pinned in RAM
  as float16 rows; everything else is gathered from the cold tier.
  Per-tier hit/miss/byte counters flow through ``MetricsRegistry`` and
  ``mmap_wait_seconds`` feeds the "storage-bound" attribution verdict.

Multiprocess prepare workers reopen the slab by its picklable
:meth:`~MemmapFeatureStore.mmap_spec` (path + encoding), travelling
through ``runtime/shm.py`` alongside the shared CSR: every worker maps
the same read-only pages — no per-worker copy, no copy-on-write growth.

Slab format (single file)::

    bytes 0..8    magic  b"RPSLAB01"
    bytes 8..16   uint64 little-endian header length H
    bytes 16..16+H  JSON header:
        {"version": 1, "num_nodes": N, "num_features": F,
         "encoding": "raw" | "uint8",
         "sections": {name: {"offset": o, "shape": [...], "dtype": "..."}}}
    sections      each 64-byte aligned; "features" (raw) or
                  "codes"/"scale"/"offset" (uint8), plus "labels".
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter
from typing import Optional

import numpy as np

from ..telemetry import MetricsRegistry
from .quantize import QuantizationParams, dequantize_rows, quantize_uint8

__all__ = [
    "SLAB_MAGIC",
    "SLAB_ALIGNMENT",
    "write_slab",
    "read_slab_header",
    "MemmapFeatureStore",
    "TieredFeatureStore",
    "open_store_from_spec",
]

SLAB_MAGIC = b"RPSLAB01"
SLAB_ALIGNMENT = 64  # cache-line alignment for every section
SLAB_VERSION = 1


def _align(offset: int) -> int:
    return (offset + SLAB_ALIGNMENT - 1) // SLAB_ALIGNMENT * SLAB_ALIGNMENT


def write_slab(
    path,
    features: np.ndarray,
    labels: Optional[np.ndarray] = None,
    encoding: str = "raw",
) -> Path:
    """Serialize a feature matrix (+labels) to an on-disk slab.

    ``encoding="raw"`` stores features as float16 (the host store's
    half-precision convention); ``encoding="uint8"`` quantizes with
    per-channel affine codes.  Labels are always raw int64.  Returns the
    written path.
    """
    path = Path(path)
    if features.ndim != 2:
        raise ValueError("features must be 2-D (nodes x channels)")
    num_nodes, num_features = features.shape
    if labels is None:
        labels = np.zeros(num_nodes, dtype=np.int64)
    labels = np.ascontiguousarray(labels, dtype=np.int64)
    if labels.shape != (num_nodes,):
        raise ValueError("labels must be 1-D with one entry per node")

    if encoding == "raw":
        sections = {"features": np.ascontiguousarray(features, dtype=np.float16)}
    elif encoding == "uint8":
        codes, params = quantize_uint8(features)
        sections = {
            "codes": codes,
            "scale": params.scale,
            "offset": params.offset,
        }
    else:
        raise ValueError(f"unknown slab encoding {encoding!r}")
    sections["labels"] = labels

    layout: dict[str, dict] = {}
    # Header length depends on the offsets, which depend on the header
    # length; iterate to a fixed point (two passes always suffice because
    # digit-count growth is bounded and offsets are 64-byte aligned).
    header_len = 0
    for _ in range(4):
        cursor = _align(len(SLAB_MAGIC) + 8 + header_len)
        layout = {}
        for name, arr in sections.items():
            cursor = _align(cursor)
            layout[name] = {
                "offset": cursor,
                "shape": list(arr.shape),
                "dtype": arr.dtype.name,
            }
            cursor += arr.nbytes
        header = {
            "version": SLAB_VERSION,
            "num_nodes": int(num_nodes),
            "num_features": int(num_features),
            "encoding": encoding,
            "sections": layout,
        }
        blob = json.dumps(header, sort_keys=True).encode("utf-8")
        if len(blob) == header_len:
            break
        header_len = len(blob)

    with open(path, "wb") as f:
        f.write(SLAB_MAGIC)
        f.write(len(blob).to_bytes(8, "little"))
        f.write(blob)
        for name, arr in sections.items():
            f.seek(layout[name]["offset"])
            f.write(np.ascontiguousarray(arr).tobytes())
    return path


def read_slab_header(path) -> dict:
    """Parse and validate a slab's JSON header."""
    with open(path, "rb") as f:
        magic = f.read(len(SLAB_MAGIC))
        if magic != SLAB_MAGIC:
            raise ValueError(f"{path}: not a feature slab (bad magic {magic!r})")
        header_len = int.from_bytes(f.read(8), "little")
        header = json.loads(f.read(header_len).decode("utf-8"))
    if header.get("version") != SLAB_VERSION:
        raise ValueError(f"{path}: unsupported slab version {header.get('version')}")
    return header


class MemmapFeatureStore:
    """Cold-tier feature store over a read-only on-disk slab.

    Implements the :class:`~repro.slicing.store.FeatureStore` slicing
    contract (``slice_features`` / ``slice_labels`` with optional ``out``,
    ``num_nodes`` / ``num_features`` / ``feature_dtype`` / ``row_bytes``)
    without ever materializing the full matrix in process memory: the
    mapping is ``mode="r"``, so pages are shared across every process
    that opens the same slab and are never copied on write.

    For quantized slabs the gather is two-phase but still intermediate-
    free on the float side: uint8 code rows land in a small persistent
    scratch, then the fused multiply/add of
    :func:`~repro.slicing.quantize.dequantize_rows` writes the
    reconstruction directly into ``out`` (the pinned slot).
    """

    def __init__(self, path, metrics: Optional[MetricsRegistry] = None) -> None:
        self.path = Path(path)
        header = read_slab_header(self.path)
        self.encoding: str = header["encoding"]
        self._num_nodes = int(header["num_nodes"])
        self._num_features = int(header["num_features"])
        sections = header["sections"]

        def _map(name: str) -> np.memmap:
            meta = sections[name]
            return np.memmap(
                self.path,
                mode="r",
                dtype=np.dtype(meta["dtype"]),
                shape=tuple(meta["shape"]),
                offset=int(meta["offset"]),
            )

        self._labels = _map("labels")
        if self.encoding == "raw":
            self._features = _map("features")
            self._codes = None
            self.params: Optional[QuantizationParams] = None
            self._dtype = self._features.dtype
        else:
            self._features = None
            self._codes = _map("codes")
            # scale/offset are tiny (two f32 per channel): copy into RAM so
            # every dequantize doesn't fault slab pages for them.
            self.params = QuantizationParams(
                scale=np.array(_map("scale")), offset=np.array(_map("offset"))
            )
            # Dequantized rows surface as float16, matching the host
            # store's half-precision convention (optimization (iii)).
            self._dtype = np.dtype(np.float16)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._code_scratch = np.empty((0, self._num_features), dtype=np.uint8)

    # -- FeatureStore contract -----------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_features(self) -> int:
        return self._num_features

    @property
    def feature_dtype(self) -> np.dtype:
        return self._dtype

    def row_bytes(self) -> int:
        return self._num_features * self._dtype.itemsize

    def stored_row_bytes(self) -> int:
        """On-disk bytes per feature row (1 for uint8 codes, 2 for f16)."""
        if self._codes is not None:
            return self._num_features * self._codes.itemsize
        return self._num_features * self._features.itemsize

    @property
    def labels(self) -> np.ndarray:
        return self._labels

    def attach_metrics(self, metrics: MetricsRegistry) -> None:
        """Late-bind the registry the gather timers report into."""
        self.metrics = metrics

    def slice_features(
        self, n_id: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gather feature rows from the mapped slab, optionally into ``out``.

        The wall-clock spent faulting/copying mapped pages accumulates in
        the ``mmap_wait_seconds`` counter — the signal behind the
        "storage-bound" diagnose verdict.
        """
        if out is not None and out.shape != (len(n_id), self._num_features):
            raise ValueError(
                f"out shape {out.shape} != ({len(n_id)}, {self._num_features})"
            )
        self._check_ids(n_id)
        start = perf_counter()
        if self._codes is None:
            if out is not None:
                np.take(self._features, n_id, axis=0, out=out, mode="clip")
            else:
                out = np.asarray(self._features[n_id])
        else:
            rows = len(n_id)
            if self._code_scratch.shape[0] < rows:
                self._code_scratch = np.empty(
                    (rows, self._num_features), dtype=np.uint8
                )
            codes = self._code_scratch[:rows]
            np.take(self._codes, n_id, axis=0, out=codes, mode="clip")
            out = dequantize_rows(codes, self.params, out=out, dtype=self._dtype)
        self.metrics.counter("mmap_wait_seconds").inc(perf_counter() - start)
        self.metrics.counter("mmap_rows_read").inc(len(n_id))
        self.metrics.counter("mmap_bytes_read").inc(
            len(n_id) * self.stored_row_bytes()
        )
        return out

    def slice_labels(
        self, n_id: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gather label entries for ``n_id`` (the batch targets)."""
        if out is not None:
            if out.shape != (len(n_id),):
                raise ValueError(f"out shape {out.shape} != ({len(n_id)},)")
            self._check_ids(n_id)
            np.take(self._labels, n_id, out=out, mode="clip")
            return out
        return np.asarray(self._labels[n_id])

    def _check_ids(self, n_id: np.ndarray) -> None:
        if len(n_id) == 0:
            return
        lo, hi = int(n_id.min()), int(n_id.max())
        if lo < 0 or hi >= self._num_nodes:
            raise IndexError(
                f"node ids [{lo}, {hi}] out of range for store of "
                f"{self._num_nodes} nodes"
            )

    # -- multiprocess attach -------------------------------------------
    def mmap_spec(self) -> dict:
        """Picklable description a worker process can reopen the slab from.

        Travels through ``runtime/shm.py``'s ``SharedDataset`` spec next
        to the shared-memory CSR; reopening maps the same read-only pages
        (shared page cache), so workers add no resident feature copies.
        """
        return {"kind": "memmap", "path": str(self.path)}

    def resident_bytes(self) -> int:
        """Process-heap bytes held by this store (scratch + quant params).

        The slab itself is file-backed and excluded — that is the point
        of the cold tier.
        """
        total = self._code_scratch.nbytes
        if self.params is not None:
            total += self.params.nbytes()
        return total


class TieredFeatureStore:
    """RAM-hot / mmap-cold feature hierarchy behind the store contract.

    ``hot_ids`` (typically ``hottest_nodes(graph, n)`` — degree-ordered,
    deterministic) are gathered once from the cold tier and pinned in RAM
    at the cold tier's dtype (float16), so a hot-tier hit returns *bytes
    identical* to the cold gather — tier choice can never change training
    results.  Slices route each row to its tier: hits copy from the RAM
    block, misses gather from the memmap, both directly into ``out``.
    """

    def __init__(
        self,
        cold: MemmapFeatureStore,
        hot_ids: np.ndarray,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.cold = cold
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        cold.attach_metrics(self.metrics)
        hot_ids = np.asarray(hot_ids, dtype=np.int64)
        if len(hot_ids) and (
            hot_ids.min() < 0 or hot_ids.max() >= cold.num_nodes
        ):
            raise ValueError("hot_ids out of range for cold store")
        # int32 row map: halves the resident index for 100M-node stores
        # (mirrors the DeviceFeatureCache satellite fix).
        if len(hot_ids) >= np.iinfo(np.int32).max:
            raise ValueError("hot tier larger than int32 row indices allow")
        self._hot_row_of = np.full(cold.num_nodes, -1, dtype=np.int32)
        self._hot_row_of[hot_ids] = np.arange(len(hot_ids), dtype=np.int32)
        self.hot_ids = hot_ids
        self.hot_rows = np.empty(
            (len(hot_ids), cold.num_features), dtype=cold.feature_dtype
        )
        if len(hot_ids):
            cold.slice_features(hot_ids, out=self.hot_rows)
        self._miss_scratch = np.empty(
            (0, cold.num_features), dtype=cold.feature_dtype
        )

    # -- FeatureStore contract -----------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.cold.num_nodes

    @property
    def num_features(self) -> int:
        return self.cold.num_features

    @property
    def feature_dtype(self) -> np.dtype:
        return self.cold.feature_dtype

    def row_bytes(self) -> int:
        return self.cold.row_bytes()

    @property
    def labels(self) -> np.ndarray:
        return self.cold.labels

    @property
    def hot_size(self) -> int:
        return len(self.hot_ids)

    def attach_metrics(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics
        self.cold.attach_metrics(metrics)

    def slice_features(
        self, n_id: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if out is None:
            out = np.empty(
                (len(n_id), self.num_features), dtype=self.feature_dtype
            )
        elif out.shape != (len(n_id), self.num_features):
            raise ValueError(
                f"out shape {out.shape} != ({len(n_id)}, {self.num_features})"
            )
        self.cold._check_ids(n_id)
        hot_rows = self._hot_row_of[n_id]
        hit = hot_rows >= 0
        hit_idx = np.flatnonzero(hit)
        miss_idx = np.flatnonzero(~hit)
        if len(miss_idx) == len(n_id):
            # All-cold fast path: gather straight into ``out``, no scatter.
            self.cold.slice_features(n_id, out=out)
        else:
            if len(hit_idx):
                out[hit_idx] = self.hot_rows[hot_rows[hit_idx]]
            if len(miss_idx):
                if self._miss_scratch.shape[0] < len(miss_idx):
                    self._miss_scratch = np.empty(
                        (len(miss_idx), self.num_features),
                        dtype=self.feature_dtype,
                    )
                scratch = self._miss_scratch[: len(miss_idx)]
                self.cold.slice_features(n_id[miss_idx], out=scratch)
                out[miss_idx] = scratch
        row_nbytes = self.row_bytes()
        self.metrics.counter("feature_tier_rows", tier="hot").inc(len(hit_idx))
        self.metrics.counter("feature_tier_rows", tier="cold").inc(len(miss_idx))
        self.metrics.counter("feature_tier_bytes", tier="hot").inc(
            len(hit_idx) * row_nbytes
        )
        self.metrics.counter("feature_tier_bytes", tier="cold").inc(
            len(miss_idx) * row_nbytes
        )
        return out

    def slice_labels(
        self, n_id: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return self.cold.slice_labels(n_id, out=out)

    # -- observability --------------------------------------------------
    def hit_rate(self) -> float:
        hot = self.metrics.value("feature_tier_rows", tier="hot")
        cold = self.metrics.value("feature_tier_rows", tier="cold")
        total = hot + cold
        return hot / total if total else 0.0

    def register_probes(self, sampler) -> None:
        """Expose tier health to a continuous-monitoring ProbeSampler."""
        sampler.add_probe("feature_tier/hot_hit_rate", self.hit_rate, unit="fraction")
        sampler.add_probe(
            "feature_tier/cold_bytes",
            lambda: self.metrics.value("feature_tier_bytes", tier="cold"),
            unit="bytes",
        )
        sampler.add_probe(
            "feature_tier/mmap_wait_s",
            lambda: self.metrics.value("mmap_wait_seconds"),
            unit="seconds",
        )

    def resident_bytes(self) -> int:
        """RAM held by the hierarchy: hot rows + row map + cold scratch."""
        return (
            self.hot_rows.nbytes
            + self._hot_row_of.nbytes
            + self._miss_scratch.nbytes
            + self.cold.resident_bytes()
        )

    def mmap_spec(self) -> dict:
        """Workers attach the cold tier only: the hot tier is a per-process
        RAM optimization with byte-identical values, so skipping it in
        workers changes nothing but avoids N copies of the hot block."""
        return self.cold.mmap_spec()


def open_store_from_spec(spec: dict, metrics: Optional[MetricsRegistry] = None):
    """Reopen a store from a picklable spec (the worker-side entry point)."""
    kind = spec.get("kind")
    if kind == "memmap":
        if not os.path.exists(spec["path"]):
            raise FileNotFoundError(f"feature slab missing: {spec['path']}")
        return MemmapFeatureStore(spec["path"], metrics=metrics)
    raise ValueError(f"unknown feature store spec kind {kind!r}")
