"""Batch slicing: turning a sampled MFG into a transfer-ready batch.

Two implementations mirror the paper's comparison:

- :func:`slice_batch_reference` — the PyTorch-multiprocessing-flavored path:
  slices allocate fresh arrays which must then be *copied again* into the
  consumer's memory (the POSIX-shared-memory double copy of Section 4.2).
- :func:`slice_batch_fused` — SALIENT's path: a single serial gather writes
  straight into caller-provided (pinned) buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sampling.mfg import MFG
from ..telemetry import Counters, MetricsRegistry
from .store import FeatureStore

__all__ = [
    "SlicedBatch",
    "slice_batch_reference",
    "slice_batch_fused",
    "build_aggregation_plans",
]

#: MFG-node-count bins for the per-batch slice-size histogram
_ROW_BUCKETS = tuple(float(4 ** exp) for exp in range(2, 13))


@dataclass
class SlicedBatch:
    """A fully prepared mini-batch, ready for device transfer.

    Mirrors the ``(xs, ys, Gs)`` triple of the paper's Listing 1.
    """

    mfg: MFG
    xs: np.ndarray  # (num_input_nodes, F) features, host dtype
    ys: np.ndarray  # (batch_size,) labels
    #: buffer-pool slot index when xs lives in pinned memory (else None)
    pinned_slot: Optional[int] = None

    @property
    def batch_size(self) -> int:
        return self.mfg.batch_size

    def nbytes(self) -> int:
        """Payload volume a CPU->GPU transfer must move."""
        return self.xs.nbytes + self.ys.nbytes + self.mfg.nbytes()

    def validate(self) -> None:
        self.mfg.validate()
        if self.xs.shape[0] != self.mfg.num_input_nodes:
            raise ValueError(
                f"feature rows {self.xs.shape[0]} != MFG input nodes "
                f"{self.mfg.num_input_nodes}"
            )
        if self.ys.shape[0] != self.mfg.batch_size:
            raise ValueError("label count != batch size")


def slice_batch_reference(store: FeatureStore, mfg: MFG) -> SlicedBatch:
    """Slice with a worker-to-consumer copy (the multiprocessing analogue).

    The extra ``.copy()`` models the POSIX-shared-memory handoff that
    "effectively halves the observed memory bandwidth" (Section 4.2).
    """
    xs_worker = store.slice_features(mfg.n_id)
    ys_worker = store.slice_labels(mfg.target_ids())
    xs = xs_worker.copy()
    ys = ys_worker.copy()
    return SlicedBatch(mfg=mfg, xs=xs, ys=ys)


def slice_batch_fused(
    store: FeatureStore,
    mfg: MFG,
    xs_out: Optional[np.ndarray] = None,
    ys_out: Optional[np.ndarray] = None,
    pinned_slot: Optional[int] = None,
    counters: Optional[Counters] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> SlicedBatch:
    """Slice once, directly into destination (pinned) buffers."""
    n_id = mfg.n_id
    xs_view = xs_out[: len(n_id)] if xs_out is not None else None
    ys_view = ys_out[: mfg.batch_size] if ys_out is not None else None
    xs = store.slice_features(n_id, out=xs_view)
    ys = store.slice_labels(mfg.target_ids(), out=ys_view)
    if counters is not None:
        counters.inc("slice_fused_batches")
        counters.inc("slice_bytes_gathered", xs.nbytes + ys.nbytes)
        if pinned_slot is not None:
            counters.inc("slice_pinned_batches")
    if metrics is not None:
        metrics.histogram("slice_rows", _ROW_BUCKETS).observe(float(len(n_id)))
        metrics.counter(
            "slice_bytes", pinned="yes" if pinned_slot is not None else "no"
        ).inc(xs.nbytes + ys.nbytes)
    return SlicedBatch(mfg=mfg, xs=xs, ys=ys, pinned_slot=pinned_slot)


def build_aggregation_plans(
    mfg: MFG, metrics: Optional[MetricsRegistry] = None
) -> MFG:
    """Build every layer's :class:`~repro.tensor.plan.AggregationPlan`.

    Runs in the prepare/slice stage — i.e. on pipeline workers, overlapped
    with compute — so the per-batch argsort cost leaves the training
    critical path entirely.  Idempotent; returns ``mfg`` for chaining.
    """
    if metrics is not None:
        with metrics.timer("plan_build_seconds").time():
            mfg.build_plans()
        metrics.counter("aggregation_plans_built").inc(len(mfg.adjs))
        metrics.counter("plan_build_edges").inc(mfg.total_edges())
    else:
        mfg.build_plans()
    return mfg
