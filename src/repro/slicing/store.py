"""Host-memory feature store with the baseline's conventional optimizations.

Section 3 lists three optimizations the performance-tuned baseline already
includes, all of which this store implements:

(i)   row-major feature matrix for cache-efficient row slicing;
(ii)  transfers staged through pinned memory (see ``repro.runtime.pinned``);
(iii) half-precision (float16) storage of features in host memory, halving
      slicing and transfer volume, while compute happens in float32.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["FeatureStore"]


class FeatureStore:
    """Row-major host store for node features and labels."""

    def __init__(
        self,
        features: np.ndarray,
        labels: Optional[np.ndarray] = None,
        half_precision: Optional[bool] = True,
    ) -> None:
        """``half_precision=None`` keeps the caller's feature dtype as-is
        (required when a store wraps arrays whose exact values must be
        preserved, e.g. the inference and DDP paths).  ``labels=None``
        installs an all-zero placeholder so label-free consumers
        (inference) can still flow through the slicing/transfer stages.
        """
        if features.ndim != 2:
            raise ValueError("features must be 2-D (nodes x channels)")
        if labels is None:
            labels = np.zeros(features.shape[0], dtype=np.int64)
        if labels.shape != (features.shape[0],):
            raise ValueError("labels must be 1-D with one entry per node")
        if half_precision is None:
            dtype = features.dtype
        else:
            dtype = np.float16 if half_precision else np.float32
        # ascontiguousarray enforces row-major layout (optimization (i)).
        self.features = np.ascontiguousarray(features, dtype=dtype)
        self.labels = np.ascontiguousarray(labels, dtype=np.int64)

    @property
    def num_nodes(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def feature_dtype(self) -> np.dtype:
        return self.features.dtype

    def row_bytes(self) -> int:
        return self.num_features * self.features.itemsize

    def slice_features(
        self, n_id: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gather feature rows for ``n_id``, optionally into ``out``.

        When ``out`` is a view into a pinned buffer, this is SALIENT's
        "slice directly into pinned memory" path (Section 4.2): one copy
        from the host store into transfer-ready memory, no intermediate.
        """
        if out is not None:
            if out.shape != (len(n_id), self.num_features):
                raise ValueError(
                    f"out shape {out.shape} != ({len(n_id)}, {self.num_features})"
                )
            # mode="raise" (the default) materializes a hidden full-size
            # temporary before writing to ``out``; an explicit bounds check
            # followed by mode="clip" keeps the gather truly zero-copy.
            self._check_ids(n_id)
            np.take(self.features, n_id, axis=0, out=out, mode="clip")
            return out
        return self.features[n_id]

    def slice_labels(
        self, n_id: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gather label entries for ``n_id`` (the batch targets)."""
        if out is not None:
            if out.shape != (len(n_id),):
                raise ValueError(f"out shape {out.shape} != ({len(n_id)},)")
            self._check_ids(n_id)
            np.take(self.labels, n_id, out=out, mode="clip")
            return out
        return self.labels[n_id]

    def _check_ids(self, n_id: np.ndarray) -> None:
        if len(n_id) == 0:
            return
        lo, hi = int(n_id.min()), int(n_id.max())
        if lo < 0 or hi >= self.num_nodes:
            raise IndexError(
                f"node ids [{lo}, {hi}] out of range for store of "
                f"{self.num_nodes} nodes"
            )
