"""Quantized feature representations with fused dequantize-on-slice.

FastSample (PAPERS.md) argues feature compression is the key lever for
billion-scale graphs: at papers100M scale the fp16 feature slab alone
exceeds host RAM, so the cold tier stores either

- ``float16`` — the baseline's conventional optimization (iii), 2 bytes
  per value, exact for our synthetic stand-ins (they are generated in
  fp16); or
- ``uint8`` per-channel affine codes — 1 byte per value plus two fp32
  parameters per *channel* (amortized to nothing per row), for a further
  2x over fp16 at a bounded reconstruction error.

The affine code for channel ``c`` is ``code = round((x - offset_c) /
scale_c)`` with ``scale_c = (max_c - min_c) / 255`` and ``offset_c =
min_c``; reconstruction is ``x_hat = code * scale_c + offset_c``, so the
worst-case per-value error is ``scale_c / 2`` — half a quantization step.

:func:`dequantize_rows` is the hot-path half: given already-gathered code
rows it reconstructs **directly into the caller's output buffer** (a
pinned staging slot on the training path) with two in-place ufunc
applications — the reconstructed row never exists anywhere but its final
destination, preserving the zero-intermediate slicing contract of
:meth:`~repro.slicing.store.FeatureStore.slice_features`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "QuantizationParams",
    "quantize_uint8",
    "dequantize_rows",
    "max_quantization_error",
]


@dataclass(frozen=True)
class QuantizationParams:
    """Per-channel affine dequantization parameters (``x = code*scale+offset``)."""

    scale: np.ndarray  # (F,) float32, > 0
    offset: np.ndarray  # (F,) float32

    def __post_init__(self) -> None:
        scale = np.ascontiguousarray(self.scale, dtype=np.float32)
        offset = np.ascontiguousarray(self.offset, dtype=np.float32)
        if scale.ndim != 1 or scale.shape != offset.shape:
            raise ValueError("scale/offset must be matching 1-D channel vectors")
        if not np.all(scale > 0):
            raise ValueError("scale entries must be positive")
        object.__setattr__(self, "scale", scale)
        object.__setattr__(self, "offset", offset)

    @property
    def num_channels(self) -> int:
        return self.scale.shape[0]

    def nbytes(self) -> int:
        return self.scale.nbytes + self.offset.nbytes


def quantize_uint8(
    features: np.ndarray,
) -> tuple[np.ndarray, QuantizationParams]:
    """Per-channel affine uint8 quantization of a (N, F) feature matrix.

    Channel statistics are computed in float32 regardless of the input
    dtype (fp16 min/max would already be exact, but the scale division is
    not). Constant channels get ``scale = 1`` so dequantization reproduces
    them exactly (every code is 0).
    """
    if features.ndim != 2:
        raise ValueError("features must be 2-D (nodes x channels)")
    x = np.asarray(features, dtype=np.float32)
    lo = x.min(axis=0) if len(x) else np.zeros(x.shape[1], np.float32)
    hi = x.max(axis=0) if len(x) else np.zeros(x.shape[1], np.float32)
    scale = (hi - lo) / 255.0
    scale[scale <= 0] = 1.0
    params = QuantizationParams(scale=scale, offset=lo)
    codes = np.rint((x - params.offset) / params.scale)
    np.clip(codes, 0.0, 255.0, out=codes)
    return codes.astype(np.uint8), params


def dequantize_rows(
    codes: np.ndarray,
    params: QuantizationParams,
    out: Optional[np.ndarray] = None,
    dtype=np.float16,
) -> np.ndarray:
    """Reconstruct feature rows from uint8 codes, fused into ``out``.

    ``out`` may be float16 or float32 (e.g. a pinned-slot view); the two
    in-place ufuncs write the reconstruction straight into it — no
    intermediate float array is ever materialized. With ``out=None`` a
    fresh ``dtype`` array is allocated (the cold-start path).
    """
    if codes.ndim != 2 or codes.shape[1] != params.num_channels:
        raise ValueError(
            f"codes shape {codes.shape} does not match "
            f"{params.num_channels} channels"
        )
    if out is None:
        out = np.empty(codes.shape, dtype=np.dtype(dtype))
    elif out.shape != codes.shape:
        raise ValueError(f"out shape {out.shape} != codes shape {codes.shape}")
    # uint8 * f32 broadcasts to f32; the cast into a float16 ``out`` is
    # same-kind, so both target dtypes take the fused two-ufunc path.
    np.multiply(codes, params.scale, out=out)
    np.add(out, params.offset, out=out)
    return out


def max_quantization_error(params: QuantizationParams) -> float:
    """Worst-case absolute reconstruction error: half the largest step."""
    return float(params.scale.max()) / 2.0
