"""Feature/label slicing and the host-memory feature store."""

from .slicer import SlicedBatch, slice_batch_fused, slice_batch_reference
from .store import FeatureStore

__all__ = [
    "FeatureStore",
    "SlicedBatch",
    "slice_batch_reference",
    "slice_batch_fused",
]
