"""Feature/label slicing and the host-memory / tiered feature stores."""

from .memmap_store import (
    MemmapFeatureStore,
    TieredFeatureStore,
    open_store_from_spec,
    write_slab,
)
from .quantize import QuantizationParams, dequantize_rows, quantize_uint8
from .slicer import SlicedBatch, slice_batch_fused, slice_batch_reference
from .store import FeatureStore

__all__ = [
    "FeatureStore",
    "MemmapFeatureStore",
    "TieredFeatureStore",
    "open_store_from_spec",
    "write_slab",
    "QuantizationParams",
    "quantize_uint8",
    "dequantize_rows",
    "SlicedBatch",
    "slice_batch_reference",
    "slice_batch_fused",
]
