"""What-if sensitivity analysis (the paper's Section 8 limits discussion).

"The limiting factor for batch preparation is the number of CPU cores or
the DRAM bandwidth; for data transfer it is the peak CPU-to-GPU memory
bandwidth. As feature vector size increases, or with higher fanout, memory
bandwidth may become insufficient."

These sweeps quantify exactly that on the calibrated model: vary the core
count, the feature width (∝ slicing + transfer volume), or the fanout
(∝ everything), and report which pipeline stage limits the fully
pipelined SALIENT epoch.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from .calibrate import PAPER_MACHINE, PAPER_WORKLOADS, BatchWorkload, MachineSpec
from .pipelines import CONFIG_SALIENT, PipelineConfig, simulate_epoch

__all__ = ["stage_totals", "bottleneck", "sweep_cores", "sweep_feature_width", "sweep_fanout"]


def stage_totals(
    dataset: str,
    config: PipelineConfig = CONFIG_SALIENT,
    machine: MachineSpec = PAPER_MACHINE,
    workload: BatchWorkload | None = None,
    batch_scale: float = 1.0,
) -> dict[str, float]:
    """Isolated per-stage epoch totals: what each stage would take alone.

    Under perfect pipelining the epoch approaches the max of these — the
    paper's 'end-to-end time nearly equal to the slowest component in
    isolation' (Section 8).
    """
    workload = workload or PAPER_WORKLOADS[dataset]
    from .calibrate import SALIENT_SAMPLER_SPEEDUP

    nb = workload.num_batches
    sample = workload.sample_work * batch_scale
    if config.fast_sampling:
        sample /= SALIENT_SAMPLER_SPEEDUP
    slice_work = workload.slice_work * batch_scale
    prep_interval = (
        (sample + slice_work) / config.num_workers + machine.salient_prep_overhead
        if config.shared_memory_prep
        else sample / config.num_workers
        + machine.ipc_base
        + workload.transfer_bytes * batch_scale / machine.ipc_bw
    )
    dma_eff = (
        machine.salient_dma_efficiency
        if config.pipelined_transfers
        else machine.baseline_dma_efficiency
    )
    return {
        "prep": nb * prep_interval,
        "transfer": nb * workload.transfer_bytes * batch_scale / (machine.dma_peak_bw * dma_eff),
        "gpu": nb * workload.gpu_time * batch_scale,
    }


def bottleneck(
    dataset: str,
    config: PipelineConfig = CONFIG_SALIENT,
    machine: MachineSpec = PAPER_MACHINE,
    workload: BatchWorkload | None = None,
    batch_scale: float = 1.0,
) -> str:
    """Which stage limits the pipelined epoch ('prep'|'transfer'|'gpu')."""
    totals = stage_totals(dataset, config, machine, workload, batch_scale)
    return max(totals, key=totals.get)


def sweep_cores(
    dataset: str, core_counts: Sequence[int], config: PipelineConfig = CONFIG_SALIENT
) -> list[dict]:
    """Epoch time and limiting stage as the worker-core count varies."""
    rows = []
    for cores in core_counts:
        cfg = replace(config, num_workers=cores)
        breakdown = simulate_epoch(dataset, cfg)
        rows.append(
            {
                "cores": cores,
                "epoch_s": round(breakdown.epoch_time, 2),
                "bottleneck": bottleneck(dataset, cfg),
                "gpu_util": round(breakdown.gpu_utilization, 2),
            }
        )
    return rows


def sweep_feature_width(
    dataset: str,
    multipliers: Sequence[float],
    config: PipelineConfig = CONFIG_SALIENT,
) -> list[dict]:
    """Scale the feature width: slicing work and transfer volume follow."""
    base = PAPER_WORKLOADS[dataset]
    rows = []
    for mult in multipliers:
        workload = replace(
            base,
            slice_work=base.slice_work * mult,
            transfer_bytes=base.transfer_bytes * mult,
            gpu_time=base.gpu_time * (0.5 + 0.5 * mult),  # half the FLOPs scale
        )
        breakdown = simulate_epoch(dataset, config, workload=workload)
        rows.append(
            {
                "feature_width_x": mult,
                "epoch_s": round(breakdown.epoch_time, 2),
                "bottleneck": bottleneck(dataset, config, workload=workload),
                "gpu_util": round(breakdown.gpu_utilization, 2),
            }
        )
    return rows


def sweep_fanout(
    dataset: str,
    scales: Sequence[float],
    config: PipelineConfig = CONFIG_SALIENT,
) -> list[dict]:
    """Scale the MFG size (the fanout proxy): every stage grows with it."""
    rows = []
    for scale in scales:
        breakdown = simulate_epoch(dataset, config, batch_scale=scale)
        rows.append(
            {
                "mfg_scale": scale,
                "epoch_s": round(breakdown.epoch_time, 2),
                "bottleneck": bottleneck(dataset, config, batch_scale=scale),
                "gpu_util": round(breakdown.gpu_utilization, 2),
            }
        )
    return rows
