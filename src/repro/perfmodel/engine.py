"""Discrete-event scheduling primitives for the performance model.

The pipeline simulations reserve time on shared resources (CPU worker
pools, the DMA engine, the GPU, the NIC). Because every stage submits work
in ready-time order, a reservation-based formulation is sufficient and
exactly equivalent to an event-queue FIFO simulation: each
:class:`Resource` keeps a heap of server-free times and greedily assigns
the earliest available server.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["Resource", "Interval"]


@dataclass(frozen=True)
class Interval:
    """A scheduled busy span on some resource."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Resource:
    """FIFO multi-server resource (capacity C, greedy earliest-server).

    ``serve(ready, duration)`` books the next free server at
    ``max(ready, server_free)``; requests must be issued in non-decreasing
    order of their *logical* submission (the natural order in which the
    pipeline generates work), which all simulations here respect.
    """

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._free: list[float] = [0.0] * capacity
        heapq.heapify(self._free)
        self.busy_time = 0.0
        self.jobs = 0

    def serve(self, ready: float, duration: float) -> Interval:
        """Reserve ``duration`` seconds at or after ``ready``."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        earliest = heapq.heappop(self._free)
        start = max(earliest, ready)
        end = start + duration
        heapq.heappush(self._free, end)
        self.busy_time += duration
        self.jobs += 1
        return Interval(start, end)

    def next_free(self) -> float:
        """Earliest time any server becomes free."""
        return self._free[0]

    def makespan(self) -> float:
        """Latest booked completion across servers."""
        return max(self._free)

    def utilization(self, horizon: float) -> float:
        if horizon <= 0:
            return 0.0
        return self.busy_time / (horizon * self.capacity)
