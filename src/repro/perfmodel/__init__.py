"""Calibrated discrete-event performance model of the paper's testbed.

Reproduces the hardware-scale results (Tables 1-3 & 7, Figures 4-5, and
Figure 6's timing component) that cannot be measured on this machine. See
``calibrate.py`` for the provenance of every constant.
"""

from .calibrate import (
    PAPER_MACHINE,
    PAPER_WORKLOADS,
    SALIENT_SAMPLER_SPEEDUP,
    TABLE1_REFERENCE,
    TABLE2_REFERENCE,
    TABLE3_REFERENCE,
    BatchWorkload,
    MachineSpec,
)
from .cluster import (
    MODEL_PROFILES,
    ModelProfile,
    model_param_bytes,
    ring_allreduce_time,
    scaling_curve,
    simulate_cluster_epoch,
)
from .engine import Interval, Resource
from .pipelines import (
    ABLATION_STEPS,
    CONFIG_PYG,
    CONFIG_SALIENT,
    EpochBreakdown,
    PipelineConfig,
    simulate_epoch,
)
from .sensitivity import (
    bottleneck,
    stage_totals,
    sweep_cores,
    sweep_fanout,
    sweep_feature_width,
)
from .systems import COMPARATOR_SYSTEMS, SystemRow, salient_row, systems_table

__all__ = [
    "MachineSpec",
    "BatchWorkload",
    "PAPER_MACHINE",
    "PAPER_WORKLOADS",
    "SALIENT_SAMPLER_SPEEDUP",
    "TABLE1_REFERENCE",
    "TABLE2_REFERENCE",
    "TABLE3_REFERENCE",
    "Resource",
    "Interval",
    "PipelineConfig",
    "EpochBreakdown",
    "simulate_epoch",
    "ABLATION_STEPS",
    "CONFIG_PYG",
    "CONFIG_SALIENT",
    "simulate_cluster_epoch",
    "scaling_curve",
    "ring_allreduce_time",
    "model_param_bytes",
    "MODEL_PROFILES",
    "ModelProfile",
    "SystemRow",
    "COMPARATOR_SYSTEMS",
    "salient_row",
    "systems_table",
    "stage_totals",
    "bottleneck",
    "sweep_cores",
    "sweep_feature_width",
    "sweep_fanout",
]
