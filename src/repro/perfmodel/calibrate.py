"""Paper-calibrated workload and machine constants.

Hardware-scale experiments (Tables 1-3, Figures 4-5, Table 7) ran on
2x20-core Xeon Gold 6248 + V100 machines we do not have; the performance
model replays their pipelines with per-batch costs *derived from the
paper's own measurements*. Every constant below cites its source.

Derivations (per-batch = per-epoch figure / number of batches):

- Batches per epoch = ceil(train-set size / 1024) (Table 4 / Table 5):
  arxiv 89, products 193, papers 1172.
- products single-thread sampling 71.1 s and slicing 7.6 s per epoch come
  straight from Table 2 (P=1), i.e. 368 ms and 39 ms per batch. SALIENT's
  sampler does the same work in 28.3 s (2.51x less).
- Parallel scaling follows the Amdahl fit of Table 2:
  T(P) = serial_work / P + per_epoch_overhead, giving per-epoch overheads
  of ~4.3 s (PyG multiprocessing) and ~0.5 s (SALIENT threads) for
  sampling on products, and ~0.9 s / ~0.1 s for slicing. Overheads are
  charged per batch (they represent IPC, serialization and dispatch).
- papers transfers 164 GB per epoch (Section 3.3) -> 140 MB per batch;
  the 12.3 GB/s DMA peak and 75% baseline / 99% SALIENT efficiencies are
  quoted in Sections 3.3 and 4.3. Other datasets' transfer volumes follow
  from their Table 1 transfer times at 75% of peak.
- GPU compute per batch follows from Table 1's train column.
- arxiv/papers sampling and slicing work are scaled from the products
  measurements by their relative per-batch transfer volume (a proxy for
  MFG size), then nudged so the simulated baseline reproduces Table 1
  within ~10% (values checked by tests/perfmodel/test_calibration.py).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MachineSpec",
    "BatchWorkload",
    "PAPER_MACHINE",
    "PAPER_WORKLOADS",
    "TABLE1_REFERENCE",
    "TABLE2_REFERENCE",
    "TABLE3_REFERENCE",
]


@dataclass(frozen=True)
class MachineSpec:
    """One cluster node of the paper's testbed (Section 6)."""

    cores: int = 20  # usable cores per GPU in the Section 3 study
    dma_peak_bw: float = 12.3e9  # bytes/s, Section 3.3
    baseline_dma_efficiency: float = 0.75  # Section 3.3
    salient_dma_efficiency: float = 0.99  # Section 4.3
    nic_bw: float = 1.25e9  # 10 GigE (Section 6), bytes/s
    nic_latency: float = 100e-6  # per ring step
    gpus_per_machine: int = 2
    # Per-batch serial overheads from the Table 2 Amdahl fit
    # (T(P) = W/P + c). Multiprocessing workers pay a fixed dispatch cost
    # plus IPC serialization proportional to the batch payload; SALIENT's
    # threads pay only a small dispatch cost.
    ipc_base: float = 5e-4  # s/batch, worker-process dispatch
    ipc_bw: float = 6.1e9  # bytes/s, sampled-batch serialization to main
    salient_prep_overhead: float = 1.7e-3  # s/batch (Table 2 fit)
    pyg_slice_overhead: float = 2e-3  # s/batch (OpenMP dispatch)
    epoch_startup: float = 0.05  # s, pipeline fill / first-batch latency


@dataclass(frozen=True)
class BatchWorkload:
    """Per-mini-batch resource demands for one dataset (paper scale)."""

    dataset: str
    num_batches: int
    sample_work: float  # single-core seconds, PyG sampler
    slice_work: float  # single-core seconds
    transfer_bytes: float  # bytes moved CPU->GPU per batch
    gpu_time: float  # seconds of GPU compute per batch
    # inference-mode variants (fanout (20,20,20), whole labeled set)
    infer_batches: int = 0
    infer_scale: float = 1.0  # MFG size multiplier vs training fanouts


PAPER_MACHINE = MachineSpec()

#: Transfer volumes: papers = 164 GB / 1172 (Section 3.3); others from
#: Table 1 transfer seconds x 9.2 GB/s effective: arxiv 0.3 s -> 2.8 GB,
#: products 2.2 s -> 20.2 GB per epoch.
PAPER_WORKLOADS: dict[str, BatchWorkload] = {
    "arxiv": BatchWorkload(
        dataset="arxiv",
        num_batches=89,
        sample_work=0.22,  # fitted to Table 1 / Table 3 (see module docstring)
        slice_work=0.012,
        transfer_bytes=2.8e9 / 89,
        gpu_time=0.5 / 89,
        infer_batches=47,  # 48K test nodes / 1024
        infer_scale=9.0,  # MFG expansion (20+400+8000)/(15+150+750) ~ 9.2
    ),
    "products": BatchWorkload(
        dataset="products",
        num_batches=193,
        # Table 2 (P=1) gives 71.1 s / 193 = 0.368; the end-to-end Table 1
        # fit prefers 0.42 (the microbenchmark excludes some per-epoch
        # work); we split the difference toward the end-to-end numbers.
        sample_work=0.42,
        slice_work=7.6 / 193,  # Table 2, P=1
        transfer_bytes=20.2e9 / 193,
        gpu_time=2.4 / 193,
        infer_batches=2149,  # 2.2M test nodes / 1024
        infer_scale=9.0,
    ),
    "papers": BatchWorkload(
        dataset="papers",
        num_batches=1172,
        sample_work=0.37,  # fitted to Table 1 prep = 18.6 s blocking
        slice_work=0.056,
        transfer_bytes=164e9 / 1172,  # Section 3.3
        gpu_time=13.9 / 1172,
        infer_batches=210,  # 214K test nodes / 1024
        infer_scale=9.0,
    ),
}

#: SALIENT's sampler speedup over PyG's (Table 2: 71.1 s -> 28.3 s).
SALIENT_SAMPLER_SPEEDUP = 71.1 / 28.3

#: Table 1 ground truth (seconds) for calibration tests.
TABLE1_REFERENCE = {
    "arxiv": {"epoch": 1.7, "prep": 1.0, "transfer": 0.3, "train": 0.5},
    "products": {"epoch": 8.6, "prep": 4.0, "transfer": 2.2, "train": 2.4},
    "papers": {"epoch": 50.4, "prep": 18.6, "transfer": 17.9, "train": 13.9},
}

#: Table 2 ground truth (products batch-prep seconds by thread count).
TABLE2_REFERENCE = {
    "pyg": {1: {"sampling": 71.1, "slicing": 7.6, "both": 72.7},
            10: {"sampling": 11.4, "slicing": 1.6, "both": 11.5},
            20: {"sampling": 7.2, "slicing": 1.2, "both": 7.3}},
    "salient": {1: {"sampling": 28.3, "slicing": 7.3, "both": 35.6},
                10: {"sampling": 3.3, "slicing": 0.8, "both": 4.1},
                20: {"sampling": 1.9, "slicing": 0.6, "both": 2.5}},
}

#: Table 3 ground truth (per-epoch seconds by optimization level).
TABLE3_REFERENCE = {
    "arxiv": [1.7, 0.7, 0.6, 0.5],
    "products": [8.6, 5.3, 4.2, 2.8],
    "papers": [50.4, 34.6, 27.8, 16.5],
}
