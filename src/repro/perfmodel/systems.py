"""Cross-system comparison (Table 7).

Table 7 in the paper is a survey: each row quotes the *reported* per-epoch
time of a representative GNN training system on the largest graph that
system's publication used, with footnotes explaining how each number was
estimated from the original papers. We reproduce it the same way — the
comparator rows are documented constants quoting the same sources — while
the SALIENT row is *generated* by this repository's performance model
(training and inference epochs on the papers-scale workload, 16 GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .calibrate import PAPER_WORKLOADS
from .cluster import simulate_cluster_epoch
from .pipelines import CONFIG_SALIENT, PipelineConfig, simulate_epoch

__all__ = ["SystemRow", "COMPARATOR_SYSTEMS", "salient_row", "systems_table"]


@dataclass(frozen=True)
class SystemRow:
    """One row of Table 7."""

    system: str
    framework: str
    batching: str
    gnn: str
    machines: str
    dataset: str
    seconds_per_epoch: float
    accuracy: Optional[float] = None
    source: str = ""


#: Reported numbers, quoted with the paper's own footnoted derivations.
COMPARATOR_SYSTEMS: list[SystemRow] = [
    SystemRow(
        system="NeuGraph",
        framework="TensorFlow",
        batching="full-batch",
        gnn="GCN, L=2",
        machines="1x (28 cores, 8 P100)",
        dataset="amazon (8.6M nodes)",
        seconds_per_epoch=0.655,
        source="Ma et al. 2019, Table 2 / Fig 17 (paper footnote a)",
    ),
    SystemRow(
        system="Roc",
        framework="FlexFlow/Lux",
        batching="full-batch",
        gnn="GCN",
        machines="4x (20 cores, 4 P100)",
        dataset="amazon (9.4M nodes)",
        seconds_per_epoch=0.526,
        source="Jia et al. 2020, Fig 5 (paper footnote b)",
    ),
    SystemRow(
        system="DistDGL",
        framework="PyTorch/DGL/METIS",
        batching="mini-batch 2000, (15,10,5)",
        gnn="GraphSAGE, L=3, h=256",
        machines="16x EC2 (96 vCPU)",
        dataset="ogbn-papers100M",
        seconds_per_epoch=13.0,
        source="Zheng et al. 2020, Fig 8 (paper footnote c)",
    ),
    SystemRow(
        system="DeepGalois",
        framework="Galois/GuSP/Gluon",
        batching="full-batch",
        gnn="GraphSAGE, L=2, h=16",
        machines="32x (48 cores)",
        dataset="ogbn-papers100M",
        seconds_per_epoch=70.0,
        source="Hoang et al. 2021, Fig 4 (paper footnote d)",
    ),
    SystemRow(
        system="Zero-Copy",
        framework="PyTorch/DGL",
        batching="mini-batch",
        gnn="GraphSAGE",
        machines="1x (24 cores, 2 RTX3090)",
        dataset="ogbn-papers100M",
        seconds_per_epoch=648.0,
        source="Min et al. 2021, Fig 11 (paper footnote e)",
    ),
    SystemRow(
        system="GNS",
        framework="PyTorch/DGL",
        batching="mini-batch 1000, (cache,15,10)",
        gnn="GraphSAGE, L=3, h=256",
        machines="1x EC2 (32 cores, 1 T4)",
        dataset="ogbn-papers100M",
        seconds_per_epoch=98.5,
        accuracy=63.31,
        source="Dong et al. 2021, Table 3 (paper footnote f)",
    ),
]


def salient_row(
    num_gpus: int = 16,
    config: PipelineConfig = CONFIG_SALIENT,
    measured_accuracy: Optional[float] = None,
) -> tuple[SystemRow, float]:
    """SALIENT's Table 7 row from the performance model.

    Returns ``(row, inference_seconds)``; the paper reports 2.0 s training
    and 2.4 s inference per epoch at 64.58% accuracy.
    """
    train = simulate_cluster_epoch("papers", num_gpus, config=config)
    workload = PAPER_WORKLOADS["papers"]
    # Inference epoch: fanout (20,20,20) over the test set, forward-only
    # (about a third of the training step's GPU work: no backward pass).
    infer = simulate_epoch(
        "papers",
        config,
        workload=workload,
        num_batches=max(workload.infer_batches // num_gpus, 1),
        batch_scale=workload.infer_scale,
        extra_gpu_time_per_batch=-workload.gpu_time * workload.infer_scale * 2.0 / 3.0,
    )
    row = SystemRow(
        system="SALIENT (this repro)",
        framework="PyTorch/PyG/DDP",
        batching="mini-batch 1024, (15,10,5)",
        gnn="GraphSAGE, L=3, h=256",
        machines="8x (2x20 cores, 2 V100)",
        dataset="ogbn-papers100M",
        seconds_per_epoch=train.epoch_time,
        accuracy=measured_accuracy,
        source="simulated by repro.perfmodel",
    )
    return row, infer.epoch_time


def systems_table(measured_accuracy: Optional[float] = None) -> list[dict]:
    """All Table 7 rows as dicts ready for rendering."""
    rows = [
        {
            "system": r.system,
            "framework": r.framework,
            "batching": r.batching,
            "dataset": r.dataset,
            "s/epoch": round(r.seconds_per_epoch, 2),
            "acc (%)": r.accuracy if r.accuracy is not None else "N/A",
        }
        for r in COMPARATOR_SYSTEMS
    ]
    salient, infer_s = salient_row(measured_accuracy=measured_accuracy)
    rows.append(
        {
            "system": salient.system,
            "framework": salient.framework,
            "batching": salient.batching,
            "dataset": salient.dataset,
            "s/epoch": f"train {salient.seconds_per_epoch:.1f} / infer {infer_s:.1f}",
            "acc (%)": measured_accuracy if measured_accuracy is not None else "N/A",
        }
    )
    return rows
