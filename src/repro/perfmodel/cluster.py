"""Multi-GPU / multi-machine scaling model (Figure 5, Figure 6, Table 7).

Models the paper's distributed setup: up to 8 machines x 2 V100s, PyTorch
DDP with NCCL over 10 GigE. Per training step, every rank runs the
single-GPU SALIENT pipeline on its shard (the effective global batch grows
with the GPU count, so steps per epoch shrink), then all ranks synchronize
gradients with a ring all-reduce. Epoch time is therefore

    startup + steps * (pipeline step time) + allreduce serialization,

which reproduces Figure 5's two qualitative findings: near-linear scaling
for large datasets (compute per step dwarfs communication and the startup
amortizes), and weaker scaling for small ones.

Model parameter counts come from instantiating this repository's actual
architectures at the paper's widths (Table 5) and counting parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np

from ..models.architectures import build_model
from .calibrate import PAPER_MACHINE, PAPER_WORKLOADS, BatchWorkload, MachineSpec
from .pipelines import CONFIG_PYG, CONFIG_SALIENT, PipelineConfig, simulate_epoch

#: Coefficient of variation of per-rank step times (MFG size variance).
_STRAGGLER_CV = 0.12

__all__ = [
    "model_param_bytes",
    "ring_allreduce_time",
    "simulate_cluster_epoch",
    "scaling_curve",
    "MODEL_PROFILES",
    "ModelProfile",
]

#: Paper-scale dims for parameter counting (Table 4/5).
_PAPER_DIMS = {"in": 128, "out": 172}


@lru_cache(maxsize=None)
def model_param_bytes(model: str, hidden: int = 256) -> int:
    """Bytes of fp32 parameters at the paper's scale, from the real models."""
    instance = build_model(
        model,
        _PAPER_DIMS["in"],
        hidden,
        _PAPER_DIMS["out"],
        num_layers=3,
        rng=np.random.default_rng(0),
    )
    return int(sum(p.data.nbytes for p in instance.parameters()))


def ring_allreduce_time(
    param_bytes: int, num_ranks: int, machine: MachineSpec = PAPER_MACHINE
) -> float:
    """Ring all-reduce over the slowest link (the 10 GigE NIC).

    Ranks co-located on one machine communicate over fast local links; the
    ring's critical path is the NIC hop, crossed by 2(K-1)/K of the buffer.
    """
    if num_ranks <= 1:
        return 0.0
    machines = max(1, int(np.ceil(num_ranks / machine.gpus_per_machine)))
    if machines == 1:
        bw = machine.dma_peak_bw  # intra-machine (PCIe/NVLink-class) ring
    else:
        bw = machine.nic_bw
    volume = 2.0 * (num_ranks - 1) / num_ranks * param_bytes
    return volume / bw + 2 * (num_ranks - 1) * machine.nic_latency


@dataclass(frozen=True)
class ModelProfile:
    """Per-architecture cost multipliers for Figure 6.

    ``gpu_scale`` multiplies per-batch GPU time relative to GraphSAGE at
    hidden 256; ``mfg_scale`` multiplies MFG size (sampling/slicing/
    transfer) to reflect each row's fanout choice in Table 5.

    GPU scales follow the relative FLOP counts of the architectures at
    their Table 5 widths/fanouts: GAT adds per-edge attention work, GIN
    runs 2-layer MLPs per conv on a (20,20,20) MFG, SAGE-RI is 4x wider
    (hidden 1024).
    """

    name: str
    hidden: int
    gpu_scale: float
    mfg_scale: float


MODEL_PROFILES: dict[str, ModelProfile] = {
    "sage": ModelProfile("sage", 256, gpu_scale=1.0, mfg_scale=1.0),
    "gat": ModelProfile("gat", 256, gpu_scale=1.9, mfg_scale=1.0),
    "gin": ModelProfile("gin", 256, gpu_scale=3.4, mfg_scale=2.6),
    "sage-ri": ModelProfile("sage-ri", 1024, gpu_scale=7.5, mfg_scale=0.85),
}


@dataclass
class ClusterEpoch:
    dataset: str
    model: str
    num_gpus: int
    config: str
    epoch_time: float
    steps: int
    allreduce_per_step: float
    speedup_vs_1gpu: float = float("nan")


def simulate_cluster_epoch(
    dataset: str,
    num_gpus: int,
    config: PipelineConfig = CONFIG_SALIENT,
    model: str = "sage",
    machine: MachineSpec = PAPER_MACHINE,
    workload: Optional[BatchWorkload] = None,
) -> ClusterEpoch:
    """Simulate one distributed training epoch."""
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    workload = workload or PAPER_WORKLOADS[dataset]
    profile = MODEL_PROFILES[model]
    steps = int(np.ceil(workload.num_batches / num_gpus))
    allreduce = ring_allreduce_time(
        model_param_bytes(model, profile.hidden), num_gpus, machine
    )
    # DDP synchronizes every step on the slowest rank. Sampled MFG sizes
    # vary across ranks (CV ~ 12%); the expected max of K normals adds a
    # straggler margin growing like sqrt(2 ln K).
    straggler = 1.0
    if num_gpus > 1:
        straggler = 1.0 + _STRAGGLER_CV * float(np.sqrt(2.0 * np.log(num_gpus)))
    base_gpu = workload.gpu_time * profile.mfg_scale
    step_gpu = (workload.gpu_time * profile.gpu_scale * profile.mfg_scale + allreduce) * straggler
    breakdown = simulate_epoch(
        dataset,
        config,
        machine=machine,
        workload=workload,
        num_batches=steps,
        batch_scale=profile.mfg_scale,
        extra_gpu_time_per_batch=step_gpu - base_gpu,
    )
    # Distributed startup (process-group init, first-batch latency on every
    # machine) grows mildly with the machine count.
    machines = max(1, int(np.ceil(num_gpus / machine.gpus_per_machine)))
    startup_extra = 0.004 * (machines - 1) if num_gpus > 1 else 0.0
    return ClusterEpoch(
        dataset=dataset,
        model=model,
        num_gpus=num_gpus,
        config=config.name,
        epoch_time=breakdown.epoch_time + startup_extra,
        steps=steps,
        allreduce_per_step=allreduce,
    )


def scaling_curve(
    dataset: str,
    gpu_counts: tuple = (1, 2, 4, 8, 16),
    config: PipelineConfig = CONFIG_SALIENT,
    model: str = "sage",
) -> list[ClusterEpoch]:
    """Figure 5: epoch time vs GPU count with speedups vs 1 GPU."""
    points = [
        simulate_cluster_epoch(dataset, k, config=config, model=model)
        for k in gpu_counts
    ]
    base = points[0].epoch_time
    for point in points:
        point.speedup_vs_1gpu = base / point.epoch_time
    return points
