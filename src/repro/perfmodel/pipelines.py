"""Single-GPU pipeline simulations: PyG baseline through full SALIENT.

Replays the Figure 1 pipelines on the calibrated cost model:

- **baseline (PyG)** — DataLoader worker processes sample asynchronously;
  the main thread then slices (OpenMP-parallel), transfers (blocking, 75%
  DMA efficiency due to round-trip assertions) and trains, strictly in
  order (Listing 1).
- **+fast sampling** — sampling work drops by the Table 2 factor (2.51x).
- **+shared-memory prep** — workers prepare batches end-to-end (sampling +
  serial slicing into pinned buffers); per-batch IPC overhead drops to the
  thread level; the main thread no longer slices.
- **+pipelined transfers** — transfers run on a dedicated stream at 99%
  DMA efficiency, overlapping GPU compute.

The simulation is schedule-exact for these pipelines (FIFO resources,
deterministic costs); tests check it reproduces Tables 1-3 within
tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .calibrate import (
    PAPER_MACHINE,
    PAPER_WORKLOADS,
    SALIENT_SAMPLER_SPEEDUP,
    BatchWorkload,
    MachineSpec,
)
from .engine import Resource

__all__ = [
    "PipelineConfig",
    "EpochBreakdown",
    "simulate_epoch",
    "ABLATION_STEPS",
    "CONFIG_PYG",
    "CONFIG_SALIENT",
]


@dataclass(frozen=True)
class PipelineConfig:
    """Which SALIENT optimizations are enabled (Table 3's rows)."""

    name: str
    fast_sampling: bool = False
    shared_memory_prep: bool = False
    pipelined_transfers: bool = False
    num_workers: int = 20


CONFIG_PYG = PipelineConfig(name="PyG")
CONFIG_SALIENT = PipelineConfig(
    name="SALIENT",
    fast_sampling=True,
    shared_memory_prep=True,
    pipelined_transfers=True,
)

#: Table 3's cumulative optimization ladder.
ABLATION_STEPS: list[PipelineConfig] = [
    CONFIG_PYG,
    PipelineConfig(name="+ Fast sampling", fast_sampling=True),
    PipelineConfig(
        name="+ Shared-memory batch prep.",
        fast_sampling=True,
        shared_memory_prep=True,
    ),
    PipelineConfig(
        name="+ Pipelined data transfers",
        fast_sampling=True,
        shared_memory_prep=True,
        pipelined_transfers=True,
    ),
]


@dataclass
class EpochBreakdown:
    """Simulated epoch timings (blocking view, Table 1 convention)."""

    dataset: str
    config: str
    epoch_time: float
    prep_blocking: float
    transfer_blocking: float
    train_time: float
    prep_wall: float  # wall time until the last batch finished preparing
    gpu_utilization: float

    def fractions(self) -> dict[str, float]:
        total = max(self.epoch_time, 1e-12)
        return {
            "prep": self.prep_blocking / total,
            "transfer": self.transfer_blocking / total,
            "train": self.train_time / total,
        }


def _stage_durations(
    workload: BatchWorkload,
    machine: MachineSpec,
    config: PipelineConfig,
    batch_scale: float,
) -> dict[str, float]:
    sample = workload.sample_work * batch_scale
    if config.fast_sampling:
        sample /= SALIENT_SAMPLER_SPEEDUP
    slice_work = workload.slice_work * batch_scale
    dma_eff = (
        machine.salient_dma_efficiency
        if config.pipelined_transfers
        else machine.baseline_dma_efficiency
    )
    transfer = workload.transfer_bytes * batch_scale / (machine.dma_peak_bw * dma_eff)
    gpu = workload.gpu_time * batch_scale
    return {
        "sample": sample,
        "slice": slice_work,
        "transfer": transfer,
        "gpu": gpu,
    }


def simulate_epoch(
    dataset: str,
    config: PipelineConfig,
    machine: MachineSpec = PAPER_MACHINE,
    workload: Optional[BatchWorkload] = None,
    num_batches: Optional[int] = None,
    batch_scale: float = 1.0,
    extra_gpu_time_per_batch: float = 0.0,
) -> EpochBreakdown:
    """Simulate one training epoch on one GPU.

    Parameters
    ----------
    batch_scale:
        Scales every per-batch quantity (MFG size proxy); used for larger
        fanouts (GIN, inference) and heavier models.
    extra_gpu_time_per_batch:
        Additional per-step GPU-lane time (e.g. all-reduce in the cluster
        model).
    """
    workload = workload or PAPER_WORKLOADS[dataset]
    nb = num_batches if num_batches is not None else workload.num_batches
    durations = _stage_durations(workload, machine, config, batch_scale)
    gpu_step = durations["gpu"] + extra_gpu_time_per_batch

    dma = Resource(1, "dma")

    # --- Batch preparation (asynchronous w.r.t. the main thread) --------
    # Fluid-rate model matching the Table 2 Amdahl fit T(P) = W/P + c: the
    # per-batch *inter-completion* interval is parallel work over P plus a
    # serial per-batch overhead (IPC serialization for multiprocessing,
    # queue dispatch for threads). Completion of batch i lands at
    # (i+1) * interval: the serial component does not pipeline away.
    if config.shared_memory_prep:
        interval = (
            durations["sample"] + durations["slice"]
        ) / config.num_workers + machine.salient_prep_overhead
        main_slice = 0.0
    else:
        ipc = machine.ipc_base + workload.transfer_bytes * batch_scale / machine.ipc_bw
        interval = durations["sample"] / config.num_workers + ipc
        # Main-thread OpenMP slicing: work/P + dispatch overhead (Table 2 fit).
        main_slice = (
            durations["slice"] / config.num_workers + machine.pyg_slice_overhead
        )
    # First batch pays full per-batch latency on one worker; afterwards
    # completions arrive at the steady-state interval.
    first = durations["sample"] + (
        durations["slice"] if config.shared_memory_prep else 0.0
    )
    ready = [first + i * interval for i in range(nb)]

    # --- Main loop -------------------------------------------------------
    prep_blocking = 0.0
    transfer_blocking = 0.0
    train_time = 0.0

    if config.pipelined_transfers:
        # Transfers chase preparation on their own stream; the GPU waits
        # only on the transfer event of its next batch.
        gpu_free = machine.epoch_startup
        serialize = machine.epoch_startup  # main-thread slice serialization
        for i in range(nb):
            batch_ready = ready[i]
            if main_slice > 0.0:
                serialize = max(serialize, batch_ready) + main_slice
                prep_blocking += main_slice
                batch_ready = serialize
            tr = dma.serve(batch_ready, durations["transfer"])
            wait = max(tr.end - gpu_free, 0.0)
            transfer_blocking += wait
            start = max(gpu_free, tr.end)
            gpu_free = start + gpu_step
            train_time += gpu_step
        epoch_time = gpu_free
    else:
        main_t = machine.epoch_startup
        for i in range(nb):
            wait = max(ready[i] - main_t, 0.0)
            main_t = max(main_t, ready[i])
            if main_slice > 0.0:
                main_t += main_slice
            prep_blocking += wait + main_slice
            main_t += durations["transfer"]
            transfer_blocking += durations["transfer"]
            main_t += gpu_step
            train_time += gpu_step
        epoch_time = main_t

    prep_wall = max(ready) if ready else 0.0
    return EpochBreakdown(
        dataset=dataset,
        config=config.name,
        epoch_time=epoch_time,
        prep_blocking=prep_blocking,
        transfer_blocking=transfer_blocking,
        train_time=train_time,
        prep_wall=prep_wall,
        gpu_utilization=train_time / max(epoch_time, 1e-12),
    )
