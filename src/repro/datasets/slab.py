"""Write dataset feature slabs for the out-of-core cold tier.

The datasets layer owns slab *production* (features + labels of a
:class:`~repro.datasets.synthetic.Dataset` serialized to the on-disk
format defined in :mod:`repro.slicing.memmap_store`); the slicing layer
owns *consumption* (``MemmapFeatureStore`` / ``TieredFeatureStore``).
"""

from __future__ import annotations

from pathlib import Path

from ..slicing.memmap_store import write_slab
from .synthetic import Dataset

__all__ = ["write_dataset_slab", "dataset_slab_path"]


def dataset_slab_path(root, dataset_name: str, encoding: str = "raw") -> Path:
    """Canonical slab filename under ``root`` for a dataset + encoding."""
    return Path(root) / f"{dataset_name}.{encoding}.slab"


def write_dataset_slab(dataset: Dataset, path, encoding: str = "raw") -> Path:
    """Serialize a dataset's features and labels to a feature slab.

    ``encoding="raw"`` keeps float16 rows (exact vs the in-RAM store);
    ``encoding="uint8"`` quantizes per-channel (bounded error, half the
    bytes).  The returned path opens with
    :class:`~repro.slicing.memmap_store.MemmapFeatureStore`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return write_slab(path, dataset.features, dataset.labels, encoding=encoding)
