"""Synthetic OGB-like datasets, splits and registry."""

from .registry import available_datasets, clear_cache, dataset_table, get_dataset
from .slab import dataset_slab_path, write_dataset_slab
from .splits import Split, make_split
from .synthetic import SPECS, Dataset, SyntheticSpec, generate_dataset

__all__ = [
    "write_dataset_slab",
    "dataset_slab_path",
    "Dataset",
    "SyntheticSpec",
    "SPECS",
    "generate_dataset",
    "get_dataset",
    "available_datasets",
    "dataset_table",
    "clear_cache",
    "Split",
    "make_split",
]
