"""Synthetic OGB-like node-property-prediction datasets.

The paper evaluates on ogbn-arxiv, ogbn-products and ogbn-papers100M
(Table 4). Neither the data nor the scale is available here (no network, one
core), so we generate scaled-down synthetic stand-ins whose *structural
ratios* mirror Table 4:

========== ========== =========== ======== ======================== ========
dataset    paper nodes paper edges features paper splits             classes
========== ========== =========== ======== ======================== ========
arxiv      169K        1.2M       128      91K / 30K / 48K          40
products   2.4M        62M        100      197K / 39K / 2.2M        47
papers     111M        1.6B       128      1.2M / 125K / 214K       172
========== ========== =========== ======== ======================== ========

Preserved at reduced scale: the node-count ordering, relative densities
(products ≫ papers > arxiv), feature widths (exactly), split *shape*
(arxiv/products mostly-labeled with products' huge test set; papers mostly
unlabeled), heavy-tailed degrees, and label homophily with hub mixing.
Class counts are reduced so every class keeps enough training examples at
the small scale; papers' labeled fraction is raised from ~1.4% to 8% so a
172x-smaller graph still has a trainable labeled set. Both deviations are
recorded in DESIGN.md / EXPERIMENTS.md.

Features are stored float16, matching SALIENT's half-precision host feature
store (Section 3: conventional optimization (iii)).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.generators import power_law_community_graph
from .splits import Split, make_split

__all__ = ["SyntheticSpec", "Dataset", "generate_dataset", "SPECS"]


@dataclass(frozen=True)
class SyntheticSpec:
    """Recipe for one synthetic dataset."""

    name: str
    num_nodes: int
    avg_degree: float
    num_features: int
    num_classes: int
    train_frac: float
    val_frac: float
    test_frac: float
    feature_signal: float = 0.35  # per-node feature SNR (low: GNN must aggregate)
    # Per-dataset signal/homophily values below are tuned so test accuracies
    # land in the paper's Table 6 band (arxiv ~0.70, products ~0.77,
    # papers ~0.64) with visible fanout sensitivity.
    intra_prob: float = 0.85
    hub_mixing: float = 0.6
    power_law_exponent: float = 2.5
    paper_nodes: str = ""
    paper_edges: str = ""
    paper_splits: str = ""


# Default scale: runs end-to-end (training + inference benches) on one core.
# num_nodes ratios follow Table 4 (arxiv : products : papers = 1 : 14 : 657,
# compressed here to 1 : 3.3 : 8 to keep the papers stand-in tractable while
# preserving the ordering); avg degrees follow 14.2 : 51.7 : 28.8 (scaled).
SPECS: dict[str, SyntheticSpec] = {
    "arxiv": SyntheticSpec(
        name="arxiv",
        num_nodes=2_400,
        avg_degree=14.0,
        num_features=128,
        num_classes=12,
        # Paper: 91K/30K/48K of 169K -> 54% / 18% / 28%
        train_frac=0.54,
        val_frac=0.18,
        test_frac=0.28,
        feature_signal=0.045,
        intra_prob=0.55,
        hub_mixing=0.72,
        paper_nodes="169K",
        paper_edges="1.2M",
        paper_splits="91K / 30K / 48K",
    ),
    "products": SyntheticSpec(
        name="products",
        num_nodes=8_000,
        avg_degree=40.0,
        num_features=100,
        num_classes=10,
        # Paper: 197K/39K/2.2M of 2.4M -> 8% / 1.6% / 90%
        train_frac=0.08,
        val_frac=0.016,
        test_frac=0.90,
        feature_signal=0.077,
        intra_prob=0.63,
        hub_mixing=0.72,
        paper_nodes="2.4M",
        paper_edges="62M",
        paper_splits="197K / 39K / 2.2M",
    ),
    "papers": SyntheticSpec(
        name="papers",
        num_nodes=20_000,
        avg_degree=24.0,
        num_features=128,
        num_classes=16,
        # Paper: 1.2M/125K/214K of 111M (~1.4% labeled). Raised to 8% labeled
        # (5%/1%/2%) so the scaled graph keeps a trainable labeled set; the
        # mostly-unlabeled character is preserved.
        train_frac=0.05,
        val_frac=0.01,
        test_frac=0.02,
        feature_signal=0.065,
        intra_prob=0.62,
        hub_mixing=0.7,
        paper_nodes="111M",
        paper_edges="1.6B",
        paper_splits="1.2M / 125K / 214K",
    ),
}


@dataclass
class Dataset:
    """A node-classification dataset: graph + features + labels + split."""

    name: str
    graph: CSRGraph
    features: np.ndarray  # (n, f) float16 host store
    labels: np.ndarray  # (n,) int64; -1 marks unlabeled nodes
    split: Split
    num_classes: int
    spec: Optional[SyntheticSpec] = None
    communities: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    def validate(self) -> None:
        if self.features.shape[0] != self.graph.num_nodes:
            raise ValueError("feature rows != num_nodes")
        if self.labels.shape != (self.graph.num_nodes,):
            raise ValueError("labels shape mismatch")
        self.split.validate(self.graph.num_nodes)
        labeled = np.concatenate([self.split.train, self.split.val, self.split.test])
        if np.any(self.labels[labeled] < 0):
            raise ValueError("split references unlabeled nodes")

    def summary_row(self) -> dict:
        """Table 4-style summary of this dataset instance."""
        train, val, test = self.split.sizes()
        return {
            "dataset": self.name,
            "nodes": self.graph.num_nodes,
            "edges": self.graph.num_edges // 2,  # undirected edge count
            "features": self.num_features,
            "classes": self.num_classes,
            "train": train,
            "val": val,
            "test": test,
            "paper_nodes": self.spec.paper_nodes if self.spec else "",
            "paper_edges": self.spec.paper_edges if self.spec else "",
            "paper_splits": self.spec.paper_splits if self.spec else "",
        }

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.graph.num_edges}, features={self.num_features}, "
            f"classes={self.num_classes})"
        )


def _synthesize_features(
    communities: np.ndarray,
    num_classes: int,
    num_features: int,
    signal: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Class-centroid features with additive noise, stored as float16.

    The per-node signal is deliberately weak (default SNR 0.35): a model that
    ignores the graph plateaus well below one that aggregates neighborhoods,
    which is what makes fanout choices measurable (Table 6 / Figure 3).
    """
    centroids = rng.normal(0.0, 1.0, size=(num_classes, num_features))
    noise = rng.normal(0.0, 1.0, size=(len(communities), num_features))
    x = signal * centroids[communities] + noise
    return x.astype(np.float16)


def generate_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    spec: Optional[SyntheticSpec] = None,
) -> Dataset:
    """Generate a synthetic stand-in dataset.

    Parameters
    ----------
    name:
        One of ``"arxiv"``, ``"products"``, ``"papers"`` (or any name when an
        explicit ``spec`` is passed).
    scale:
        Multiplier on the spec's node count (e.g. 0.25 for quick tests).
    seed:
        Seed for graph structure, features and splits; generation is fully
        deterministic given (name, scale, seed).
    """
    if spec is None:
        if name not in SPECS:
            raise KeyError(f"unknown dataset {name!r}; available: {sorted(SPECS)}")
        spec = SPECS[name]
    # zlib.crc32 is stable across processes (unlike hash(), which is salted).
    name_key = zlib.crc32(name.encode()) & 0xFFFF
    rng = np.random.default_rng(np.random.SeedSequence([name_key, seed]))
    num_nodes = max(int(spec.num_nodes * scale), 4 * spec.num_classes)

    generated = power_law_community_graph(
        num_nodes=num_nodes,
        avg_degree=spec.avg_degree,
        num_communities=spec.num_classes,
        exponent=spec.power_law_exponent,
        intra_prob=spec.intra_prob,
        hub_mixing=spec.hub_mixing,
        rng=rng,
    )
    features = _synthesize_features(
        generated.communities,
        spec.num_classes,
        spec.num_features,
        spec.feature_signal,
        rng,
    )
    split = make_split(num_nodes, spec.train_frac, spec.val_frac, spec.test_frac, rng)
    labels = generated.communities.astype(np.int64).copy()
    labeled = np.zeros(num_nodes, dtype=bool)
    labeled[np.concatenate([split.train, split.val, split.test])] = True
    labels[~labeled] = -1

    dataset = Dataset(
        name=name,
        graph=generated.graph,
        features=features,
        labels=labels,
        split=split,
        num_classes=spec.num_classes,
        spec=spec,
        communities=generated.communities,
    )
    dataset.validate()
    return dataset
