"""Train/validation/test split containers and constructors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["Split", "make_split"]


@dataclass
class Split:
    """Index-array split over a node set."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray

    def __post_init__(self) -> None:
        self.train = np.asarray(self.train, dtype=np.int64)
        self.val = np.asarray(self.val, dtype=np.int64)
        self.test = np.asarray(self.test, dtype=np.int64)

    def validate(self, num_nodes: int) -> None:
        """Check disjointness and range; raises ``ValueError`` on violation."""
        parts = {"train": self.train, "val": self.val, "test": self.test}
        for name, arr in parts.items():
            if len(arr) and (arr.min() < 0 or arr.max() >= num_nodes):
                raise ValueError(f"{name} split references out-of-range nodes")
            if len(np.unique(arr)) != len(arr):
                raise ValueError(f"{name} split contains duplicates")
        combined = np.concatenate([self.train, self.val, self.test])
        if len(np.unique(combined)) != len(combined):
            raise ValueError("splits overlap")

    def sizes(self) -> tuple[int, int, int]:
        return (len(self.train), len(self.val), len(self.test))

    def __repr__(self) -> str:
        return f"Split(train={len(self.train)}, val={len(self.val)}, test={len(self.test)})"


def make_split(
    num_nodes: int,
    train_frac: float,
    val_frac: float,
    test_frac: float,
    rng: Optional[np.random.Generator] = None,
) -> Split:
    """Sample a random disjoint split; fractions are of ``num_nodes``.

    Fractions need not sum to 1 — nodes outside all three splits are
    unlabeled (the ogbn-papers100M situation, where ~98.6% of nodes carry no
    label).
    """
    total = train_frac + val_frac + test_frac
    if total > 1.0 + 1e-9:
        raise ValueError(f"split fractions sum to {total} > 1")
    rng = rng or np.random.default_rng()
    perm = rng.permutation(num_nodes)
    n_train = int(round(num_nodes * train_frac))
    n_val = int(round(num_nodes * val_frac))
    n_test = int(round(num_nodes * test_frac))
    return Split(
        train=np.sort(perm[:n_train]),
        val=np.sort(perm[n_train : n_train + n_val]),
        test=np.sort(perm[n_train + n_val : n_train + n_val + n_test]),
    )
