"""Dataset registry with caching.

``get_dataset("products")`` returns the scaled synthetic stand-in; repeated
calls with identical (name, scale, seed) return the same cached instance so
benches and examples do not regenerate graphs needlessly.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .synthetic import SPECS, Dataset, generate_dataset

__all__ = ["get_dataset", "available_datasets", "clear_cache", "dataset_table"]

_CACHE: Dict[Tuple[str, float, int], Dataset] = {}


def available_datasets() -> list[str]:
    """Names accepted by :func:`get_dataset`."""
    return sorted(SPECS)


def get_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Dataset:
    """Fetch (and cache) a synthetic dataset instance."""
    key = (name, float(scale), int(seed))
    if key not in _CACHE:
        _CACHE[key] = generate_dataset(name, scale=scale, seed=seed)
    return _CACHE[key]


def clear_cache() -> None:
    _CACHE.clear()


def dataset_table(scale: float = 1.0, seed: int = 0) -> list[dict]:
    """Table 4 reproduction: one summary row per registered dataset."""
    return [get_dataset(name, scale, seed).summary_row() for name in available_datasets()]
