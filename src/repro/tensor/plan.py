"""Per-batch aggregation plans: precomputed segment-reduction metadata.

Every segment reduction over a message-flow-graph layer needs the same
setup metadata — per-destination counts for means, and for max/softmax a
destination-sorted edge permutation with its segment boundaries.  The
legacy kernels recompute it (an argsort or a ``bincount`` over the index)
inside *every* ``segment_mean/max/softmax`` call, i.e. once per op per
layer per direction.  An :class:`AggregationPlan` computes it **once per
batch** (in the prepare/slice pipeline stage, off the compute critical
path) and is reused by every layer's forward *and* backward pass.  For
GAT the self-loop-augmented edge set (and its sort) is additionally
memoized on the plan, where the legacy path re-concatenates and re-sorts
it on every softmax/sum call of every layer.

Bitwise contract: each output slot of a segment *sum* must accumulate its
edges sequentially **in original edge order, in float64** — the legacy
flat-index ``np.bincount`` semantics.  The plan materializes that same
accumulation as cached CSR operators (rows grouped by the *stable*
dst/src sort, so entries within a row keep edge order; data all-ones
float64): ``A @ x`` runs the identical per-slot add sequence through
scipy's C matvec loop, an order of magnitude faster than bincount's
flat-index scalar loop.  ``np.add.reduceat`` is deliberately *not* used
for sums — its pairwise summation re-associates float adds and is not
bit-identical — but ``maximum.reduceat`` is order-exact, so the sorted
view drives max/softmax.  When scipy is unavailable the kernels fall
back to the legacy flat-index bincount (same bits, slower).
``tests/tensor/test_fused_kernels.py`` pins the twin property
bit-for-bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

try:  # pragma: no cover - exercised implicitly by the kernel tests
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy ships with the toolchain
    _sparse = None

__all__ = ["AggregationPlan"]


class AggregationPlan:
    """Precomputed metadata for segment reductions over one edge list.

    Parameters
    ----------
    src, dst:
        Local edge endpoints, each ``(E,)`` int64; messages flow
        ``src -> dst``.
    n_src, n_dst:
        Sizes of the source/destination node sets.
    """

    __slots__ = (
        "src",
        "dst",
        "n_src",
        "n_dst",
        "num_edges",
        "perm",
        "starts",
        "seg_ids",
        "counts",
        "_with_loops",
        "_edge_matrix",
        "_gather_matrix",
        "_scatter_matrix",
    )

    def __init__(self, src: np.ndarray, dst: np.ndarray, n_src: int, n_dst: int):
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if src.ndim != 1 or dst.ndim != 1 or src.shape != dst.shape:
            raise ValueError("src/dst must be 1-D arrays of equal length")
        self.src = src
        self.dst = dst
        self.n_src = int(n_src)
        self.n_dst = int(n_dst)
        self.num_edges = int(src.shape[0])

        #: per-destination in-degree (mean kernels divide by this)
        self.counts = np.bincount(dst, minlength=self.n_dst).astype(np.int64)
        #: dst-sorted view (max / softmax reductions); stable keeps edges in
        #: original order within a segment.  int64 stable argsort is a radix
        #: sort, so plan construction is O(E).
        self.perm = np.argsort(dst, kind="stable")
        self.starts, self.seg_ids = _run_starts(dst[self.perm])

        self._with_loops: Optional["AggregationPlan"] = None
        self._edge_matrix = None
        self._gather_matrix = None
        self._scatter_matrix = None

    # ------------------------------------------------------------------
    # Cached CSR aggregation operators.  Rows follow the stable sort, so
    # scipy's matvec loop visits each slot's entries in original edge
    # order and (with all-ones float64 data) reproduces the flat-index
    # bincount accumulation bit for bit.  Indices are intentionally NOT
    # per-row sorted and the matrices must never be canonicalized
    # (``sum_duplicates``/``sort_indices`` would re-associate the adds).

    def _csr(self, indices: np.ndarray, counts: np.ndarray, n_cols: int):
        indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )
        data = np.ones(indices.shape[0], dtype=np.float64)
        return _sparse.csr_matrix(
            (data, indices, indptr), shape=(counts.shape[0], n_cols), copy=False
        )

    def edge_matrix(self):
        """``(n_dst, E)`` operator: ``A @ values`` == segment-sum of
        per-edge rows by destination.  ``None`` when scipy is absent."""
        if _sparse is None:
            return None
        if self._edge_matrix is None:
            self._edge_matrix = self._csr(self.perm, self.counts, self.num_edges)
        return self._edge_matrix

    def gather_matrix(self):
        """``(n_dst, n_src)`` operator: ``A @ x`` == gather source rows
        along each edge then segment-sum by destination, without ever
        materializing the ``(E, F)`` message array."""
        if _sparse is None:
            return None
        if self._gather_matrix is None:
            self._gather_matrix = self._csr(
                self.src[self.perm], self.counts, self.n_src
            )
        return self._gather_matrix

    def scatter_matrix(self):
        """``(n_src, n_dst)`` operator: ``A @ g`` == gather destination
        rows along each edge then scatter-add into source rows (the
        backward of :meth:`gather_matrix`)."""
        if _sparse is None:
            return None
        if self._scatter_matrix is None:
            src_perm = np.argsort(self.src, kind="stable")
            src_counts = np.bincount(self.src, minlength=self.n_src)
            self._scatter_matrix = self._csr(
                self.dst[src_perm], src_counts, self.n_dst
            )
        return self._scatter_matrix

    # ------------------------------------------------------------------
    @classmethod
    def from_edge_index(
        cls, edge_index: np.ndarray, size: tuple[int, int]
    ) -> "AggregationPlan":
        """Build from a PyG-style ``(2, E)`` local edge index and layer size."""
        edge_index = np.asarray(edge_index)
        if edge_index.ndim != 2 or edge_index.shape[0] != 2:
            raise ValueError(f"edge_index must be (2, E), got {edge_index.shape}")
        return cls(edge_index[0], edge_index[1], size[0], size[1])

    def with_self_loops(self) -> "AggregationPlan":
        """Plan for the self-loop-augmented edge set used by GAT.

        GAT appends one ``j -> j`` edge per destination (the PyG
        ``add_self_loops=True`` convention, valid because destinations are
        a prefix of the source set).  The augmented plan is memoized so all
        heads and both passes of a layer share it.
        """
        if self._with_loops is None:
            loops = np.arange(self.n_dst, dtype=np.int64)
            self._with_loops = AggregationPlan(
                np.concatenate([self.src, loops]),
                np.concatenate([self.dst, loops]),
                self.n_src,
                self.n_dst,
            )
        return self._with_loops

    def nbytes(self) -> int:
        """Host bytes held by this plan (excluded from transfer metering:
        plans are prepare-stage metadata, not paper-modelled payload)."""
        total = 0
        for name in ("src", "dst", "perm", "starts", "seg_ids", "counts"):
            total += getattr(self, name).nbytes
        for mat in (self._edge_matrix, self._gather_matrix, self._scatter_matrix):
            if mat is not None:
                total += mat.data.nbytes + mat.indices.nbytes + mat.indptr.nbytes
        if self._with_loops is not None:
            total += self._with_loops.nbytes()
        return total

    def __repr__(self) -> str:
        return (
            f"AggregationPlan(E={self.num_edges}, n_src={self.n_src}, "
            f"n_dst={self.n_dst})"
        )


def _run_starts(sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run starts and run key ids of an already-sorted key array."""
    if sorted_keys.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    starts = np.concatenate([[0], boundaries]).astype(np.int64)
    return starts, sorted_keys[starts]
