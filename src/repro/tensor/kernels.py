"""Low-level numpy kernels shared by autograd ops and graph aggregation.

These are the "compiled extension" analogues of this reproduction: the few
routines whose cost dominates message passing (row scatter-add, segment
reductions). Each has an obvious reference formulation in the test suite and
an optimized formulation here (bincount-based accumulation, sort-based
segment reduction) per the ml-systems performance guide.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "scatter_add_rows",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_counts",
]


def scatter_add_rows(values: np.ndarray, index: np.ndarray, n_rows: int) -> np.ndarray:
    """Accumulate ``values[i]`` into ``out[index[i]]`` for 1-D/2-D values.

    This is the transpose of a row gather and the core primitive of both
    neighborhood aggregation (forward) and feature-gather backward.

    Implementation note: ``np.add.at`` is notoriously slow (scalar inner
    loop); for the 2-D float case we instead flatten (row, col) pairs and use
    ``np.bincount``, which accumulates at C speed. Accumulation happens in
    float64 and is cast back, keeping results deterministic and accurate.
    """
    index = np.asarray(index)
    if index.ndim != 1:
        raise ValueError("index must be 1-D")
    if values.shape[0] != index.shape[0]:
        raise ValueError(
            f"values rows ({values.shape[0]}) != index length ({index.shape[0]})"
        )
    if values.ndim == 1:
        out = np.bincount(index, weights=values.astype(np.float64), minlength=n_rows)
        return out.astype(values.dtype)
    if values.ndim != 2:
        raise ValueError("only 1-D or 2-D values are supported")

    n_cols = values.shape[1]
    out = np.zeros((n_rows, n_cols), dtype=values.dtype)
    if values.shape[0] == 0:
        return out
    # Process column blocks to bound the temporary (index*width) array size.
    block_cols = max(1, min(n_cols, 1 << 22 // max(values.shape[0], 1)))
    col = 0
    base = index.astype(np.int64)
    while col < n_cols:
        stop = min(col + block_cols, n_cols)
        width = stop - col
        flat_idx = (base[:, None] * width + np.arange(width, dtype=np.int64)[None, :]).ravel()
        acc = np.bincount(
            flat_idx,
            weights=values[:, col:stop].ravel().astype(np.float64),
            minlength=n_rows * width,
        )
        out[:, col:stop] = acc.reshape(n_rows, width).astype(values.dtype)
        col = stop
    return out


def segment_counts(index: np.ndarray, n_segments: int) -> np.ndarray:
    """Number of elements per segment (int64)."""
    return np.bincount(np.asarray(index), minlength=n_segments).astype(np.int64)


def segment_sum(values: np.ndarray, index: np.ndarray, n_segments: int) -> np.ndarray:
    """Sum ``values`` grouped by ``index`` into ``n_segments`` rows."""
    return scatter_add_rows(values, index, n_segments)


def segment_mean(values: np.ndarray, index: np.ndarray, n_segments: int) -> np.ndarray:
    """Mean of ``values`` per segment; empty segments yield zero rows."""
    sums = segment_sum(values, index, n_segments)
    counts = segment_counts(index, n_segments).astype(values.dtype)
    counts = np.maximum(counts, 1)
    if sums.ndim == 2:
        return sums / counts[:, None]
    return sums / counts


def segment_max(
    values: np.ndarray, index: np.ndarray, n_segments: int
) -> tuple[np.ndarray, np.ndarray]:
    """Max of ``values`` per segment, plus the argmax element index per slot.

    Returns
    -------
    out:
        ``(n_segments, n_cols)`` array; empty segments are zero.
    argmax:
        ``(n_segments, n_cols)`` int64 array of the winning element index per
        (segment, column) slot, or -1 for empty segments. Used to route
        gradients back in the autograd wrapper.
    """
    squeeze = False
    if values.ndim == 1:
        values = values[:, None]
        squeeze = True
    index = np.asarray(index)
    n_elems, n_cols = values.shape
    out = np.zeros((n_segments, n_cols), dtype=values.dtype)
    argmax = np.full((n_segments, n_cols), -1, dtype=np.int64)
    if n_elems == 0:
        return (out[:, 0], argmax[:, 0]) if squeeze else (out, argmax)

    order = np.argsort(index, kind="stable")
    sorted_idx = index[order]
    sorted_vals = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_idx)) + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [n_elems]])
    seg_ids = sorted_idx[starts]
    # maximum.reduceat handles contiguous runs at C speed.
    out[seg_ids] = np.maximum.reduceat(sorted_vals, starts, axis=0)
    # Recover the argmax via a masked comparison against the per-segment max.
    expanded_max = out[index]
    is_max = values == expanded_max
    # First matching element per (segment, col): iterate columns, still C-heavy.
    elem_ids = np.arange(n_elems, dtype=np.int64)
    for col in range(n_cols):
        winners = np.where(is_max[:, col], elem_ids, np.iinfo(np.int64).max)
        best = np.full(n_segments, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(best, index, winners)
        hit = best != np.iinfo(np.int64).max
        argmax[hit, col] = best[hit]
    if squeeze:
        return out[:, 0], argmax[:, 0]
    return out, argmax
