"""Low-level numpy kernels shared by autograd ops and graph aggregation.

These are the "compiled extension" analogues of this reproduction: the few
routines whose cost dominates message passing (row scatter-add, segment
reductions). Each has an obvious reference formulation in the test suite and
an optimized formulation here (bincount-based accumulation, sort-based
segment reduction) per the ml-systems performance guide.

Two generations coexist:

- the **legacy** kernels (``scatter_add_rows``, ``segment_*``) rebuild their
  sort/flat-index metadata on every call;
- the **plan** kernels (``plan_segment_*``) take a prebuilt
  :class:`~repro.tensor.plan.AggregationPlan` and skip that setup, and the
  **fused** kernels (``fused_gather_segment_*``, ``fused_gather_scatter_add``)
  additionally stream the gather through column blocks so the ``(E, F)``
  per-edge message array is never materialized; ``linear_forward`` /
  ``linear_backward`` fuse ``x @ W.T + b`` (+ optional relu) into one kernel.

The two generations are byte-identical twins: every *sum* accumulates each
output slot sequentially in original edge order, in float64, cast back to
the input dtype — the flat-index ``np.bincount`` semantics.  The plan
kernels run that accumulation through the plan's cached all-ones CSR
operators (rows grouped by the *stable* sort preserve edge order, so
scipy's C matvec loop adds in the same sequence an order of magnitude
faster), falling back to the flat-index bincount itself when scipy is
absent.  ``np.add.reduceat`` is never used for sums — its pairwise
summation re-associates float adds and breaks bit-identity — but max is
order-exact, so the plan's precomputed stable sort drives
``maximum.reduceat`` there.
``tests/tensor/test_fused_kernels.py`` pins the equivalence bit-for-bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .plan import AggregationPlan
from .workspace import _pool_empty, _pool_zeros

try:  # pragma: no cover - scipy ships with the toolchain
    from scipy.sparse import _sparsetools as _csr_tools
except ImportError:  # pragma: no cover
    _csr_tools = None

__all__ = [
    "scatter_add_rows",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_counts",
    "plan_segment_sum",
    "plan_segment_mean",
    "plan_segment_max",
    "fused_gather_segment_sum",
    "fused_gather_segment_mean",
    "fused_gather_scatter_add",
    "linear_forward",
    "linear_backward",
]

#: float64 element budget for blocked accumulation temporaries (32 MiB).
_BLOCK_BUDGET = 1 << 22


def _block_cols(n_rows: int, n_cols: int, budget: int = _BLOCK_BUDGET) -> int:
    """Column-block width keeping ``n_rows * width`` under ``budget`` elements.

    (Historically ``1 << 22 // rows`` — operator precedence made that
    ``1 << (22 // rows)``, i.e. single-column blocking for any input with
    more than 22 rows and multi-MiB blocks for tiny ones.)
    """
    return max(1, min(n_cols, budget // max(n_rows, 1)))


def scatter_add_rows(values: np.ndarray, index: np.ndarray, n_rows: int) -> np.ndarray:
    """Accumulate ``values[i]`` into ``out[index[i]]`` for 1-D/2-D values.

    This is the transpose of a row gather and the core primitive of both
    neighborhood aggregation (forward) and feature-gather backward.

    Implementation note: ``np.add.at`` is notoriously slow (scalar inner
    loop); for the 2-D float case we instead flatten (row, col) pairs and use
    ``np.bincount``, which accumulates at C speed. Accumulation happens in
    float64 and is cast back, keeping results deterministic and accurate.
    """
    index = np.asarray(index)
    if index.ndim != 1:
        raise ValueError("index must be 1-D")
    if values.shape[0] != index.shape[0]:
        raise ValueError(
            f"values rows ({values.shape[0]}) != index length ({index.shape[0]})"
        )
    if values.ndim == 1:
        out = np.bincount(index, weights=values.astype(np.float64), minlength=n_rows)
        return out.astype(values.dtype)
    if values.ndim != 2:
        raise ValueError("only 1-D or 2-D values are supported")

    n_cols = values.shape[1]
    out = np.zeros((n_rows, n_cols), dtype=values.dtype)
    if values.shape[0] == 0:
        return out
    # Process column blocks to bound the temporary (index*width) array size.
    block_cols = _block_cols(values.shape[0], n_cols)
    col = 0
    base = index.astype(np.int64)
    while col < n_cols:
        stop = min(col + block_cols, n_cols)
        width = stop - col
        flat_idx = (base[:, None] * width + np.arange(width, dtype=np.int64)[None, :]).ravel()
        acc = np.bincount(
            flat_idx,
            weights=values[:, col:stop].ravel().astype(np.float64),
            minlength=n_rows * width,
        )
        out[:, col:stop] = acc.reshape(n_rows, width).astype(values.dtype)
        col = stop
    return out


def segment_counts(index: np.ndarray, n_segments: int) -> np.ndarray:
    """Number of elements per segment (int64)."""
    return np.bincount(np.asarray(index), minlength=n_segments).astype(np.int64)


def segment_sum(values: np.ndarray, index: np.ndarray, n_segments: int) -> np.ndarray:
    """Sum ``values`` grouped by ``index`` into ``n_segments`` rows."""
    return scatter_add_rows(values, index, n_segments)


def segment_mean(values: np.ndarray, index: np.ndarray, n_segments: int) -> np.ndarray:
    """Mean of ``values`` per segment; empty segments yield zero rows."""
    sums = segment_sum(values, index, n_segments)
    counts = segment_counts(index, n_segments).astype(values.dtype)
    counts = np.maximum(counts, 1)
    if sums.ndim == 2:
        return sums / counts[:, None]
    return sums / counts


def segment_max(
    values: np.ndarray, index: np.ndarray, n_segments: int
) -> tuple[np.ndarray, np.ndarray]:
    """Max of ``values`` per segment, plus the argmax element index per slot.

    Returns
    -------
    out:
        ``(n_segments, n_cols)`` array; empty segments are zero.
    argmax:
        ``(n_segments, n_cols)`` int64 array of the winning element index per
        (segment, column) slot, or -1 for empty segments. Used to route
        gradients back in the autograd wrapper.
    """
    squeeze = False
    if values.ndim == 1:
        values = values[:, None]
        squeeze = True
    index = np.asarray(index)
    n_elems, n_cols = values.shape
    out = np.zeros((n_segments, n_cols), dtype=values.dtype)
    argmax = np.full((n_segments, n_cols), -1, dtype=np.int64)
    if n_elems == 0:
        return (out[:, 0], argmax[:, 0]) if squeeze else (out, argmax)

    order = np.argsort(index, kind="stable")
    sorted_idx = index[order]
    sorted_vals = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_idx)) + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [n_elems]])
    seg_ids = sorted_idx[starts]
    # maximum.reduceat handles contiguous runs at C speed.
    out[seg_ids] = np.maximum.reduceat(sorted_vals, starts, axis=0)
    # Recover the argmax via a masked comparison against the per-segment max.
    expanded_max = out[index]
    is_max = values == expanded_max
    # First matching element per (segment, col): iterate columns, still C-heavy.
    elem_ids = np.arange(n_elems, dtype=np.int64)
    for col in range(n_cols):
        winners = np.where(is_max[:, col], elem_ids, np.iinfo(np.int64).max)
        best = np.full(n_segments, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(best, index, winners)
        hit = best != np.iinfo(np.int64).max
        argmax[hit, col] = best[hit]
    if squeeze:
        return out[:, 0], argmax[:, 0]
    return out, argmax


# ----------------------------------------------------------------------
# Plan-based segment kernels: the per-call argsort/flat-index setup is
# replaced by the batch's precomputed AggregationPlan.
# ----------------------------------------------------------------------
def _check_plan(values: np.ndarray, plan: AggregationPlan) -> None:
    if values.shape[0] != plan.num_edges:
        raise ValueError(
            f"values rows ({values.shape[0]}) != plan edges ({plan.num_edges})"
        )


def _bincount_block(
    block: np.ndarray, index: np.ndarray, n_rows: int
) -> np.ndarray:
    """Flat-index bincount of one ``(E, width)`` column block.

    This is the exact legacy :func:`scatter_add_rows` accumulation —
    sequential in edge order, in float64 — shared by the plan/fused sum
    kernels so the two generations stay bitwise twins.
    """
    width = block.shape[1]
    flat_idx = (
        index[:, None] * width + np.arange(width, dtype=np.int64)[None, :]
    ).ravel()
    acc = np.bincount(
        flat_idx,
        weights=block.ravel().astype(np.float64),
        minlength=n_rows * width,
    )
    return acc.reshape(n_rows, width)


def _csr_accumulate(mat, values: np.ndarray, out: np.ndarray) -> None:
    """``out[:mat.shape[0]] = (mat @ float64(values)).astype(out.dtype)``.

    ``mat`` is one of the plan's cached all-ones CSR operators; the matvec
    visits each row's entries in storage order (== original edge order,
    thanks to the stable sort) accumulating in float64, reproducing
    :func:`_bincount_block` bit for bit at C-matvec speed.

    When scipy's ``csr_matvecs`` kernel is importable it is driven
    directly so the float64 *operand* copy comes from the workspace pool
    (it is fully overwritten, so the checkout skips any fill pass); the
    accumulator deliberately does NOT — ``csr_matvecs`` requires a zeroed
    destination, and ``np.zeros``'s lazily-mapped pages are one memory
    pass cheaper than re-zeroing a recycled buffer.  The public ``mat @``
    fallback runs the exact same kernel on scipy-allocated temporaries.
    """
    n_rows = mat.shape[0]
    if _csr_tools is None:
        acc = mat @ values.astype(np.float64, copy=False)
        out[:n_rows] = acc.astype(out.dtype)
        return
    if values.dtype == np.float64 and values.flags["C_CONTIGUOUS"]:
        v64 = values
    else:
        v64 = _pool_empty(values.shape, np.float64)
        v64[...] = values
    acc = np.zeros((n_rows, values.shape[1]), dtype=np.float64)
    _csr_tools.csr_matvecs(
        n_rows,
        mat.shape[1],
        values.shape[1],
        mat.indptr,
        mat.indices,
        mat.data,
        v64.ravel(),
        acc.ravel(),
    )
    out[:n_rows] = acc


def _blocked_bincount_into(
    gather, index: np.ndarray, n_rows: int, num_edges: int, out: np.ndarray
) -> None:
    """Scipy-free fallback: flat-index bincount over column blocks.

    ``gather(col, stop)`` yields the ``(E, width)`` message block for
    columns ``[col, stop)``; blocks are accumulated and discarded so the
    full ``(E, F)`` temporary is never materialized.
    """
    n_cols = out.shape[1]
    block = _block_cols(num_edges, n_cols)
    col = 0
    while col < n_cols:
        stop = min(col + block, n_cols)
        acc = _bincount_block(gather(col, stop), index, n_rows)
        out[:, col:stop] = acc.astype(out.dtype)
        col = stop


def plan_segment_sum(values: np.ndarray, plan: AggregationPlan) -> np.ndarray:
    """``segment_sum(values, plan.dst, plan.n_dst)`` into a pooled buffer."""
    _check_plan(values, plan)
    if values.ndim == 1:
        if plan.num_edges == 0:
            return _pool_zeros(plan.n_dst, values.dtype)
        out = _pool_empty(plan.n_dst, values.dtype)
        acc = np.bincount(
            plan.dst, weights=values.astype(np.float64), minlength=plan.n_dst
        )
        out[...] = acc.astype(values.dtype)
        return out
    if values.ndim != 2:
        raise ValueError("only 1-D or 2-D values are supported")
    n_cols = values.shape[1]
    if plan.num_edges == 0:
        return _pool_zeros((plan.n_dst, n_cols), values.dtype)
    # Every row is overwritten below, so the checkout skips the zero-fill
    # pass (a pooled buffer holds stale data; np.empty's pages are lazy).
    out = _pool_empty((plan.n_dst, n_cols), values.dtype)
    mat = plan.edge_matrix()
    if mat is not None:
        _csr_accumulate(mat, values, out)
        return out
    _blocked_bincount_into(
        lambda col, stop: values[:, col:stop], plan.dst, plan.n_dst,
        plan.num_edges, out,
    )
    return out


def plan_segment_mean(values: np.ndarray, plan: AggregationPlan) -> np.ndarray:
    """``segment_mean(values, plan.dst, plan.n_dst)`` via the plan's counts."""
    sums = plan_segment_sum(values, plan)
    counts = np.maximum(plan.counts.astype(values.dtype), 1)
    if sums.ndim == 2:
        np.divide(sums, counts[:, None], out=sums)
    else:
        np.divide(sums, counts, out=sums)
    return sums


def plan_segment_max(
    values: np.ndarray, plan: AggregationPlan, compute_argmax: bool = True
) -> tuple[np.ndarray, Optional[np.ndarray]]:
    """``segment_max`` reusing the plan's sorted order.

    ``compute_argmax=False`` skips the per-column argmax recovery loop —
    segment-softmax only needs the max values, so the (discarded) argmax
    work the legacy kernel always performs is elided.
    """
    _check_plan(values, plan)
    squeeze = False
    if values.ndim == 1:
        values = values[:, None]
        squeeze = True
    n_elems, n_cols = values.shape
    out = np.zeros((plan.n_dst, n_cols), dtype=values.dtype)
    argmax = (
        np.full((plan.n_dst, n_cols), -1, dtype=np.int64) if compute_argmax else None
    )
    if n_elems == 0:
        if squeeze:
            return out[:, 0], (argmax[:, 0] if argmax is not None else None)
        return out, argmax

    out[plan.seg_ids] = np.maximum.reduceat(values[plan.perm], plan.starts, axis=0)
    if compute_argmax:
        index = plan.dst
        expanded_max = out[index]
        is_max = values == expanded_max
        elem_ids = np.arange(n_elems, dtype=np.int64)
        for col in range(n_cols):
            winners = np.where(is_max[:, col], elem_ids, np.iinfo(np.int64).max)
            best = np.full(plan.n_dst, np.iinfo(np.int64).max, dtype=np.int64)
            np.minimum.at(best, index, winners)
            hit = best != np.iinfo(np.int64).max
            argmax[hit, col] = best[hit]
    if squeeze:
        return out[:, 0], (argmax[:, 0] if argmax is not None else None)
    return out, argmax


# ----------------------------------------------------------------------
# Fused gather→segment-reduce kernels: the (E, F) per-edge message array
# is streamed through column blocks instead of being materialized.
# ----------------------------------------------------------------------
def fused_gather_segment_sum(x: np.ndarray, plan: AggregationPlan) -> np.ndarray:
    """``segment_sum(x[plan.src], plan.dst, plan.n_dst)`` without the
    ``(E, F)`` message temporary.

    The plan's cached ``(n_dst, n_src)`` CSR operator collapses the gather
    and the reduce into one matvec over ``x`` (bitwise twin of the unfused
    gather→segment_sum chain); without scipy, ``(E, width)`` column blocks
    are gathered, bincount-accumulated and discarded.
    """
    if x.ndim != 2:
        raise ValueError("fused gather kernels expect 2-D features")
    n_cols = x.shape[1]
    if plan.num_edges == 0:
        return _pool_zeros((plan.n_dst, n_cols), x.dtype)
    out = _pool_empty((plan.n_dst, n_cols), x.dtype)  # every row overwritten
    mat = plan.gather_matrix()
    if mat is not None:
        _csr_accumulate(mat, x, out)
        return out
    _blocked_bincount_into(
        lambda col, stop: x[plan.src, col:stop], plan.dst, plan.n_dst,
        plan.num_edges, out,
    )
    return out


def fused_gather_segment_mean(x: np.ndarray, plan: AggregationPlan) -> np.ndarray:
    """``segment_mean(x[plan.src], plan.dst, plan.n_dst)``, fused."""
    sums = fused_gather_segment_sum(x, plan)
    counts = np.maximum(plan.counts.astype(x.dtype), 1)
    np.divide(sums, counts[:, None], out=sums)
    return sums


def fused_gather_scatter_add(
    g: np.ndarray, plan: AggregationPlan, n_rows: Optional[int] = None
) -> np.ndarray:
    """Backward of the fused gather→segment-sum: ``out[src] += g[dst]``.

    Bitwise-equivalent to ``scatter_add_rows(g[plan.dst], plan.src,
    n_rows)``: the plan's cached ``(n_src, n_dst)`` CSR operator runs the
    same per-source accumulation in one matvec over ``g`` (source rows
    beyond ``n_src`` stay zero, as in the legacy bincount), so the
    ``(E, F)`` edge-gradient temporary is never materialized either.
    """
    if g.ndim != 2:
        raise ValueError("fused gather kernels expect 2-D gradients")
    n_rows = plan.n_src if n_rows is None else int(n_rows)
    n_cols = g.shape[1]
    if plan.num_edges == 0:
        return _pool_zeros((n_rows, n_cols), g.dtype)
    out = _pool_empty((n_rows, n_cols), g.dtype)
    mat = plan.scatter_matrix() if n_rows >= plan.n_src else None
    if mat is not None:
        _csr_accumulate(mat, g, out)
        out[mat.shape[0] :] = 0  # sources past n_src receive no edges
        return out
    _blocked_bincount_into(
        lambda col, stop: g[plan.dst, col:stop], plan.src, n_rows,
        plan.num_edges, out,
    )
    return out


# ----------------------------------------------------------------------
# Fused linear (+bias, +relu) kernels: one tape node instead of the
# matmul/transpose/add/relu chain; identical arithmetic, fewer temporaries.
# ----------------------------------------------------------------------
def linear_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    relu: bool = False,
) -> np.ndarray:
    """``relu?(x @ weight.T + bias)`` with PyTorch weight layout ``(out, in)``.

    The gemm consumes ``weight.T`` as a view (the exact operand the legacy
    transpose-node path feeds BLAS) and writes into a workspace-pooled
    destination; bias add and relu are applied in place on the gemm output
    — elementwise identical to the legacy op chain.
    """
    out = _pool_empty(
        x.shape[:-1] + (weight.shape[0],), np.result_type(x.dtype, weight.dtype)
    )
    np.matmul(x, weight.T, out=out)
    if bias is not None:
        out += bias
    if relu:
        np.maximum(out, 0, out=out)
    return out


def linear_backward(
    g: np.ndarray,
    x: np.ndarray,
    weight: np.ndarray,
    out: np.ndarray,
    has_bias: bool = True,
    relu: bool = False,
) -> tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Gradients ``(grad_x, grad_weight, grad_bias)`` of :func:`linear_forward`.

    Matches the legacy tape bit-for-bit: the relu mask tests the (post-)
    activation against 0 (equivalent to the pre-activation test since
    ``out > 0  ⟺  pre > 0``); ``grad_weight`` is computed as
    ``transpose(x.T @ g)`` — the same gemm the legacy matmul backward runs,
    transposed as a view — **not** ``g.T @ x``, which would sum in a
    different order.
    """
    if relu:
        g = g * (out > 0)
    grad_x = _pool_empty(
        g.shape[:-1] + (weight.shape[1],), np.result_type(g.dtype, weight.dtype)
    )
    np.matmul(g, weight, out=grad_x)
    # grad_w / grad_b become parameter gradients, which outlive the step's
    # workspace scope — they must NOT come from the pool.
    grad_w = np.transpose(x.swapaxes(-1, -2) @ g)
    grad_b = g.sum(axis=0) if has_bias else None
    return grad_x, grad_w, grad_b
