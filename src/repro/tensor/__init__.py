"""Numpy-backed autograd engine: the reproduction's PyTorch substitute.

Public surface:

- :class:`Tensor`, :class:`no_grad` — core tensor with reverse-mode autodiff.
- :mod:`repro.tensor.functional` — ``log_softmax``, ``dropout``, losses and
  the segment ops implementing message passing.
- :mod:`repro.tensor.init` — Glorot/Kaiming initializers.
- :mod:`repro.tensor.kernels` — non-differentiable numpy kernels (scatter,
  segment reductions) shared with the graph substrate.
"""

from . import functional, init, kernels
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional", "init", "kernels"]
