"""Numpy-backed autograd engine: the reproduction's PyTorch substitute.

Public surface:

- :class:`Tensor`, :class:`no_grad` — core tensor with reverse-mode autodiff.
- :mod:`repro.tensor.functional` — ``log_softmax``, ``dropout``, losses and
  the segment ops implementing message passing.
- :mod:`repro.tensor.init` — Glorot/Kaiming initializers.
- :mod:`repro.tensor.kernels` — non-differentiable numpy kernels (scatter,
  segment reductions, fused gather→reduce, fused linear) shared with the
  graph substrate.
- :class:`AggregationPlan` — precomputed per-batch segment-reduction
  metadata reused across layers and passes.
- :class:`Workspace` + ``workspace_scope``/``compute_scope`` — the per-step
  buffer pool and fused/legacy kernel switch.
"""

from . import functional, init, kernels
from .plan import AggregationPlan
from .tensor import Tensor, is_grad_enabled, no_grad
from .workspace import (
    Workspace,
    compute_scope,
    current_workspace,
    is_fused_compute,
    workspace_scope,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "init",
    "kernels",
    "AggregationPlan",
    "Workspace",
    "workspace_scope",
    "current_workspace",
    "compute_scope",
    "is_fused_compute",
]
