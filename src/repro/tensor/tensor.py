"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` class, the substrate on which the
whole reproduction's neural-network stack is built (the paper uses PyTorch;
see DESIGN.md for the substitution rationale).

The implementation is a classic dynamic tape: every differentiable operation
records its parents and a backward closure on the output tensor, and
:meth:`Tensor.backward` replays the tape in reverse topological order.
Numerical work is delegated to numpy; Python-level overhead is kept off the
hot path by avoiding per-element loops everywhere (see the ml-systems guide).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

# Default floating dtype for all tensors created from Python data.
DEFAULT_DTYPE = np.float32

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]


class _GradMode:
    """Process-wide switch mirroring ``torch.no_grad`` semantics."""

    enabled: bool = True


class no_grad:
    """Context manager that disables gradient tape recording.

    Used by evaluation loops (inference with sampling, layer-wise full
    inference) to avoid building backward graphs for forward-only work.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GradMode.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GradMode.enabled


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    When an op broadcast an operand up to a larger shape, the gradient that
    flows back has the broadcast shape; summing over the broadcast axes
    recovers the operand-shaped gradient.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if dtype is not None:
        return arr.astype(dtype, copy=False)
    if arr.dtype == np.float16:
        # Compute happens in at least single precision (fp16 is a storage
        # format for the host feature store only).
        return arr.astype(DEFAULT_DTYPE)
    if arr.dtype.kind == "f":
        return arr  # keep float32/float64 as provided
    if arr.dtype.kind in "iu" and arr.dtype != np.int64:
        return arr.astype(np.int64)
    if arr.dtype.kind == "O":
        return arr.astype(DEFAULT_DTYPE)
    return arr


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to ``numpy.ndarray``. Float data is stored as
        float32 by default (matching the paper's GPU compute precision).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` on
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _op: str = "",
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = tuple(_parents) if is_grad_enabled() else ()
        self._op: str = _op

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}, dtype={self.data.dtype}{grad_tag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Seed gradient. Defaults to ones for scalar outputs; required for
            non-scalar outputs (mirrors PyTorch semantics).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.data.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"seed gradient shape {grad.shape} != output shape {self.data.shape}"
            )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS: sampled neighborhoods produce deep graphs, and the
        # recursion limit is easy to hit with many-layer MFGs.
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward is None:
                continue
            for parent, parent_grad in node._backward(node_grad):
                if parent_grad is None:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = parent_grad

    def _needs_tape(self, *others: "Tensor") -> bool:
        if not is_grad_enabled():
            return False
        if self.requires_grad or self._parents or self._backward is not None:
            return True
        for other in others:
            if other.requires_grad or other._parents or other._backward is not None:
                return True
        return False

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Optional[Callable],
        op: str,
    ) -> "Tensor":
        out = Tensor(data)
        if is_grad_enabled() and any(
            p.requires_grad or p._parents or p._backward is not None for p in parents
        ):
            out._parents = tuple(parents)
            out._backward = backward
            out._op = op
        return out

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g, self.data.shape)),
                (other, _unbroadcast(g, other.data.shape)),
            )

        return Tensor._make(data, (self, other), backward, "add")

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g, self.data.shape)),
                (other, _unbroadcast(-g, other.data.shape)),
            )

        return Tensor._make(data, (self, other), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data
        a, b = self, other

        def backward(g: np.ndarray):
            return (
                (a, _unbroadcast(g * b.data, a.data.shape)),
                (b, _unbroadcast(g * a.data, b.data.shape)),
            )

        return Tensor._make(data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data
        a, b = self, other

        def backward(g: np.ndarray):
            return (
                (a, _unbroadcast(g / b.data, a.data.shape)),
                (b, _unbroadcast(-g * a.data / (b.data * b.data), b.data.shape)),
            )

        return Tensor._make(data, (self, other), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray):
            return ((self, -g),)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(g: np.ndarray):
            return ((self, g * exponent * self.data ** (exponent - 1)),)

        return Tensor._make(data, (self,), backward, "pow")

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data
        a, b = self, other

        def backward(g: np.ndarray):
            ga = g @ b.data.swapaxes(-1, -2)
            gb = a.data.swapaxes(-1, -2) @ g
            return (
                (a, _unbroadcast(ga, a.data.shape)),
                (b, _unbroadcast(gb, b.data.shape)),
            )

        return Tensor._make(data, (self, other), backward, "matmul")

    def matmul(self, other: "Tensor") -> "Tensor":
        return self.__matmul__(other)

    def transpose(self, axes: Optional[tuple] = None) -> "Tensor":
        data = np.transpose(self.data, axes)
        if axes is None:
            inverse = None
        else:
            inverse = tuple(np.argsort(axes))

        def backward(g: np.ndarray):
            return ((self, np.transpose(g, inverse)),)

        return Tensor._make(data, (self,), backward, "transpose")

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.data.shape

        def backward(g: np.ndarray):
            return ((self, g.reshape(original)),)

        return Tensor._make(data, (self,), backward, "reshape")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            if axis is None:
                grad = np.broadcast_to(g, shape)
            else:
                g_expanded = g if keepdims else np.expand_dims(g, axis)
                grad = np.broadcast_to(g_expanded, shape)
            return ((self, np.ascontiguousarray(grad)),)

        return Tensor._make(data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if np.isscalar(axis) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            if axis is None:
                mask = (self.data == data).astype(self.data.dtype)
                mask /= mask.sum()
                return ((self, mask * g),)
            expanded = data if keepdims else np.expand_dims(data, axis)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly among ties (matches the subgradient choice
            # used by numpy-based reference implementations).
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1)
            return ((self, mask * g_expanded),)

        return Tensor._make(data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0)

        def backward(g: np.ndarray):
            return ((self, g * (self.data > 0)),)

        return Tensor._make(data, (self,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        data = np.where(self.data > 0, self.data, negative_slope * self.data)

        def backward(g: np.ndarray):
            return ((self, g * np.where(self.data > 0, 1.0, negative_slope).astype(g.dtype)),)

        return Tensor._make(data, (self,), backward, "leaky_relu")

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(g: np.ndarray):
            return ((self, g * data),)

        return Tensor._make(data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(g: np.ndarray):
            return ((self, g / self.data),)

        return Tensor._make(data, (self,), backward, "log")

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(g: np.ndarray):
            return ((self, g * (1 - data * data)),)

        return Tensor._make(data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray):
            return ((self, g * data * (1 - data)),)

        return Tensor._make(data, (self,), backward, "sigmoid")

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(g: np.ndarray):
            return ((self, g * 0.5 / data),)

        return Tensor._make(data, (self,), backward, "sqrt")

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(g: np.ndarray):
            return ((self, g * np.sign(self.data)),)

        return Tensor._make(data, (self,), backward, "abs")

    # ------------------------------------------------------------------
    # Indexing and composition
    # ------------------------------------------------------------------
    def __getitem__(self, key) -> "Tensor":
        if isinstance(key, Tensor):
            key = key.data
        data = self.data[key]
        shape = self.data.shape
        dtype = self.data.dtype

        unique_key = isinstance(key, (slice, int)) or (
            isinstance(key, tuple) and all(isinstance(k, (slice, int)) for k in key)
        )

        def backward(g: np.ndarray):
            from .workspace import _pool_empty, _pool_zeros

            # Pooled when a training-step workspace is active: this buffer
            # only lives until the parent's gradient is accumulated.
            if isinstance(key, slice) and key.step in (None, 1):
                # The hot case (``x[:n_dst]`` destination slices): assign the
                # covered rows and zero only the complement, skipping the
                # full zero-fill pass of the checkout.
                grad = _pool_empty(shape, dtype)
                grad[key] = g
                start, stop, _ = key.indices(shape[0])
                grad[:start] = 0
                grad[stop:] = 0
            elif unique_key:
                # Slices/ints cannot alias; direct assignment is much faster
                # than np.add.at's unbuffered scatter.
                grad = _pool_zeros(shape, dtype)
                grad[key] = g
            else:
                grad = _pool_zeros(shape, dtype)
                np.add.at(grad, key, g)
            return ((self, grad),)

        return Tensor._make(data, (self,), backward, "getitem")

    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Row-gather optimized for the 2-D feature-matrix case.

        Equivalent to ``self[index]`` but the backward pass uses bincount-based
        scatter addition, which is markedly faster than ``np.add.at`` for the
        high-fan-in patterns produced by neighborhood sampling.
        """
        from . import kernels

        index = np.asarray(index)
        data = self.data[index]
        n_rows = self.data.shape[0]

        def backward(g: np.ndarray):
            # Transpose of a row gather is a row scatter-add; the shared
            # bincount kernel accumulates at C speed (vs np.add.at's scalar
            # loop), which matters for sampled neighborhoods' high fan-in.
            grad = kernels.scatter_add_rows(
                np.ascontiguousarray(g), index, n_rows
            ).astype(self.data.dtype, copy=False)
            return ((self, grad),)

        return Tensor._make(data, (self,), backward, "gather_rows")

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(g: np.ndarray):
            outs = []
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * g.ndim
                slicer[axis] = slice(start, stop)
                outs.append((t, g[tuple(slicer)]))
            return tuple(outs)

        return Tensor._make(data, tuple(tensors), backward, "concat")

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(g: np.ndarray):
            parts = np.split(g, len(tensors), axis=axis)
            return tuple(
                (t, np.squeeze(part, axis=axis)) for t, part in zip(tensors, parts)
            )

        return Tensor._make(data, tuple(tensors), backward, "stack")
