"""Parameter initialization schemes (Glorot/Kaiming) used by the NN layers."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .tensor import Tensor

__all__ = ["glorot_uniform", "kaiming_uniform", "zeros", "ones", "uniform", "normal"]


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


def glorot_uniform(
    fan_in: int, fan_out: int, rng: Optional[np.random.Generator] = None
) -> Tensor:
    """Glorot/Xavier uniform init; the PyG default for conv layer weights."""
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    data = _rng(rng).uniform(-limit, limit, size=(fan_out, fan_in)).astype(np.float32)
    return Tensor(data, requires_grad=True)


def kaiming_uniform(
    fan_in: int, fan_out: int, rng: Optional[np.random.Generator] = None, a: float = math.sqrt(5)
) -> Tensor:
    """Kaiming uniform with PyTorch's Linear default gain."""
    gain = math.sqrt(2.0 / (1 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    data = _rng(rng).uniform(-bound, bound, size=(fan_out, fan_in)).astype(np.float32)
    return Tensor(data, requires_grad=True)


def zeros(*shape: int) -> Tensor:
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=True)


def ones(*shape: int) -> Tensor:
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=True)


def uniform(
    low: float, high: float, shape: tuple, rng: Optional[np.random.Generator] = None
) -> Tensor:
    return Tensor(
        _rng(rng).uniform(low, high, size=shape).astype(np.float32), requires_grad=True
    )


def normal(
    mean: float, std: float, shape: tuple, rng: Optional[np.random.Generator] = None
) -> Tensor:
    return Tensor(
        _rng(rng).normal(mean, std, size=shape).astype(np.float32), requires_grad=True
    )
