"""Differentiable functional ops built on :class:`repro.tensor.Tensor`.

Covers the ops needed by the paper's four architectures (appendix listings):
``log_softmax``, ``dropout``, ``relu``/``leaky_relu`` (as tensor methods),
``nll_loss``/``cross_entropy``, plus the segment ops that implement message
passing over bipartite message-flow-graph layers (``segment_sum`` /
``segment_mean`` / ``segment_max`` / ``segment_softmax``).

The segment ops accept an optional precomputed
:class:`~repro.tensor.plan.AggregationPlan` (``plan=``): when given, the
per-call argsort/flat-index setup inside the kernels is skipped and the
fused column-blocked kernels run instead — bit-for-bit identical results
(see ``tests/tensor/test_fused_kernels.py``).  ``gather_segment_sum`` /
``gather_segment_mean`` fuse the row gather *into* the reduction so the
``(E, F)`` message array never exists; :func:`linear` collapses its
matmul/transpose/add chain into one tape node inside
``compute_scope("fused")``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import kernels
from .plan import AggregationPlan
from .tensor import Tensor, is_grad_enabled
from .workspace import is_fused_compute

__all__ = [
    "relu",
    "leaky_relu",
    "dropout",
    "softmax",
    "log_softmax",
    "nll_loss",
    "cross_entropy",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "gather_rows",
    "gather_segment_sum",
    "gather_segment_mean",
    "linear",
    "linear_relu",
]


def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    return x.leaky_relu(negative_slope)


def linear(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    fused: Optional[bool] = None,
) -> Tensor:
    """``x @ weight.T + bias`` with PyTorch weight layout ``(out, in)``.

    Inside ``compute_scope("fused")`` (or with ``fused=True``) the
    matmul/transpose/add chain collapses into one tape node backed by
    :func:`repro.tensor.kernels.linear_forward` — bitwise-identical output
    and gradients, three fewer tape nodes and temporaries per call.
    """
    if fused is None:
        fused = is_fused_compute()
    if fused:
        return _fused_linear(x, weight, bias)
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def _fused_linear(
    x: Tensor, weight: Tensor, bias: Optional[Tensor], relu: bool = False
) -> Tensor:
    data = kernels.linear_forward(
        x.data, weight.data, None if bias is None else bias.data, relu=relu
    )
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray):
        grad_x, grad_w, grad_b = kernels.linear_backward(
            g, x.data, weight.data, data, has_bias=bias is not None, relu=relu
        )
        grads = [(x, grad_x), (weight, grad_w)]
        if bias is not None:
            grads.append((bias, grad_b))
        return tuple(grads)

    return Tensor._make(data, parents, backward, "linear_relu" if relu else "linear")


def linear_relu(
    x: Tensor, weight: Tensor, bias: Optional[Tensor] = None
) -> Tensor:
    """Fused ``relu(x @ weight.T + bias)`` as a single tape node."""
    return _fused_linear(x, weight, bias, relu=True)


def dropout(
    x: Tensor,
    p: float = 0.5,
    training: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout. Identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    rng = rng or np.random.default_rng()
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep

    def backward(g: np.ndarray):
        return ((x, g * mask),)

    return Tensor._make(x.data * mask, (x,), backward, "dropout")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = exp / exp.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return ((x, out * (g - dot)),)

    return Tensor._make(out, (x,), backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_norm
    soft = np.exp(out)

    def backward(g: np.ndarray):
        return ((x, g - soft * g.sum(axis=axis, keepdims=True)),)

    return Tensor._make(out, (x,), backward, "log_softmax")


def nll_loss(
    log_probs: Tensor,
    target: np.ndarray,
    reduction: str = "mean",
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Negative log-likelihood of integer ``target`` under ``log_probs``.

    ``log_probs`` has shape ``(N, C)`` (output of :func:`log_softmax`).
    """
    target = np.asarray(target)
    if target.ndim != 1 or log_probs.ndim != 2:
        raise ValueError("nll_loss expects (N, C) log-probs and (N,) targets")
    n = target.shape[0]
    valid = np.ones(n, dtype=bool)
    if ignore_index is not None:
        valid = target != ignore_index
    rows = np.arange(n)[valid]
    cols = target[valid]
    picked = log_probs.data[rows, cols]
    count = max(int(valid.sum()), 1)
    if reduction == "mean":
        value = -picked.sum() / count
        scale = 1.0 / count
    elif reduction == "sum":
        value = -picked.sum()
        scale = 1.0
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(g: np.ndarray):
        grad = np.zeros_like(log_probs.data)
        grad[rows, cols] = -scale * g
        return ((log_probs, grad),)

    return Tensor._make(
        np.asarray(value, dtype=log_probs.dtype), (log_probs,), backward, "nll_loss"
    )


def cross_entropy(logits: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Numerically stable ``nll_loss(log_softmax(logits), target)``."""
    return nll_loss(log_softmax(logits, axis=-1), target, reduction=reduction)


# ----------------------------------------------------------------------
# Segment (scatter) operations: the message-passing primitives
# ----------------------------------------------------------------------
def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Differentiable row gather (``x[index]``) with fast scatter backward."""
    return x.gather_rows(index)


def gather_segment_sum(x: Tensor, plan: AggregationPlan) -> Tensor:
    """Fused ``segment_sum(x[plan.src], plan.dst, plan.n_dst)``.

    One tape node replacing the gather→segment_sum chain; neither direction
    materializes the ``(E, F)`` per-edge array.  Bitwise-identical to the
    legacy chain in both passes.
    """
    data = kernels.fused_gather_segment_sum(x.data, plan)
    n_rows = x.shape[0]

    def backward(g: np.ndarray):
        return ((x, kernels.fused_gather_scatter_add(g, plan, n_rows)),)

    return Tensor._make(data, (x,), backward, "gather_segment_sum")


def gather_segment_mean(x: Tensor, plan: AggregationPlan) -> Tensor:
    """Fused ``segment_mean(x[plan.src], plan.dst, plan.n_dst)``."""
    data = kernels.fused_gather_segment_mean(x.data, plan)
    counts = np.maximum(plan.counts, 1).astype(x.dtype)
    n_rows = x.shape[0]

    def backward(g: np.ndarray):
        scaled = g / counts[:, None]
        return ((x, kernels.fused_gather_scatter_add(scaled, plan, n_rows)),)

    return Tensor._make(data, (x,), backward, "gather_segment_mean")


def segment_sum(
    values: Tensor,
    index: np.ndarray,
    n_segments: int,
    plan: Optional[AggregationPlan] = None,
) -> Tensor:
    """Differentiable per-segment sum, the AGG of GIN-style models."""
    index = np.asarray(index)
    if plan is not None:
        data = kernels.plan_segment_sum(values.data, plan)
    else:
        data = kernels.segment_sum(values.data, index, n_segments)

    def backward(g: np.ndarray):
        return ((values, g[index]),)

    return Tensor._make(data, (values,), backward, "segment_sum")


def segment_mean(
    values: Tensor,
    index: np.ndarray,
    n_segments: int,
    plan: Optional[AggregationPlan] = None,
) -> Tensor:
    """Differentiable per-segment mean, the AGG of GraphSAGE-mean."""
    index = np.asarray(index)
    if plan is not None:
        data = kernels.plan_segment_mean(values.data, plan)
        counts = np.maximum(plan.counts, 1).astype(values.dtype)
    else:
        data = kernels.segment_mean(values.data, index, n_segments)
        counts = np.maximum(kernels.segment_counts(index, n_segments), 1).astype(
            values.dtype
        )

    def backward(g: np.ndarray):
        scaled = g / (counts[:, None] if g.ndim == 2 else counts)
        return ((values, scaled[index]),)

    return Tensor._make(data, (values,), backward, "segment_mean")


def segment_max(
    values: Tensor,
    index: np.ndarray,
    n_segments: int,
    plan: Optional[AggregationPlan] = None,
) -> Tensor:
    """Differentiable per-segment max (pooling aggregator)."""
    index = np.asarray(index)
    if plan is not None:
        data, argmax = kernels.plan_segment_max(values.data, plan)
    else:
        data, argmax = kernels.segment_max(values.data, index, n_segments)

    def backward(g: np.ndarray):
        grad = np.zeros_like(values.data)
        if g.ndim == 2:
            seg_ids, col_ids = np.nonzero(argmax >= 0)
            grad[argmax[seg_ids, col_ids], col_ids] = g[seg_ids, col_ids]
        else:
            hit = argmax >= 0
            grad[argmax[hit]] = g[hit]
        return ((values, grad),)

    return Tensor._make(data, (values,), backward, "segment_max")


def segment_softmax(
    scores: Tensor,
    index: np.ndarray,
    n_segments: int,
    plan: Optional[AggregationPlan] = None,
) -> Tensor:
    """Softmax of ``scores`` normalized within each segment.

    This is the attention-coefficient normalization of GAT: edge scores are
    grouped by destination node and exponentiated/normalized per group.
    ``scores`` is 1-D (one scalar per edge).
    """
    index = np.asarray(index)
    if scores.ndim != 1:
        raise ValueError("segment_softmax expects 1-D scores (one per edge)")
    if plan is not None:
        # The plan path also skips the argmax recovery the legacy kernel
        # always performs — the attention normalizer discards it anyway.
        seg_max, _ = kernels.plan_segment_max(scores.data, plan, compute_argmax=False)
    else:
        seg_max, _ = kernels.segment_max(scores.data, index, n_segments)
    # Empty segments have max 0, harmless: no edges reference them.
    shifted = scores.data - seg_max[index]
    exp = np.exp(shifted)
    if plan is not None:
        denom = kernels.plan_segment_sum(exp, plan)
    else:
        denom = kernels.segment_sum(exp, index, n_segments)
    denom = np.maximum(denom, np.finfo(scores.dtype).tiny)
    out = exp / denom[index]

    def backward(g: np.ndarray):
        if plan is not None:
            weighted = kernels.plan_segment_sum(g * out, plan)
        else:
            weighted = kernels.segment_sum(g * out, index, n_segments)
        return ((scores, out * (g - weighted[index])),)

    return Tensor._make(out.astype(scores.dtype), (scores,), backward, "segment_softmax")
