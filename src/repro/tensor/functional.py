"""Differentiable functional ops built on :class:`repro.tensor.Tensor`.

Covers the ops needed by the paper's four architectures (appendix listings):
``log_softmax``, ``dropout``, ``relu``/``leaky_relu`` (as tensor methods),
``nll_loss``/``cross_entropy``, plus the segment ops that implement message
passing over bipartite message-flow-graph layers (``segment_sum`` /
``segment_mean`` / ``segment_max`` / ``segment_softmax``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import kernels
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "relu",
    "leaky_relu",
    "dropout",
    "softmax",
    "log_softmax",
    "nll_loss",
    "cross_entropy",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "gather_rows",
    "linear",
]


def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    return x.leaky_relu(negative_slope)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight.T + bias`` with PyTorch weight layout ``(out, in)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def dropout(
    x: Tensor,
    p: float = 0.5,
    training: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout. Identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    rng = rng or np.random.default_rng()
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep

    def backward(g: np.ndarray):
        return ((x, g * mask),)

    return Tensor._make(x.data * mask, (x,), backward, "dropout")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = exp / exp.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return ((x, out * (g - dot)),)

    return Tensor._make(out, (x,), backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_norm
    soft = np.exp(out)

    def backward(g: np.ndarray):
        return ((x, g - soft * g.sum(axis=axis, keepdims=True)),)

    return Tensor._make(out, (x,), backward, "log_softmax")


def nll_loss(
    log_probs: Tensor,
    target: np.ndarray,
    reduction: str = "mean",
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Negative log-likelihood of integer ``target`` under ``log_probs``.

    ``log_probs`` has shape ``(N, C)`` (output of :func:`log_softmax`).
    """
    target = np.asarray(target)
    if target.ndim != 1 or log_probs.ndim != 2:
        raise ValueError("nll_loss expects (N, C) log-probs and (N,) targets")
    n = target.shape[0]
    valid = np.ones(n, dtype=bool)
    if ignore_index is not None:
        valid = target != ignore_index
    rows = np.arange(n)[valid]
    cols = target[valid]
    picked = log_probs.data[rows, cols]
    count = max(int(valid.sum()), 1)
    if reduction == "mean":
        value = -picked.sum() / count
        scale = 1.0 / count
    elif reduction == "sum":
        value = -picked.sum()
        scale = 1.0
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(g: np.ndarray):
        grad = np.zeros_like(log_probs.data)
        grad[rows, cols] = -scale * g
        return ((log_probs, grad),)

    return Tensor._make(
        np.asarray(value, dtype=log_probs.dtype), (log_probs,), backward, "nll_loss"
    )


def cross_entropy(logits: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Numerically stable ``nll_loss(log_softmax(logits), target)``."""
    return nll_loss(log_softmax(logits, axis=-1), target, reduction=reduction)


# ----------------------------------------------------------------------
# Segment (scatter) operations: the message-passing primitives
# ----------------------------------------------------------------------
def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Differentiable row gather (``x[index]``) with fast scatter backward."""
    return x.gather_rows(index)


def segment_sum(values: Tensor, index: np.ndarray, n_segments: int) -> Tensor:
    """Differentiable per-segment sum, the AGG of GIN-style models."""
    index = np.asarray(index)
    data = kernels.segment_sum(values.data, index, n_segments)

    def backward(g: np.ndarray):
        return ((values, g[index]),)

    return Tensor._make(data, (values,), backward, "segment_sum")


def segment_mean(values: Tensor, index: np.ndarray, n_segments: int) -> Tensor:
    """Differentiable per-segment mean, the AGG of GraphSAGE-mean."""
    index = np.asarray(index)
    data = kernels.segment_mean(values.data, index, n_segments)
    counts = np.maximum(kernels.segment_counts(index, n_segments), 1).astype(
        values.dtype
    )

    def backward(g: np.ndarray):
        scaled = g / (counts[:, None] if g.ndim == 2 else counts)
        return ((values, scaled[index]),)

    return Tensor._make(data, (values,), backward, "segment_mean")


def segment_max(values: Tensor, index: np.ndarray, n_segments: int) -> Tensor:
    """Differentiable per-segment max (pooling aggregator)."""
    index = np.asarray(index)
    data, argmax = kernels.segment_max(values.data, index, n_segments)

    def backward(g: np.ndarray):
        grad = np.zeros_like(values.data)
        if g.ndim == 2:
            seg_ids, col_ids = np.nonzero(argmax >= 0)
            grad[argmax[seg_ids, col_ids], col_ids] = g[seg_ids, col_ids]
        else:
            hit = argmax >= 0
            grad[argmax[hit]] = g[hit]
        return ((values, grad),)

    return Tensor._make(data, (values,), backward, "segment_max")


def segment_softmax(scores: Tensor, index: np.ndarray, n_segments: int) -> Tensor:
    """Softmax of ``scores`` normalized within each segment.

    This is the attention-coefficient normalization of GAT: edge scores are
    grouped by destination node and exponentiated/normalized per group.
    ``scores`` is 1-D (one scalar per edge).
    """
    index = np.asarray(index)
    if scores.ndim != 1:
        raise ValueError("segment_softmax expects 1-D scores (one per edge)")
    seg_max, _ = kernels.segment_max(scores.data, index, n_segments)
    # Empty segments have max 0, harmless: no edges reference them.
    shifted = scores.data - seg_max[index]
    exp = np.exp(shifted)
    denom = kernels.segment_sum(exp, index, n_segments)
    denom = np.maximum(denom, np.finfo(scores.dtype).tiny)
    out = exp / denom[index]

    def backward(g: np.ndarray):
        weighted = kernels.segment_sum(g * out, index, n_segments)
        return ((scores, out * (g - weighted[index])),)

    return Tensor._make(out.astype(scores.dtype), (scores,), backward, "segment_softmax")
