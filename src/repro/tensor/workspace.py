"""Per-step compute context: workspace buffer pool + fused-kernel switch.

Training allocates near-identical activation/gradient arrays every batch —
the column widths repeat exactly (feature/hidden dims), while the row
counts (batch's node/edge counts) vary a few percent batch to batch.
:class:`Workspace` therefore pools *base* buffers keyed by
``(trailing shape, dtype, row-capacity bucket)`` where the leading
dimension is rounded up to a power of two: a request checks out a
``base[:rows]`` contiguous view of a pooled base with matching bucket, so
steady-state training recycles the same arrays batch after batch even as
row counts wobble.  Kernels check buffers out during a step and the
trainer releases them all at step end.  Hits, misses and byte volumes are
recorded into a :class:`~repro.telemetry.metrics.MetricsRegistry` when one
is attached.

Both the active workspace and the fused/legacy kernel choice are
*thread-local* scopes, entered by the trainer around the forward/backward
of each step::

    with compute_scope("fused"), workspace_scope(ws):
        out = model(x, mfg.adjs)
        loss.backward()

Outside any scope (inference, DDP, ad-hoc tensor math, the legacy twin
path) kernels fall back to plain ``numpy`` allocation and the byte-exact
legacy formulations — the same twin pattern as ``use_arena=False`` in the
sampler.

Pooled buffers are only handed to *step-transient* consumers (fused-kernel
outputs and backward scratch).  Nothing that outlives the step may hold
one: ``Tensor._accumulate`` copies gradients into fresh arrays before they
reach ``param.grad``, optimizer state is separate, and losses are scalars,
so releasing at step end is safe by construction.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Optional

import numpy as np

__all__ = [
    "Workspace",
    "workspace_scope",
    "current_workspace",
    "compute_scope",
    "is_fused_compute",
]


def _row_capacity(rows: int) -> int:
    """Leading-dimension bucket: ``rows`` rounded up to a power of two.

    Bucketing bounds the number of distinct base shapes, so a batch whose
    node/edge counts differ slightly from the last one still finds a
    pooled base (at most 2x leading-dim slack, typically far less).
    """
    return 1 if rows <= 1 else 1 << (rows - 1).bit_length()


class Workspace:
    """Capacity-bucketed buffer pool recycling arrays across batches.

    ``zeros``/``empty`` check out a ``base[:rows]`` view of a pooled base
    array keyed by ``(trailing shape, dtype, row-capacity bucket)``;
    :meth:`release_all` returns every checked-out base to the free lists.
    Not thread-safe — each trainer owns one and uses it from the compute
    thread only.
    """

    def __init__(self, metrics=None) -> None:
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._out: list[tuple[tuple, np.ndarray]] = []
        self._metrics = None
        self._hits = self._misses = 0
        self._bytes_reused = self._bytes_allocated = 0
        if metrics is not None:
            self.attach_metrics(metrics)

    def attach_metrics(self, metrics) -> None:
        """Route hit/miss/bytes counters into ``metrics`` from now on."""
        self._metrics = metrics

    # ------------------------------------------------------------------
    def empty(self, shape, dtype) -> np.ndarray:
        """Check out an uninitialized buffer of ``shape``/``dtype``."""
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        dtype = np.dtype(dtype)
        if not shape:  # 0-d: not worth pooling
            return np.empty(shape, dtype=dtype)
        rows = int(shape[0])
        capacity = _row_capacity(rows)
        key = (shape[1:], dtype.str, capacity)
        stack = self._free.get(key)
        if stack:
            base = stack.pop()
            self._record(hit=True, nbytes=base.nbytes)
        else:
            base = np.empty((capacity,) + shape[1:], dtype=dtype)
            self._record(hit=False, nbytes=base.nbytes)
        self._out.append((key, base))
        return base[:rows]

    def zeros(self, shape, dtype) -> np.ndarray:
        """Check out a zero-filled buffer of ``shape``/``dtype``."""
        array = self.empty(shape, dtype)
        array.fill(0)
        return array

    def release_all(self) -> None:
        """Return every checked-out base to the pool (end of step)."""
        for key, base in self._out:
            self._free.setdefault(key, []).append(base)
        self._out.clear()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        return {
            "hits": self._hits,
            "misses": self._misses,
            "bytes_reused": self._bytes_reused,
            "bytes_allocated": self._bytes_allocated,
            "buffers_pooled": sum(len(s) for s in self._free.values()),
            "buffers_out": len(self._out),
        }

    def pooled_bytes(self) -> int:
        return sum(a.nbytes for s in self._free.values() for a in s) + sum(
            a.nbytes for _, a in self._out
        )

    def register_probes(self, sampler) -> None:
        """Expose pool occupancy to a continuous-monitoring sampler.

        The probes run on the sampler thread while the compute thread
        mutates the pool, so they only read single attributes (atomic under
        the GIL) — never the free-list dict.  ``pooled_bytes`` equals the
        cumulative base allocations (bases are never dropped), which is
        exactly the ``_bytes_allocated`` counter.
        """
        sampler.add_probe(
            "workspace/pooled_bytes",
            lambda: float(self._bytes_allocated),
            unit="bytes",
        )
        sampler.add_probe(
            "workspace/buffers_out", lambda: float(len(self._out)), unit="buffers"
        )

    def _record(self, hit: bool, nbytes: int) -> None:
        if hit:
            self._hits += 1
            self._bytes_reused += nbytes
        else:
            self._misses += 1
            self._bytes_allocated += nbytes
        if self._metrics is not None:
            if hit:
                self._metrics.counter("workspace_hits").inc(1)
                self._metrics.counter("workspace_bytes", source="reused").inc(nbytes)
            else:
                self._metrics.counter("workspace_misses").inc(1)
                self._metrics.counter("workspace_bytes", source="allocated").inc(
                    nbytes
                )


_LOCAL = threading.local()


@contextmanager
def workspace_scope(workspace: Optional[Workspace]):
    """Make ``workspace`` the active pool for this thread; release on exit.

    ``workspace=None`` is a no-op scope (kernels allocate with numpy).
    """
    if workspace is None:
        yield None
        return
    previous = getattr(_LOCAL, "workspace", None)
    _LOCAL.workspace = workspace
    try:
        yield workspace
    finally:
        _LOCAL.workspace = previous
        workspace.release_all()


def current_workspace() -> Optional[Workspace]:
    """The pool active on this thread, or ``None``."""
    return getattr(_LOCAL, "workspace", None)


def _pool_zeros(shape, dtype) -> np.ndarray:
    """Zero-filled output buffer: pooled when a workspace is active."""
    workspace = current_workspace()
    if workspace is not None:
        return workspace.zeros(shape, dtype)
    return np.zeros(shape, dtype=dtype)


def _pool_empty(shape, dtype) -> np.ndarray:
    """Uninitialized scratch buffer: pooled when a workspace is active."""
    workspace = current_workspace()
    if workspace is not None:
        return workspace.empty(shape, dtype)
    return np.empty(shape, dtype=dtype)


@contextmanager
def compute_scope(mode: str):
    """Select the kernel implementation for this thread.

    ``"fused"`` routes ``F.linear`` through the single-node fused
    matmul+bias kernel; ``"legacy"`` keeps the original per-op tape nodes.
    Segment reductions are selected per-batch by the presence of an
    :class:`~repro.tensor.plan.AggregationPlan` on the MFG instead.
    """
    if mode not in ("fused", "legacy"):
        raise ValueError(f"unknown compute mode {mode!r}")
    previous = getattr(_LOCAL, "compute", "legacy")
    _LOCAL.compute = mode
    try:
        yield
    finally:
        _LOCAL.compute = previous


def is_fused_compute() -> bool:
    """Whether the current thread is inside ``compute_scope("fused")``."""
    return getattr(_LOCAL, "compute", "legacy") == "fused"
