"""Greedy BFS graph partitioner (METIS-lite).

The paper's future-work section points at distributed graph storage, where
partition quality (edge cut, balance, and multi-hop sampling cost) matters.
DistDGL (a Table 7 comparator) partitions with METIS. We implement a
balanced BFS-growth partitioner with a refinement pass — not METIS-quality,
but it produces the same qualitative trade-offs, and the perf model's
cluster experiments consume its edge-cut statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .csr import CSRGraph

__all__ = ["Partition", "bfs_partition", "random_partition", "edge_cut"]


@dataclass
class Partition:
    """Result of a k-way partitioning."""

    assignment: np.ndarray  # (n,) part id per node
    num_parts: int

    def part_sizes(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.num_parts)

    def imbalance(self) -> float:
        """max part size / ideal part size; 1.0 is perfectly balanced."""
        sizes = self.part_sizes()
        ideal = len(self.assignment) / self.num_parts
        return float(sizes.max() / ideal) if ideal > 0 else 1.0


def edge_cut(graph: CSRGraph, assignment: np.ndarray) -> int:
    """Number of edges whose endpoints live in different parts.

    Counts each undirected edge once (directed edges halved).
    """
    edge_index = graph.edge_index()
    cut = assignment[edge_index[0]] != assignment[edge_index[1]]
    return int(cut.sum()) // 2 if graph.is_undirected() else int(cut.sum())


def random_partition(
    graph: CSRGraph, num_parts: int, rng: Optional[np.random.Generator] = None
) -> Partition:
    """Uniform random balanced partition (the edge-cut worst-case baseline)."""
    rng = rng or np.random.default_rng()
    ids = np.arange(graph.num_nodes) % num_parts
    rng.shuffle(ids)
    return Partition(assignment=ids, num_parts=num_parts)


def bfs_partition(
    graph: CSRGraph,
    num_parts: int,
    rng: Optional[np.random.Generator] = None,
    refine_passes: int = 1,
) -> Partition:
    """Balanced BFS-growth partitioning with boundary refinement.

    Seeds one BFS frontier per part and grows them round-robin, so parts are
    connected and balanced. ``refine_passes`` rounds of greedy boundary
    moves then reduce edge cut without violating a 10% balance slack.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    rng = rng or np.random.default_rng()
    n = graph.num_nodes
    assignment = np.full(n, -1, dtype=np.int64)
    capacity = int(np.ceil(n / num_parts))

    seeds = rng.choice(n, size=min(num_parts, n), replace=False)
    frontiers = [deque([int(s)]) for s in seeds]
    sizes = np.zeros(num_parts, dtype=np.int64)
    remaining = n

    while remaining > 0:
        progressed = False
        for part in range(num_parts):
            if sizes[part] >= capacity:
                continue
            queue = frontiers[part]
            while queue:
                v = queue.popleft()
                if assignment[v] != -1:
                    continue
                assignment[v] = part
                sizes[part] += 1
                remaining -= 1
                progressed = True
                for u in graph.neighbors(v):
                    if assignment[u] == -1:
                        queue.append(int(u))
                break
        if not progressed:
            # Disconnected leftovers: reseed the smallest part.
            unassigned = np.flatnonzero(assignment == -1)
            if len(unassigned) == 0:
                break
            part = int(np.argmin(sizes))
            frontiers[part].append(int(rng.choice(unassigned)))

    for _ in range(refine_passes):
        _refine(graph, assignment, num_parts, capacity)
    return Partition(assignment=assignment, num_parts=num_parts)


def _refine(
    graph: CSRGraph, assignment: np.ndarray, num_parts: int, capacity: int
) -> None:
    """One pass of greedy boundary moves (Kernighan-Lin flavored)."""
    sizes = np.bincount(assignment, minlength=num_parts)
    slack = int(capacity * 1.1)
    for v in range(graph.num_nodes):
        nbrs = graph.neighbors(v)
        if len(nbrs) == 0:
            continue
        current = assignment[v]
        counts = np.bincount(assignment[nbrs], minlength=num_parts)
        best = int(np.argmax(counts))
        if best != current and counts[best] > counts[current] and sizes[best] < slack:
            assignment[v] = best
            sizes[current] -= 1
            sizes[best] += 1
