"""Distributed-sampling cost model (Section 8 future work).

The paper's closing discussion: distributing graph and node data requires
partitioning whose objective "may consider not only edge cut and load
balance but also the cost of multi-hop neighborhood sampling", and
"sampling approaches will need to be re-investigated in a distributed
environment, to minimize communication".

This module quantifies exactly that trade-off on our substrate: given a
partition, :func:`sampling_communication` replays node-wise multi-hop
sampling and measures how many sampled nodes (feature fetches) and edges
(adjacency lookups) cross partition boundaries — the communication volume a
distributed sampler would pay. The extension bench compares random,
BFS-grown and community-aware partitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .csr import CSRGraph
from .partition import Partition, edge_cut

__all__ = ["SamplingCommStats", "sampling_communication", "partition_quality_report"]


@dataclass
class SamplingCommStats:
    """Communication profile of sampled mini-batches under a partition."""

    num_batches: int
    total_sampled_nodes: int
    remote_feature_fetches: int  # sampled nodes living off the batch's home part
    total_sampled_edges: int
    remote_adjacency_lookups: int  # expansions of nodes stored remotely
    feature_bytes_per_node: int = 0

    @property
    def remote_node_fraction(self) -> float:
        if self.total_sampled_nodes == 0:
            return 0.0
        return self.remote_feature_fetches / self.total_sampled_nodes

    @property
    def remote_edge_fraction(self) -> float:
        if self.total_sampled_edges == 0:
            return 0.0
        return self.remote_adjacency_lookups / self.total_sampled_edges

    def comm_bytes_per_epoch(self) -> int:
        """Feature bytes crossing the network per epoch (lower bound)."""
        return self.remote_feature_fetches * self.feature_bytes_per_node


def sampling_communication(
    graph: CSRGraph,
    partition: Partition,
    train_nodes: np.ndarray,
    fanouts: Sequence[Optional[int]],
    batch_size: int,
    feature_bytes_per_node: int = 0,
    rng: Optional[np.random.Generator] = None,
    max_batches: Optional[int] = None,
) -> SamplingCommStats:
    """Replay an epoch of sampling and count cross-partition traffic.

    Each mini-batch is "homed" on the partition owning the majority of its
    target nodes (DistDGL's locality assumption); every sampled node stored
    elsewhere costs a remote feature fetch, and every expansion of a
    remotely-stored node costs a remote adjacency lookup.
    """
    # Imported lazily: repro.graph must not depend on repro.sampling at
    # module import time (repro.sampling builds on repro.graph).
    from ..sampling.base import BatchIterator
    from ..sampling.fast_sampler import FastNeighborSampler

    rng = rng or np.random.default_rng(0)
    sampler = FastNeighborSampler(graph, list(fanouts))
    assignment = partition.assignment

    stats = SamplingCommStats(
        num_batches=0,
        total_sampled_nodes=0,
        remote_feature_fetches=0,
        total_sampled_edges=0,
        remote_adjacency_lookups=0,
        feature_bytes_per_node=feature_bytes_per_node,
    )
    for batch in BatchIterator(train_nodes, batch_size, shuffle=True, rng=rng):
        if max_batches is not None and stats.num_batches >= max_batches:
            break
        mfg = sampler.sample(batch, rng)
        home = int(np.bincount(assignment[batch]).argmax())
        node_parts = assignment[mfg.n_id]
        stats.num_batches += 1
        stats.total_sampled_nodes += len(mfg.n_id)
        stats.remote_feature_fetches += int((node_parts != home).sum())
        for adj in mfg.adjs:
            dst_global = mfg.n_id[adj.edge_index[1]]
            remote_dst = assignment[dst_global] != home
            stats.total_sampled_edges += adj.num_edges
            stats.remote_adjacency_lookups += int(remote_dst.sum())
    return stats


def partition_quality_report(
    graph: CSRGraph,
    partitions: dict[str, Partition],
    train_nodes: np.ndarray,
    fanouts: Sequence[Optional[int]],
    batch_size: int,
    feature_bytes_per_node: int,
    rng: Optional[np.random.Generator] = None,
    max_batches: int = 8,
) -> list[dict]:
    """Rows comparing partitioning strategies on static + sampling metrics."""
    rows = []
    for name, partition in partitions.items():
        comm = sampling_communication(
            graph,
            partition,
            train_nodes,
            fanouts,
            batch_size,
            feature_bytes_per_node=feature_bytes_per_node,
            rng=rng or np.random.default_rng(0),
            max_batches=max_batches,
        )
        rows.append(
            {
                "partition": name,
                "edge_cut": edge_cut(graph, partition.assignment),
                "imbalance": round(partition.imbalance(), 3),
                "remote_node_frac": round(comm.remote_node_fraction, 3),
                "remote_edge_frac": round(comm.remote_edge_fraction, 3),
                "comm_MB_per_epoch": round(comm.comm_bytes_per_epoch() / 1e6, 2),
            }
        )
    return rows
