"""Compressed sparse row (CSR) graph storage.

The entire system — samplers, slicers, generators — operates on this
structure, mirroring the role of ``torch_sparse.SparseTensor`` in the
original SALIENT code. Adjacency is stored as two int arrays:

- ``indptr``:  shape ``(num_nodes + 1,)``; neighbors of node ``v`` live in
  ``indices[indptr[v]:indptr[v+1]]``.
- ``indices``: shape ``(num_edges,)``; flattened adjacency lists.

Edges are directed ``v -> indices[...]`` ("outgoing" adjacency). For GNN
message passing the convention is that ``neighbors(v)`` returns the nodes
whose representations ``v`` aggregates, i.e. in-neighbors of ``v`` in the
message-flow sense; building the graph undirected (as the paper does for all
datasets) makes the distinction moot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

__all__ = ["CSRGraph"]


@dataclass
class CSRGraph:
    """Immutable CSR adjacency structure."""

    indptr: np.ndarray
    indices: np.ndarray
    num_nodes: int = field(default=-1)

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        if self.num_nodes < 0:
            self.num_nodes = len(self.indptr) - 1
        self.validate()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D")
        if len(self.indptr) != self.num_nodes + 1:
            raise ValueError(
                f"indptr length {len(self.indptr)} != num_nodes+1 ({self.num_nodes + 1})"
            )
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if self.indptr[-1] != len(self.indices):
            raise ValueError(
                f"indptr[-1]={self.indptr[-1]} != num_edges ({len(self.indices)})"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.num_nodes
        ):
            raise ValueError("indices contain out-of-range node ids")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(len(self.indices))

    def degree(self, v: Optional[int] = None) -> np.ndarray | int:
        """Out-degree of node ``v``, or the full degree vector if None."""
        if v is None:
            return np.diff(self.indptr)
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor ids of node ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over (src, dst) pairs. O(E); intended for tests/tools."""
        for v in range(self.num_nodes):
            for u in self.neighbors(v):
                yield (v, int(u))

    def edge_index(self) -> np.ndarray:
        """Return a ``(2, E)`` COO edge array (src row, dst row)."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degree())
        return np.stack([src, self.indices])

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """Return the graph with all edges reversed (CSC of this one)."""
        order = np.argsort(self.indices, kind="stable")
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degree())
        new_indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        counts = np.bincount(self.indices, minlength=self.num_nodes)
        np.cumsum(counts, out=new_indptr[1:])
        return CSRGraph(new_indptr, src[order], self.num_nodes)

    def induced_subgraph(self, nodes: np.ndarray) -> tuple["CSRGraph", np.ndarray]:
        """Subgraph induced on ``nodes``; returns (subgraph, node mapping).

        The returned graph relabels ``nodes[i] -> i``. The second return value
        is ``nodes`` itself (the local->global mapping), for symmetry with the
        samplers' MFG output.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        global_to_local = np.full(self.num_nodes, -1, dtype=np.int64)
        global_to_local[nodes] = np.arange(len(nodes))
        sub_indptr = [0]
        sub_indices: list[np.ndarray] = []
        total = 0
        for v in nodes:
            nbrs = self.neighbors(int(v))
            local = global_to_local[nbrs]
            kept = local[local >= 0]
            sub_indices.append(kept)
            total += len(kept)
            sub_indptr.append(total)
        indices = (
            np.concatenate(sub_indices) if sub_indices else np.empty(0, dtype=np.int64)
        )
        return (
            CSRGraph(np.asarray(sub_indptr, dtype=np.int64), indices, len(nodes)),
            nodes,
        )

    def is_undirected(self) -> bool:
        """True if for every edge (u, v) the reverse edge (v, u) exists."""
        fwd = self.edge_index()
        key_fwd = fwd[0] * self.num_nodes + fwd[1]
        key_rev = fwd[1] * self.num_nodes + fwd[0]
        return bool(np.array_equal(np.sort(key_fwd), np.sort(key_rev)))

    def memory_bytes(self) -> int:
        """Bytes consumed by the adjacency arrays (for the perf model)."""
        return self.indptr.nbytes + self.indices.nbytes

    def __repr__(self) -> str:
        return f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"
