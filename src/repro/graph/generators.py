"""Synthetic graph generators.

The centerpiece is :func:`power_law_community_graph`, a Chung-Lu-style
generator with planted communities and *degree-dependent mixing*: hub nodes
draw a larger fraction of their edges from outside their own community. This
reproduces two properties the paper's evaluation depends on:

1. heavy-tailed degree distributions (which make neighborhood explosion and
   sampler performance realistic), and
2. the Figure-3 phenomenon that high-degree nodes are predicted *less*
   accurately under full-neighborhood inference (their neighborhoods are
   noisier), while low-degree nodes are predicted well even with small
   sampling fanouts.

Small deterministic generators (star/chain/grid/complete) support the test
suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .build import from_edge_index, remove_self_loops, to_undirected_edge_index
from .csr import CSRGraph

__all__ = [
    "CommunityGraph",
    "power_law_community_graph",
    "erdos_renyi_graph",
    "star_graph",
    "chain_graph",
    "complete_graph",
    "grid_graph",
]


@dataclass
class CommunityGraph:
    """A generated graph together with its planted structure."""

    graph: CSRGraph
    communities: np.ndarray  # (n,) int community / class id per node
    weights: np.ndarray  # (n,) Chung-Lu expected-degree weights


def _power_law_weights(
    n: int, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Zipf-like weights producing a power-law expected degree sequence."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    rng.shuffle(weights)  # decouple node id from degree rank
    return weights


def power_law_community_graph(
    num_nodes: int,
    avg_degree: float,
    num_communities: int = 8,
    exponent: float = 2.5,
    intra_prob: float = 0.85,
    hub_mixing: float = 0.6,
    rng: Optional[np.random.Generator] = None,
) -> CommunityGraph:
    """Generate an undirected power-law graph with planted communities.

    Parameters
    ----------
    num_nodes, avg_degree:
        Size controls. ``avg_degree`` counts undirected edge endpoints, i.e.
        ``num_edges ~ num_nodes * avg_degree / 2`` before symmetrization.
    num_communities:
        Number of planted communities == number of classes downstream.
    exponent:
        Power-law exponent of the expected-degree distribution (2 < e <= 3.5
        is realistic; OGB graphs are around 2.3-3).
    intra_prob:
        Baseline probability that an edge stays inside its source community.
    hub_mixing:
        How much an endpoint's (normalized) weight reduces ``intra_prob``;
        at 0 the mixing is degree-independent, at 1 the heaviest hub mixes
        uniformly.
    """
    if num_nodes < num_communities:
        raise ValueError("need at least one node per community")
    if not 0.0 <= intra_prob <= 1.0 or not 0.0 <= hub_mixing <= 1.0:
        raise ValueError("intra_prob and hub_mixing must be in [0, 1]")
    rng = rng or np.random.default_rng()

    weights = _power_law_weights(num_nodes, exponent, rng)
    prob = weights / weights.sum()
    communities = rng.integers(0, num_communities, size=num_nodes)

    # Per-community member lists and sampling distributions.
    members: list[np.ndarray] = []
    member_probs: list[np.ndarray] = []
    for c in range(num_communities):
        idx = np.flatnonzero(communities == c)
        if len(idx) == 0:  # extremely unlikely; patch with a random node
            idx = rng.integers(0, num_nodes, size=1)
            communities[idx] = c
        members.append(idx)
        w = weights[idx]
        member_probs.append(w / w.sum())

    num_draws = int(num_nodes * avg_degree / 2)
    src = rng.choice(num_nodes, size=num_draws, p=prob)

    # Degree-dependent mixing: hubs (large weight) leak across communities.
    w_norm = weights / weights.max()
    p_intra = intra_prob * (1.0 - hub_mixing * w_norm[src])
    intra = rng.random(num_draws) < p_intra

    dst = np.empty(num_draws, dtype=np.int64)
    inter_idx = np.flatnonzero(~intra)
    if len(inter_idx):
        dst[inter_idx] = rng.choice(num_nodes, size=len(inter_idx), p=prob)
    # Group intra edges by the source's community and sample within it.
    intra_idx = np.flatnonzero(intra)
    if len(intra_idx):
        src_comm = communities[src[intra_idx]]
        order = np.argsort(src_comm, kind="stable")
        sorted_edges = intra_idx[order]
        sorted_comm = src_comm[order]
        boundaries = np.flatnonzero(np.diff(sorted_comm)) + 1
        for chunk, comm in zip(
            np.split(sorted_edges, boundaries),
            np.concatenate([[sorted_comm[0]], sorted_comm[boundaries]]),
        ):
            pool = members[comm]
            dst[chunk] = pool[rng.choice(len(pool), size=len(chunk), p=member_probs[comm])]

    edge_index = remove_self_loops(np.stack([src, dst]))
    edge_index = to_undirected_edge_index(edge_index, num_nodes)
    graph = from_edge_index(edge_index, num_nodes, coalesce=False)
    return CommunityGraph(graph=graph, communities=communities, weights=weights)


def erdos_renyi_graph(
    num_nodes: int, edge_prob: float, rng: Optional[np.random.Generator] = None
) -> CSRGraph:
    """G(n, p) undirected random graph (vectorized upper-triangle sampling)."""
    rng = rng or np.random.default_rng()
    iu = np.triu_indices(num_nodes, k=1)
    mask = rng.random(len(iu[0])) < edge_prob
    edge_index = np.stack([iu[0][mask], iu[1][mask]]).astype(np.int64)
    edge_index = to_undirected_edge_index(edge_index, num_nodes)
    return from_edge_index(edge_index, num_nodes, coalesce=False)


def star_graph(num_leaves: int) -> CSRGraph:
    """Node 0 connected to ``num_leaves`` leaves, undirected."""
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    hub = np.zeros(num_leaves, dtype=np.int64)
    edge_index = np.stack([hub, leaves])
    return from_edge_index(edge_index, num_leaves + 1, undirected=True)


def chain_graph(num_nodes: int) -> CSRGraph:
    """Path graph 0-1-2-...-(n-1), undirected."""
    src = np.arange(num_nodes - 1, dtype=np.int64)
    edge_index = np.stack([src, src + 1])
    return from_edge_index(edge_index, num_nodes, undirected=True)


def complete_graph(num_nodes: int) -> CSRGraph:
    """K_n without self loops."""
    src, dst = np.meshgrid(np.arange(num_nodes), np.arange(num_nodes))
    edge_index = np.stack([src.ravel(), dst.ravel()]).astype(np.int64)
    edge_index = remove_self_loops(edge_index)
    return from_edge_index(edge_index, num_nodes, coalesce=False)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """4-connected grid of ``rows x cols`` nodes."""
    ids = np.arange(rows * cols).reshape(rows, cols)
    right = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    down = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    edge_index = np.concatenate([right, down], axis=1).astype(np.int64)
    return from_edge_index(edge_index, rows * cols, undirected=True)
