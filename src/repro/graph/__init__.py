"""Graph substrate: CSR storage, builders, generators, partitioning."""

from .build import (
    add_self_loops,
    coalesce_edge_index,
    from_edge_index,
    remove_self_loops,
    to_undirected_edge_index,
)
from .csr import CSRGraph
from .generators import (
    CommunityGraph,
    chain_graph,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    power_law_community_graph,
    star_graph,
)
from .distributed import (
    SamplingCommStats,
    partition_quality_report,
    sampling_communication,
)
from .partition import Partition, bfs_partition, edge_cut, random_partition

__all__ = [
    "CSRGraph",
    "from_edge_index",
    "to_undirected_edge_index",
    "coalesce_edge_index",
    "remove_self_loops",
    "add_self_loops",
    "CommunityGraph",
    "power_law_community_graph",
    "erdos_renyi_graph",
    "star_graph",
    "chain_graph",
    "complete_graph",
    "grid_graph",
    "Partition",
    "bfs_partition",
    "random_partition",
    "edge_cut",
    "SamplingCommStats",
    "sampling_communication",
    "partition_quality_report",
]
