"""Graph construction utilities: COO -> CSR, undirected closure, coalescing.

All builders are vectorized (sort + cumsum based); no Python-level edge
loops, per the ml-systems guide.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "from_edge_index",
    "to_undirected_edge_index",
    "coalesce_edge_index",
    "remove_self_loops",
    "add_self_loops",
]


def _check_edge_index(edge_index: np.ndarray) -> np.ndarray:
    edge_index = np.asarray(edge_index, dtype=np.int64)
    if edge_index.ndim != 2 or edge_index.shape[0] != 2:
        raise ValueError(f"edge_index must have shape (2, E), got {edge_index.shape}")
    return edge_index


def coalesce_edge_index(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Sort edges by (src, dst) and drop duplicates."""
    edge_index = _check_edge_index(edge_index)
    if edge_index.shape[1] == 0:
        return edge_index
    key = edge_index[0] * num_nodes + edge_index[1]
    unique_key = np.unique(key)
    return np.stack([unique_key // num_nodes, unique_key % num_nodes])


def remove_self_loops(edge_index: np.ndarray) -> np.ndarray:
    edge_index = _check_edge_index(edge_index)
    mask = edge_index[0] != edge_index[1]
    return edge_index[:, mask]


def add_self_loops(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    edge_index = _check_edge_index(edge_index)
    loops = np.arange(num_nodes, dtype=np.int64)
    return np.concatenate([edge_index, np.stack([loops, loops])], axis=1)


def to_undirected_edge_index(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Symmetrize: add each edge's reverse and coalesce duplicates.

    Matches the paper's preprocessing ("all graphs were made undirected").
    """
    edge_index = _check_edge_index(edge_index)
    both = np.concatenate([edge_index, edge_index[::-1]], axis=1)
    return coalesce_edge_index(both, num_nodes)


def from_edge_index(
    edge_index: np.ndarray,
    num_nodes: int,
    undirected: bool = False,
    coalesce: bool = True,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from a ``(2, E)`` COO edge array."""
    edge_index = _check_edge_index(edge_index)
    if edge_index.shape[1] and edge_index.max() >= num_nodes:
        raise ValueError("edge_index references nodes >= num_nodes")
    if undirected:
        edge_index = to_undirected_edge_index(edge_index, num_nodes)
    elif coalesce:
        edge_index = coalesce_edge_index(edge_index, num_nodes)
    src, dst = edge_index
    order = np.argsort(src, kind="stable")
    sorted_dst = dst[order]
    counts = np.bincount(src, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, sorted_dst, num_nodes)
