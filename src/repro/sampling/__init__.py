"""Neighborhood sampling: MFG structures and sampler backends.

- :class:`PyGNeighborSampler` — dict/hash-set reference (the baseline whose
  bottlenecks Section 3 profiles).
- :class:`FastNeighborSampler` — SALIENT's optimized sampler (Section 4.1).
- :class:`ParameterizedSampler` — the 96-variant design space of Figure 2.
"""

from .arena import (
    SamplerArena,
    expand_frontier_arena,
    first_occurrence_dedup,
    gather_frontier_edges,
)
from .base import BatchIterator, NeighborSamplerBase, full_fanouts
from .design_space import (
    BASELINE_VARIANT,
    WINNING_VARIANT,
    ParameterizedSampler,
    SamplerVariant,
    all_variants,
    expand_hop,
)
from .fast_sampler import FastNeighborSampler, expand_frontier_vectorized
from .layerwise import FastGCNSampler, LadiesSampler, weighted_segment_mean
from .lazy import CacheRestrictedSampler, LazySamplerSchedule
from .mfg import MFG, Adj
from .pyg_sampler import PyGNeighborSampler, sample_adj_reference
from .subgraph import (
    ClusterSubgraphSampler,
    RandomNodeSubgraphSampler,
    RandomWalkSubgraphSampler,
    SampledSubgraph,
)

__all__ = [
    "MFG",
    "Adj",
    "NeighborSamplerBase",
    "BatchIterator",
    "full_fanouts",
    "PyGNeighborSampler",
    "sample_adj_reference",
    "FastNeighborSampler",
    "expand_frontier_vectorized",
    "SamplerArena",
    "expand_frontier_arena",
    "first_occurrence_dedup",
    "gather_frontier_edges",
    "ParameterizedSampler",
    "SamplerVariant",
    "all_variants",
    "expand_hop",
    "BASELINE_VARIANT",
    "WINNING_VARIANT",
    "FastGCNSampler",
    "LadiesSampler",
    "weighted_segment_mean",
    "LazySamplerSchedule",
    "CacheRestrictedSampler",
    "SampledSubgraph",
    "RandomNodeSubgraphSampler",
    "RandomWalkSubgraphSampler",
    "ClusterSubgraphSampler",
]
