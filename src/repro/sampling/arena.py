"""Reusable sampling/slicing arena: persistent scratch buffers + O(D) kernels.

SALIENT's C++ sampler owes much of its speed to *not allocating*: every
thread owns a bundle of persistent, growable buffers that survive across
batches, and each hop is a fixed number of flat-array passes over them.
This module is the numpy translation of that discipline:

- :class:`SamplerArena` — named, growable, persistent ``int64``/``float64``/
  ``bool`` buffers with a shared iota (``arange``) cache.  A buffer is
  allocated (or doubled) only when a hop needs more capacity than any
  previous hop did; after warm-up the arena performs **zero** allocations
  per batch, which the attached :class:`~repro.telemetry.Counters` can
  prove (``arena_grow_count`` stays flat).
- :func:`gather_frontier_edges` — candidate-edge gather (CSR rows of the
  frontier) built from in-place cumsum/fill kernels instead of fresh
  ``np.repeat``/``np.arange`` arrays.
- :func:`expand_frontier_arena` — fanout selection with a *split path*:
  under-degree segments (degree <= fanout) are copied through verbatim and
  only the over-degree remainder is sorted.  Sorting uses a single stable
  argsort of the composite key ``dst + key`` (see note below) instead of a
  two-pass ``lexsort``, which is the single largest win on this substrate.
- :func:`first_occurrence_dedup` — O(D) discovery-order deduplication
  driven by the persistent global->local map, replacing the previous
  ``np.unique`` (an O(D log D) sort).

Composite-key note: candidate edges are grouped by destination segment and
random keys live in ``[0, 1)``, so sorting the float64 composite
``dst_local + key`` with a *stable* sort orders edges by ``(dst, key)``
exactly like ``np.lexsort((key, dst))`` — float addition is monotone, so
the only way the two can disagree is two keys in one segment colliding
within one ulp of the composite (< 2^-40 per pair; never observed, and the
determinism suite pins exact equality for its seeds).  One stable argsort
is ~5-10x faster than ``lexsort``'s two merge sorts.

Output order note: both the legacy sort path and the arena split path emit
selected edges in *canonical adjacency order* (ascending candidate-edge
position), so the copy-through and sort sub-paths — and the legacy and
arena samplers — produce byte-identical MFGs for a shared RNG stream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..telemetry import Counters, MetricsRegistry

__all__ = [
    "SamplerArena",
    "gather_frontier_edges",
    "expand_frontier_arena",
    "first_occurrence_dedup",
    "SORT_FALLBACK_FRACTION",
]

#: When more than this fraction of candidate edges belongs to over-degree
#: segments, splitting buys nothing: sort everything (the legacy shape,
#: minus the lexsort).  Both paths produce identical output.
SORT_FALLBACK_FRACTION = 0.9


class SamplerArena:
    """A bundle of named, growable, persistent scratch buffers.

    ``request(name, size, dtype)`` returns a length-``size`` view of the
    buffer registered under ``name``, allocating or doubling it only when
    capacity is exceeded.  Views are valid until the next ``request`` of
    the same name; kernels request each name at most once per hop.
    """

    def __init__(
        self,
        counters: Optional[Counters] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._iota: Optional[np.ndarray] = None
        self.counters = counters if counters is not None else Counters()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.grow_count = 0

    def attach_counters(self, counters: Counters) -> None:
        """Redirect telemetry to a shared (e.g. per-pool) counter set."""
        self.counters = counters

    def attach_metrics(self, metrics: MetricsRegistry) -> None:
        """Redirect metric observations to a shared registry."""
        self.metrics = metrics

    def _record_grow(self, nbytes: int) -> None:
        self.grow_count += 1
        self.counters.inc("arena_grow_count")
        self.counters.inc("arena_grow_bytes", nbytes)
        self.metrics.counter("arena_grows").inc()
        self.metrics.gauge("arena_bytes").set(float(self.nbytes()))

    def request(self, name: str, size: int, dtype=np.int64) -> np.ndarray:
        buf = self._buffers.get(name)
        if buf is None or buf.shape[0] < size or buf.dtype != np.dtype(dtype):
            capacity = max(size, 0 if buf is None else 2 * buf.shape[0])
            buf = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buf
            self._record_grow(buf.nbytes)
        return buf[:size]

    def iota(self, size: int) -> np.ndarray:
        """A persistent ``arange(size)`` prefix (read-only by convention)."""
        if self._iota is None or self._iota.shape[0] < size:
            capacity = max(size, 0 if self._iota is None else 2 * self._iota.shape[0])
            self._iota = np.arange(capacity, dtype=np.int64)
            self._record_grow(self._iota.nbytes)
        return self._iota[:size]

    def nbytes(self) -> int:
        total = sum(buf.nbytes for buf in self._buffers.values())
        if self._iota is not None:
            total += self._iota.nbytes
        return total

    def buffer_names(self) -> list[str]:
        return sorted(self._buffers)


def _fill_repeat(
    values: np.ndarray,
    degrees: np.ndarray,
    seg_starts: np.ndarray,
    total: int,
    out: np.ndarray,
) -> None:
    """``out[:total] = np.repeat(values, degrees)`` without a fresh array.

    Writes per-segment increments at segment boundaries and integrates with
    an in-place cumsum.  Zero-degree segments contribute nothing; the
    boundary positions of non-empty segments are strictly increasing, so
    plain fancy assignment (not ``add.at``) suffices.
    """
    view = out[:total]
    view[:] = 0
    nonzero = degrees > 0
    if not nonzero.any():
        return
    starts = seg_starts[nonzero]
    vals = values[nonzero]
    view[starts[0]] = vals[0]
    if len(starts) > 1:
        view[starts[1:]] = vals[1:] - vals[:-1]
    np.cumsum(view, out=view)


def gather_frontier_edges(
    graph: CSRGraph, frontier: np.ndarray, arena: SamplerArena
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """All incident candidate edges of ``frontier``, gathered into the arena.

    Returns ``(src_global, dst_local, degrees, total)`` where the first two
    are arena views of length ``total`` in adjacency (canonical) order.
    """
    indptr, indices = graph.indptr, graph.indices
    n_frontier = len(frontier)
    degrees = arena.request("degrees", n_frontier)
    row_starts = arena.request("row_starts", n_frontier)
    np.take(indptr, frontier, out=row_starts)
    np.take(indptr[1:], frontier, out=degrees)
    np.subtract(degrees, row_starts, out=degrees)
    total = int(degrees.sum())
    if total == 0:
        empty = arena.request("src_global", 0)
        return empty, arena.request("dst_local", 0), degrees, 0

    seg_starts = arena.request("seg_starts", n_frontier)
    np.cumsum(degrees, out=seg_starts)
    np.subtract(seg_starts, degrees, out=seg_starts)  # exclusive prefix sum

    # Edge offset into ``indices``: row_start[seg] + (e - seg_start[seg]),
    # built as iota + repeat(row_start - seg_start, degrees).
    edge_offsets = arena.request("edge_offsets", total)
    np.subtract(row_starts, seg_starts, out=row_starts)  # reuse as bias
    _fill_repeat(row_starts, degrees, seg_starts, total, edge_offsets)
    np.add(edge_offsets, arena.iota(total), out=edge_offsets)

    src_global = arena.request("src_global", total)
    np.take(indices, edge_offsets, out=src_global)
    dst_local = arena.request("dst_local", total)
    _fill_repeat(arena.iota(n_frontier), degrees, seg_starts, total, dst_local)
    return src_global, dst_local, degrees, total


def _select_over_degree(
    composite: np.ndarray,
    over_idx: np.ndarray,
    over_degrees: np.ndarray,
    fanout: int,
    keep: np.ndarray,
    arena: SamplerArena,
) -> None:
    """Mark the ``fanout`` smallest-composite edges of each over-degree
    segment in ``keep`` (edge-domain boolean mask)."""
    n_over = len(over_idx)
    over_comp = arena.request("over_comp", n_over, np.float64)
    np.take(composite, over_idx, out=over_comp)
    order = np.argsort(over_comp, kind="stable")
    # In sorted order edges are grouped by segment (composite's integer part
    # is the destination), so rank-in-segment is position minus the
    # segment's exclusive prefix sum; every segment here is over-degree, so
    # the cap is simply ``fanout``.
    over_seg_starts = arena.request("over_seg_starts", len(over_degrees))
    np.cumsum(over_degrees, out=over_seg_starts)
    np.subtract(over_seg_starts, over_degrees, out=over_seg_starts)
    rank = arena.request("over_rank", n_over)
    _fill_repeat(over_seg_starts, over_degrees, over_seg_starts, n_over, rank)
    np.subtract(arena.iota(n_over), rank, out=rank)
    keep_sorted = arena.request("keep_sorted", n_over, bool)
    np.less(rank, fanout, out=keep_sorted)
    n_sel = int(np.count_nonzero(keep_sorted))
    sel_in_subset = arena.request("sel_in_subset", n_sel)
    np.compress(keep_sorted, order, out=sel_in_subset)
    sel_edges = arena.request("sel_edges", n_sel)
    np.take(over_idx, sel_in_subset, out=sel_edges)
    keep[sel_edges] = True


def expand_frontier_arena(
    graph: CSRGraph,
    frontier: np.ndarray,
    fanout: Optional[int],
    rng: np.random.Generator,
    arena: SamplerArena,
) -> tuple[np.ndarray, np.ndarray]:
    """One-hop uniform without-replacement expansion on arena buffers.

    Returns ``(src_global, dst_local)`` arena views for the selected edges
    in canonical adjacency order.  Consumes the RNG stream exactly like the
    legacy :func:`~repro.sampling.fast_sampler.expand_frontier_vectorized`
    (one uniform key per candidate edge whenever any segment exceeds the
    fanout), so both produce identical selections for a shared generator.
    """
    counters = arena.counters
    src_global, dst_local, degrees, total = gather_frontier_edges(
        graph, frontier, arena
    )
    if fanout is None or total == 0 or int(degrees.max()) <= fanout:
        counters.inc("sampler_edges_copy_path", total)
        return src_global, dst_local

    keys = arena.request("keys", total, np.float64)
    rng.random(out=keys)
    composite = arena.request("composite", total, np.float64)
    np.add(dst_local, keys, out=composite)

    keep = arena.request("keep", total, bool)
    deg_of_edge = arena.request("deg_of_edge", total)
    np.take(degrees, dst_local, out=deg_of_edge)
    over_edge = arena.request("over_edge", total, bool)
    np.greater(deg_of_edge, fanout, out=over_edge)
    n_over = int(np.count_nonzero(over_edge))

    if n_over >= SORT_FALLBACK_FRACTION * total:
        # Nearly everything needs sorting: fall back to one whole-array sort
        # (the legacy shape, minus the lexsort).  Identical output.
        counters.inc("sampler_edges_sort_path", total)
        keep[:] = False
        order = np.argsort(composite, kind="stable")
        seg_starts = arena.request("seg_starts_sorted", len(degrees))
        np.cumsum(degrees, out=seg_starts)
        np.subtract(seg_starts, degrees, out=seg_starts)
        rank = arena.request("over_rank", total)
        _fill_repeat(seg_starts, degrees, seg_starts, total, rank)
        np.subtract(arena.iota(total), rank, out=rank)
        cap = arena.request("cap", len(degrees))
        np.minimum(degrees, fanout, out=cap)
        cap_rep = arena.request("cap_rep", total)
        _fill_repeat(cap, degrees, seg_starts, total, cap_rep)
        keep_sorted = arena.request("keep_sorted", total, bool)
        np.less(rank, cap_rep, out=keep_sorted)
        n_sel = int(np.count_nonzero(keep_sorted))
        sel_edges = arena.request("sel_edges", n_sel)
        np.compress(keep_sorted, order, out=sel_edges)
        keep[sel_edges] = True
    else:
        # Split path: under-degree segments copy through verbatim; only the
        # over-degree remainder is sorted.
        counters.inc("sampler_edges_sort_path", n_over)
        counters.inc("sampler_edges_copy_path", total - n_over)
        np.logical_not(over_edge, out=keep)
        if n_over:
            over_idx = arena.request("over_idx", n_over)
            np.compress(over_edge, arena.iota(total), out=over_idx)
            over_seg = arena.request("over_seg_mask", len(degrees), bool)
            np.greater(degrees, fanout, out=over_seg)
            n_over_segs = int(np.count_nonzero(over_seg))
            over_degrees = arena.request("over_degrees", n_over_segs)
            np.compress(over_seg, degrees, out=over_degrees)
            _select_over_degree(
                composite, over_idx, over_degrees, fanout, keep, arena
            )

    n_keep = int(np.count_nonzero(keep))
    src_sel = arena.request("src_sel", n_keep)
    dst_sel = arena.request("dst_sel", n_keep)
    np.compress(keep, src_global, out=src_sel)
    np.compress(keep, dst_local, out=dst_sel)
    return src_sel, dst_sel


def first_occurrence_dedup(
    src_sel: np.ndarray,
    local_of: np.ndarray,
    base: int,
    arena: SamplerArena,
) -> tuple[np.ndarray, Optional[np.ndarray]]:
    """Remap selected sources to local ids, discovering new nodes in O(D).

    ``local_of`` is the persistent global->local map (−1 means unseen);
    ``base`` is the number of locals already assigned.  Returns
    ``(src_local, ordered_new)`` where ``src_local`` is an arena view and
    ``ordered_new`` is a *fresh* array of newly discovered globals in
    first-occurrence (discovery) order — exactly the order the previous
    ``np.unique``-based dedup produced, without its O(D log D) sort.

    The trick: write each new edge's position into ``local_of`` in
    *reversed* order, so fancy-assignment's last-write-wins semantics leave
    the first occurrence's position behind; an edge is a first occurrence
    iff the map returns its own position.  A cumulative count over that
    mask assigns dense discovery-ordered local ids.

    Callers must add ``ordered_new`` to their reset list: after this call
    ``local_of`` holds final local ids for exactly ``ordered_new``'s nodes.
    """
    n_edges = len(src_sel)
    src_local = arena.request("src_local", n_edges)
    np.take(local_of, src_sel, out=src_local)
    new_mask = arena.request("new_mask", n_edges, bool)
    np.less(src_local, 0, out=new_mask)
    n_new_edges = int(np.count_nonzero(new_mask))
    if n_new_edges == 0:
        return src_local, None

    new_globals = arena.request("new_globals", n_new_edges)
    np.compress(new_mask, src_sel, out=new_globals)
    positions = arena.request("new_positions", n_new_edges)
    np.compress(new_mask, arena.iota(n_edges), out=positions)
    # Reversed write: first occurrence's position survives.
    local_of[new_globals[::-1]] = positions[::-1]
    first_pos = arena.request("first_pos", n_new_edges)
    np.take(local_of, new_globals, out=first_pos)
    first_mask = arena.request("first_mask", n_new_edges, bool)
    np.equal(first_pos, positions, out=first_mask)
    # Fresh array: it escapes into the MFG's n_id.
    ordered_new = new_globals[first_mask]
    local_of[ordered_new] = base + np.arange(len(ordered_new), dtype=np.int64)
    np.take(local_of, src_sel, out=src_local)
    return src_local, ordered_new
