"""Layer-wise (importance) sampling: FastGCN / LADIES (Section 2.2).

The paper's background taxonomy contrasts node-wise sampling (what SALIENT
optimizes) with *layer-wise* approaches that sample one node set per layer
for the whole mini-batch, under an importance distribution, and rescale
messages by inverse probability to keep the pre-activation estimate
unbiased. This module implements both flavors as an extension:

- ``FastGCNSampler`` — layer-independent sampling with a fixed, global
  importance distribution (degree-proportional, as in Chen et al. 2018).
- ``LadiesSampler`` — layer-*dependent* sampling where the distribution is
  proportional to the squared number of connections into the current
  frontier (Zou et al. 2019), so sampled nodes are guaranteed useful.

Both emit standard MFGs whose layers carry ``edge_weight`` importance
corrections; :class:`repro.models.conv.SAGEConv` consumers can fold them
in via :func:`weighted_segment_mean`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from ..tensor import Tensor, functional as F
from .base import NeighborSamplerBase
from .fast_sampler import _gather_all_edges
from .mfg import MFG, Adj

__all__ = ["FastGCNSampler", "LadiesSampler", "weighted_segment_mean"]


def weighted_segment_mean(
    messages: Tensor, edge_weight: np.ndarray, index: np.ndarray, n_segments: int
) -> Tensor:
    """Importance-weighted mean aggregation.

    Computes ``sum_j w_j m_j / sum_j w_j`` per segment — the self-normalized
    importance estimator of the neighborhood mean used by layer-wise
    sampling methods.
    """
    weights = Tensor(edge_weight.astype(np.float32).reshape(-1, 1))
    weighted = messages * weights
    num = F.segment_sum(weighted, index, n_segments)
    den = F.segment_sum(weights, index, n_segments)
    den_safe = Tensor(np.maximum(den.data, 1e-12)) + (den - den.detach())
    return num / den_safe


class _LayerwiseBase(NeighborSamplerBase):
    """Shared machinery: fanouts act as per-layer *budgets*, not per-node."""

    def __init__(self, graph: CSRGraph, budgets: Sequence[int]) -> None:
        for budget in budgets:
            if budget is None:
                raise ValueError("layer-wise samplers need integer budgets")
        super().__init__(graph, budgets)

    def _layer_distribution(self, frontier: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def sample(self, batch_nodes: np.ndarray, rng: np.random.Generator) -> MFG:
        batch_nodes = np.asarray(batch_nodes, dtype=np.int64)
        if len(batch_nodes) == 0:
            raise ValueError("empty batch")
        indptr, indices = self.graph.indptr, self.graph.indices

        n_id = batch_nodes.copy()
        adjs: list[Adj] = []
        for budget in self.fanouts:
            # Candidate pool: union of the frontier's neighbors.
            src_global, dst_local, _ = _gather_all_edges(indptr, indices, n_id)
            if len(src_global) == 0:
                adjs.append(
                    Adj(
                        edge_index=np.empty((2, 0), dtype=np.int64),
                        e_id=None,
                        size=(len(n_id), len(n_id)),
                    )
                )
                continue
            candidates = np.setdiff1d(np.unique(src_global), n_id)
            probs = self._distribution_over(candidates, n_id)
            take = min(budget, len(candidates))
            if take > 0 and probs.sum() > 0:
                chosen = rng.choice(candidates, size=take, replace=False, p=probs)
            else:
                chosen = np.empty(0, dtype=np.int64)
            new_n_id = np.concatenate([n_id, np.sort(chosen)])

            # Keep candidate edges whose source landed in the sampled set.
            local_of = {int(v): i for i, v in enumerate(new_n_id)}
            keep = np.fromiter(
                (int(s) in local_of for s in src_global),
                count=len(src_global),
                dtype=bool,
            )
            src_local = np.fromiter(
                (local_of[int(s)] for s in src_global[keep]),
                count=int(keep.sum()),
                dtype=np.int64,
            )
            edge_index = np.stack([src_local, dst_local[keep]])
            # Inverse-probability weights for unbiased aggregation: frontier
            # nodes (kept deterministically) get weight 1.
            prob_of = dict(zip(candidates.tolist(), probs.tolist()))
            inv = np.array(
                [
                    1.0
                    if int(new_n_id[s]) in set(n_id.tolist())
                    else 1.0 / (max(prob_of.get(int(new_n_id[s]), 1.0), 1e-12) * take)
                    for s in src_local
                ],
                dtype=np.float32,
            )
            adj = Adj(edge_index=edge_index, e_id=None, size=(len(new_n_id), len(n_id)))
            adj.edge_weight = inv  # type: ignore[attr-defined]
            adjs.append(adj)
            n_id = new_n_id
        adjs.reverse()
        return MFG(n_id=n_id, adjs=adjs, batch_size=len(batch_nodes))

    def _distribution_over(
        self, candidates: np.ndarray, frontier: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError


class FastGCNSampler(_LayerwiseBase):
    """Layer-independent importance sampling with degree-proportional q."""

    def _distribution_over(
        self, candidates: np.ndarray, frontier: np.ndarray
    ) -> np.ndarray:
        degrees = self.graph.degree()[candidates].astype(np.float64)
        total = degrees.sum()
        if total == 0:
            return np.full(len(candidates), 1.0 / max(len(candidates), 1))
        return degrees / total


class LadiesSampler(_LayerwiseBase):
    """Layer-dependent importance: q(v) ∝ (#connections of v into frontier)^2."""

    def _distribution_over(
        self, candidates: np.ndarray, frontier: np.ndarray
    ) -> np.ndarray:
        frontier_set = np.zeros(self.graph.num_nodes, dtype=bool)
        frontier_set[frontier] = True
        counts = np.zeros(len(candidates), dtype=np.float64)
        for i, v in enumerate(candidates):
            neighbors = self.graph.neighbors(int(v))
            counts[i] = frontier_set[neighbors].sum()
        weights = counts**2
        total = weights.sum()
        if total == 0:
            return np.full(len(candidates), 1.0 / max(len(candidates), 1))
        return weights / total
