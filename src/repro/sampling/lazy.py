"""Lazy sampling schedules and cache-restricted sampling (Section 2.2).

Two follow-up ideas the paper cites as orthogonal to SALIENT:

- **LazyGCN** (Ramezani et al., 2020) lowers the *sampling frequency*: the
  MFGs sampled in one "mega-batch" round are recycled for R subsequent
  training passes. :class:`LazySamplerSchedule` wraps any
  :class:`NeighborSamplerBase` and replays cached MFGs until refresh.
- **GNS** (Dong et al., 2021) caches a global, sufficiently large node
  sample and restricts node-wise sampling to cached neighbors whenever
  possible, cutting sampler memory traffic. :class:`CacheRestrictedSampler`
  implements that periodically-refreshed cache.

Both are exercised by the extension ablation bench
(``benchmarks/bench_ablation_sampling_strategies.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from .base import NeighborSamplerBase
from .fast_sampler import FastNeighborSampler
from .mfg import MFG

__all__ = ["LazySamplerSchedule", "CacheRestrictedSampler"]


class LazySamplerSchedule:
    """Recycle sampled MFGs for ``recycle`` passes before resampling.

    Keyed by batch index: call :meth:`sample` with the batch's position in
    the epoch; every ``recycle``-th epoch the cache entry refreshes.
    Recycling trades gradient freshness for sampling throughput — LazyGCN
    shows convergence tolerates moderate recycling.
    """

    def __init__(self, sampler: NeighborSamplerBase, recycle: int = 2) -> None:
        if recycle < 1:
            raise ValueError("recycle period must be >= 1")
        self.sampler = sampler
        self.recycle = recycle
        self._cache: dict[int, MFG] = {}
        self._epoch = 0
        self.sampler_calls = 0

    def start_epoch(self, epoch: int) -> None:
        self._epoch = epoch
        if epoch % self.recycle == 0:
            self._cache.clear()

    def sample(
        self, batch_index: int, batch_nodes: np.ndarray, rng: np.random.Generator
    ) -> MFG:
        cached = self._cache.get(batch_index)
        if cached is not None:
            return cached
        mfg = self.sampler.sample(batch_nodes, rng)
        self.sampler_calls += 1
        self._cache[batch_index] = mfg
        return mfg


class CacheRestrictedSampler(NeighborSamplerBase):
    """GNS-style sampling restricted to a periodically refreshed node cache.

    A global cache of ``cache_size`` nodes is drawn degree-proportionally
    (hot hubs are most reusable). During expansion, a node's neighbor pool
    is its cached neighbors when at least ``fanout`` of them exist,
    otherwise the full neighbor list (the GNS fallback). Larger caches
    recover plain node-wise sampling; smaller ones trade accuracy for
    locality.
    """

    def __init__(
        self,
        graph: CSRGraph,
        fanouts: Sequence[Optional[int]],
        cache_size: int,
        refresh_every: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(graph, fanouts)
        if cache_size < 1 or cache_size > graph.num_nodes:
            raise ValueError("cache_size out of range")
        self.cache_size = cache_size
        self.refresh_every = max(refresh_every, 1)
        self._rng = rng or np.random.default_rng()
        self._epoch = 0
        self._cached_mask = np.zeros(graph.num_nodes, dtype=bool)
        self.fallback_count = 0
        self.cached_hit_count = 0
        self._refresh()

    def _refresh(self) -> None:
        degrees = self.graph.degree().astype(np.float64) + 1.0
        probs = degrees / degrees.sum()
        cached = self._rng.choice(
            self.graph.num_nodes, size=self.cache_size, replace=False, p=probs
        )
        self._cached_mask[:] = False
        self._cached_mask[cached] = True

    def start_epoch(self, epoch: int) -> None:
        if epoch != self._epoch and epoch % self.refresh_every == 0:
            self._refresh()
        self._epoch = epoch

    @property
    def cached_nodes(self) -> np.ndarray:
        return np.flatnonzero(self._cached_mask)

    def sample(self, batch_nodes: np.ndarray, rng: np.random.Generator) -> MFG:
        # Restrict the underlying fast sampler by masking adjacency on the
        # fly: build per-hop restricted neighbor pools.
        batch_nodes = np.asarray(batch_nodes, dtype=np.int64)
        if len(batch_nodes) == 0:
            raise ValueError("empty batch")
        from .mfg import Adj

        local_of = np.full(self.graph.num_nodes, -1, dtype=np.int64)
        local_of[batch_nodes] = np.arange(len(batch_nodes))
        touched = [batch_nodes]
        n_id = batch_nodes.copy()
        adjs: list[Adj] = []
        indptr, indices = self.graph.indptr, self.graph.indices
        try:
            for fanout in self.fanouts:
                frontier = n_id
                n_dst = len(frontier)
                rows, cols = [], []
                new_nodes: list[int] = []
                next_local = len(frontier)
                for dst_local, v in enumerate(frontier):
                    neighbors = indices[indptr[v] : indptr[v + 1]]
                    if len(neighbors) == 0:
                        continue
                    cached = neighbors[self._cached_mask[neighbors]]
                    if fanout is not None and len(cached) >= fanout:
                        pool = cached
                        self.cached_hit_count += 1
                    else:
                        pool = neighbors  # GNS fallback to the full list
                        self.fallback_count += 1
                    if fanout is None or len(pool) <= fanout:
                        chosen = pool
                    else:
                        keys = rng.random(len(pool))
                        chosen = pool[np.argpartition(keys, fanout)[:fanout]]
                    for u in chosen:
                        u = int(u)
                        local = local_of[u]
                        if local < 0:
                            local = next_local
                            next_local += 1
                            local_of[u] = local
                            new_nodes.append(u)
                        rows.append(int(local))
                        cols.append(dst_local)
                if new_nodes:
                    added = np.asarray(new_nodes, dtype=np.int64)
                    touched.append(added)
                    n_id = np.concatenate([n_id, added])
                edge_index = np.array([rows, cols], dtype=np.int64).reshape(2, -1)
                adjs.append(
                    Adj(edge_index=edge_index, e_id=None, size=(len(n_id), n_dst))
                )
        finally:
            for arr in touched:
                local_of[arr] = -1
        adjs.reverse()
        return MFG(n_id=n_id, adjs=adjs, batch_size=len(batch_nodes))
