"""Baseline neighborhood sampler mirroring PyG's ``NeighborSampler``.

This is the reproduction's stand-in for the *reference* implementation that
SALIENT improves on (Section 4.1). It deliberately mirrors the structure of
PyG's C++ sampler at Python speed:

- global-to-local node ID mapping via a **hash map** (Python dict);
- per-node neighbor sampling without replacement via **hash-set rejection**;
- **staged** construction: sampling first, MFG assembly second (two passes).

Its per-hop output distribution is identical to :class:`FastNeighborSampler`
(node-wise uniform sampling without replacement); only the data structures —
and hence the constant factors — differ. Tests assert structural
equivalence; Figure 2's bench measures the constant-factor gap.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from .base import NeighborSamplerBase
from .mfg import MFG, Adj

__all__ = ["PyGNeighborSampler", "sample_adj_reference"]


def sample_adj_reference(
    graph: CSRGraph,
    frontier: np.ndarray,
    fanout: Optional[int],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """One-hop expansion with hash-map/dict structures (reference path).

    Returns ``(n_id, edge_index)`` where ``n_id`` extends ``frontier`` with
    newly discovered globals and ``edge_index`` is local ``(2, E)`` with
    messages flowing ``src -> dst``; ``dst`` indexes into ``frontier``.
    """
    indptr, indices = graph.indptr, graph.indices
    id_map: dict[int, int] = {int(v): i for i, v in enumerate(frontier)}
    n_id: list[int] = [int(v) for v in frontier]
    rows: list[int] = []
    cols: list[int] = []

    # Pass 1: sample neighbor sets.
    sampled: list[list[int]] = []
    for v in frontier:
        v = int(v)
        start, stop = int(indptr[v]), int(indptr[v + 1])
        degree = stop - start
        if degree == 0:
            sampled.append([])
            continue
        if fanout is None or degree <= fanout:
            sampled.append([int(u) for u in indices[start:stop]])
            continue
        # Hash-set rejection sampling without replacement (PyG's strategy).
        chosen: set[int] = set()
        picks: list[int] = []
        while len(picks) < fanout:
            offset = int(rng.integers(0, degree))
            if offset not in chosen:
                chosen.add(offset)
                picks.append(int(indices[start + offset]))
        sampled.append(picks)

    # Pass 2: assemble the bipartite layer (staged, like the PyG code path).
    for dst_local, picks in enumerate(sampled):
        for u in picks:
            local = id_map.get(u)
            if local is None:
                local = len(n_id)
                id_map[u] = local
                n_id.append(u)
            rows.append(local)
            cols.append(dst_local)

    edge_index = np.array([rows, cols], dtype=np.int64).reshape(2, -1)
    return np.asarray(n_id, dtype=np.int64), edge_index


class PyGNeighborSampler(NeighborSamplerBase):
    """Multi-hop sampler using the reference one-hop expansion."""

    def sample(self, batch_nodes: np.ndarray, rng: np.random.Generator) -> MFG:
        batch_nodes = np.asarray(batch_nodes, dtype=np.int64)
        if len(batch_nodes) == 0:
            raise ValueError("empty batch")
        n_id = batch_nodes
        adjs: list[Adj] = []
        for fanout in self.fanouts:
            new_n_id, edge_index = sample_adj_reference(self.graph, n_id, fanout, rng)
            adjs.append(
                Adj(edge_index=edge_index, e_id=None, size=(len(new_n_id), len(n_id)))
            )
            n_id = new_n_id
        adjs.reverse()  # model consumes input-side layer first
        return MFG(n_id=n_id, adjs=adjs, batch_size=len(batch_nodes))
