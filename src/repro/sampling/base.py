"""Sampler protocol and batch iteration shared by all sampler backends."""

from __future__ import annotations

import abc
from typing import Iterator, Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from .mfg import MFG

__all__ = ["NeighborSamplerBase", "BatchIterator", "full_fanouts"]


def full_fanouts(num_layers: int) -> list[Optional[int]]:
    """Fanout spec meaning "take the full neighborhood" at every layer."""
    return [None] * num_layers


class NeighborSamplerBase(abc.ABC):
    """Node-wise neighborhood sampler over a CSR graph.

    Subclasses implement :meth:`sample` for one mini-batch of target nodes.
    Fanouts follow the paper's convention: ``fanouts[0]`` bounds the
    neighbors sampled for the batch itself (the GNN's *last* layer), and the
    produced MFG lists layers in model-consumption order (input side first).
    A fanout of ``None`` keeps the full neighborhood at that hop.
    """

    def __init__(self, graph: CSRGraph, fanouts: Sequence[Optional[int]]) -> None:
        if not fanouts:
            raise ValueError("need at least one fanout entry")
        for fanout in fanouts:
            if fanout is not None and fanout < 1:
                raise ValueError(f"fanouts must be >= 1 or None, got {fanout}")
        self.graph = graph
        self.fanouts = list(fanouts)

    @property
    def num_layers(self) -> int:
        return len(self.fanouts)

    @abc.abstractmethod
    def sample(self, batch_nodes: np.ndarray, rng: np.random.Generator) -> MFG:
        """Sample a multi-hop MFG for ``batch_nodes``."""


class BatchIterator:
    """Shuffled mini-batch id stream (the sampler's *input* queue).

    Yields ``(2, batch)`` arrays of global node ids. This corresponds to the
    lock-free input queue of destination nodes in SALIENT's batch
    preparation (Section 4.2); the runtime workers pull from it dynamically.
    """

    def __init__(
        self,
        node_ids: np.ndarray,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.node_ids = np.asarray(node_ids, dtype=np.int64)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng or np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.node_ids)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[np.ndarray]:
        order = (
            self.rng.permutation(len(self.node_ids))
            if self.shuffle
            else np.arange(len(self.node_ids))
        )
        ids = self.node_ids[order]
        stop = len(ids)
        if self.drop_last:
            stop = (stop // self.batch_size) * self.batch_size
        for start in range(0, stop, self.batch_size):
            batch = ids[start : min(start + self.batch_size, stop)]
            if len(batch):
                yield batch
