"""Message-flow graphs (MFGs): the output format of neighborhood sampling.

An MFG for an L-layer GNN is a sequence of bipartite graphs ("Adj" layers in
PyG parlance). We follow the PyG ``NeighborSampler`` conventions exactly so
the model listings from the paper's appendix port verbatim:

- ``n_id`` holds the *global* ids of every node involved, with the batch's
  target nodes first; newly discovered nodes append in discovery order.
- Each :class:`Adj` layer has ``edge_index`` (2, E) in *local* ids,
  ``size = (n_src, n_dst)``, and the destination nodes of a layer are exactly
  the first ``n_dst`` entries of its source set — hence the idiomatic
  ``x_target = x[:size[1]]`` in model code.
- ``adjs`` are ordered as consumed by the model: ``adjs[0]`` is the widest
  (input-side) layer. Sampling proceeds in the opposite order (from the batch
  outward), so samplers build the list reversed and flip it at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from ..tensor.plan import AggregationPlan

__all__ = ["Adj", "MFG"]


@dataclass
class Adj:
    """One bipartite message-passing layer.

    ``edge_index[0]`` are source-local ids (range ``[0, size[0])``),
    ``edge_index[1]`` are destination-local ids (range ``[0, size[1])``).
    Messages flow source -> destination.
    """

    edge_index: np.ndarray
    e_id: Optional[np.ndarray]
    size: tuple[int, int]
    #: optional precomputed segment-reduction metadata, built once per batch
    #: in the prepare/slice stage and reused by every layer pass; excluded
    #: from iteration/compare so the PyG 3-tuple contract is unchanged.
    plan: Optional[AggregationPlan] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        self.edge_index = np.ascontiguousarray(self.edge_index, dtype=np.int64)
        if self.edge_index.ndim != 2 or self.edge_index.shape[0] != 2:
            raise ValueError(f"edge_index must be (2, E), got {self.edge_index.shape}")
        self.size = (int(self.size[0]), int(self.size[1]))

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1]

    def validate(self) -> None:
        n_src, n_dst = self.size
        if n_dst > n_src:
            raise ValueError(
                f"destination set ({n_dst}) must be a prefix of sources ({n_src})"
            )
        if self.num_edges:
            if self.edge_index[0].max() >= n_src or self.edge_index[0].min() < 0:
                raise ValueError("source ids out of range")
            if self.edge_index[1].max() >= n_dst or self.edge_index[1].min() < 0:
                raise ValueError("destination ids out of range")

    def build_plan(self) -> AggregationPlan:
        """Build (and cache) this layer's :class:`AggregationPlan`."""
        if self.plan is None:
            self.plan = AggregationPlan.from_edge_index(self.edge_index, self.size)
        return self.plan

    def nbytes(self) -> int:
        # Plans are prepare-stage metadata, deliberately excluded from the
        # transfer accounting (the paper's pipeline moves features/topology).
        e_id_bytes = self.e_id.nbytes if self.e_id is not None else 0
        return self.edge_index.nbytes + e_id_bytes

    def __iter__(self) -> Iterator:
        """Unpack as ``(edge_index, e_id, size)`` like PyG's Adj namedtuple."""
        return iter((self.edge_index, self.e_id, self.size))


@dataclass
class MFG:
    """A sampled multi-hop neighborhood for one mini-batch."""

    n_id: np.ndarray  # global node ids; batch targets first
    adjs: list[Adj]  # input-side layer first (model consumption order)
    batch_size: int

    def __post_init__(self) -> None:
        self.n_id = np.ascontiguousarray(self.n_id, dtype=np.int64)

    @property
    def num_layers(self) -> int:
        return len(self.adjs)

    @property
    def num_input_nodes(self) -> int:
        """Size of the widest node set (rows of the feature slice)."""
        return self.adjs[0].size[0] if self.adjs else len(self.n_id)

    def target_ids(self) -> np.ndarray:
        """Global ids of the batch's target nodes."""
        return self.n_id[: self.batch_size]

    def total_edges(self) -> int:
        return sum(adj.num_edges for adj in self.adjs)

    def nbytes(self) -> int:
        """Bytes of adjacency payload (what data transfer must move)."""
        return self.n_id.nbytes + sum(adj.nbytes() for adj in self.adjs)

    def build_plans(self) -> None:
        """Build every layer's :class:`AggregationPlan` (idempotent)."""
        for adj in self.adjs:
            adj.build_plan()

    def validate(self) -> None:
        """Check all MFG invariants (telescoping sizes, prefix property)."""
        if self.batch_size <= 0 or self.batch_size > len(self.n_id):
            raise ValueError("batch_size out of range")
        if not self.adjs:
            raise ValueError("MFG must have at least one layer")
        for adj in self.adjs:
            adj.validate()
        # Telescoping: each layer's destination set is the next layer's source set.
        for inner, outer in zip(self.adjs[1:], self.adjs[:-1]):
            if outer.size[1] != inner.size[0]:
                raise ValueError(
                    f"layer sizes do not telescope: {outer.size} -> {inner.size}"
                )
        if self.adjs[-1].size[1] != self.batch_size:
            raise ValueError(
                f"innermost destination count {self.adjs[-1].size[1]} != "
                f"batch size {self.batch_size}"
            )
        if self.adjs[0].size[0] != len(self.n_id):
            raise ValueError(
                f"outermost source count {self.adjs[0].size[0]} != len(n_id) "
                f"{len(self.n_id)}"
            )
        if len(np.unique(self.n_id)) != len(self.n_id):
            raise ValueError("n_id contains duplicates")


def validate_against_graph(mfg: MFG, indptr: np.ndarray, indices: np.ndarray) -> None:
    """Assert every MFG edge exists in the underlying graph (test helper)."""
    mfg.validate()
    for adj in mfg.adjs:
        src_global = mfg.n_id[adj.edge_index[0]]
        dst_global = mfg.n_id[adj.edge_index[1]]
        for s, d in zip(src_global, dst_global):
            row = indices[indptr[d] : indptr[d + 1]]
            if s not in row:
                raise AssertionError(f"edge {s}->{d} not present in graph")
