"""Parameterized sampler implementation spanning Figure 2's design space.

Section 4.1: "the space of possible design choices and optimizations is too
large to explore manually. We designed a parameterized implementation of
sampled MFG generation to systematically explore this optimization space" —
96 instantiations benchmarked hop-by-hop against a reference trace.

The knobs (3 x 4 x 4 x 2 = 96 variants):

- ``id_map``: structure for global-to-local node ID mapping —
  ``dict`` (hash map, the PyG baseline), ``array`` (flat preallocated array,
  the paper's winning swiss-table-then-array design), ``hybrid``
  (array fast-path for frontier nodes, dict for later discoveries).
- ``sample_set``: set structure backing rejection sampling without
  replacement — ``hashset`` (the STL-hash-set analogue), ``linear_array``
  (linear-scan array: the paper's cache-friendly winner), ``sorted_array``
  (binary-search insert), ``bitmask`` (dense per-degree flag array).
- ``selection``: neighbor-selection algorithm — ``rejection`` (uses
  ``sample_set``), ``fisher_yates`` (partial shuffle), ``reservoir``
  (reservoir sampling), ``random_keys`` (sort-by-key top-k).
- ``fused``: whether sampling and MFG construction happen in one pass
  (SALIENT) or in two staged passes (PyG).

All variants produce identically distributed MFG layers; the bench
(``benchmarks/bench_fig2_design_space.py``) measures their relative
throughput on a fixed hop-by-hop trace, mirroring the paper's
microbenchmark methodology ("benchmark each individual hop of the reference
trace instead of an end-to-end execution").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from itertools import product
from typing import Callable, Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from .arena import SamplerArena, expand_frontier_arena, first_occurrence_dedup
from .base import NeighborSamplerBase
from .mfg import MFG, Adj

__all__ = [
    "SamplerVariant",
    "ParameterizedSampler",
    "all_variants",
    "BASELINE_VARIANT",
    "WINNING_VARIANT",
]

ID_MAPS = ("dict", "array", "hybrid")
SAMPLE_SETS = ("hashset", "linear_array", "sorted_array", "bitmask")
SELECTIONS = ("rejection", "fisher_yates", "reservoir", "random_keys")
FUSIONS = (False, True)


@dataclass(frozen=True)
class SamplerVariant:
    """One point in the sampler design space."""

    id_map: str = "dict"
    sample_set: str = "hashset"
    selection: str = "rejection"
    fused: bool = False

    def __post_init__(self) -> None:
        if self.id_map not in ID_MAPS:
            raise ValueError(f"unknown id_map {self.id_map!r}")
        if self.sample_set not in SAMPLE_SETS:
            raise ValueError(f"unknown sample_set {self.sample_set!r}")
        if self.selection not in SELECTIONS:
            raise ValueError(f"unknown selection {self.selection!r}")

    def label(self) -> str:
        fusion = "fused" if self.fused else "staged"
        return f"{self.id_map}/{self.sample_set}/{self.selection}/{fusion}"


#: The PyG-like corner of the space (what Figure 2 normalizes against).
BASELINE_VARIANT = SamplerVariant(
    id_map="dict", sample_set="hashset", selection="rejection", fused=False
)
#: The paper's winning configuration (array map + array set + fused).
WINNING_VARIANT = SamplerVariant(
    id_map="array", sample_set="linear_array", selection="rejection", fused=True
)


def all_variants() -> list[SamplerVariant]:
    """Enumerate all 96 instantiations (Figure 2's sweep)."""
    return [
        SamplerVariant(id_map=m, sample_set=s, selection=sel, fused=f)
        for m, s, sel, f in product(ID_MAPS, SAMPLE_SETS, SELECTIONS, FUSIONS)
    ]


# ----------------------------------------------------------------------
# Neighbor-selection strategies (offsets into a node's adjacency list)
# ----------------------------------------------------------------------
def _select_rejection(
    degree: int, fanout: int, rng: np.random.Generator, sample_set: str
) -> list[int]:
    """Uniform w/o replacement by rejection, parameterized by set structure."""
    picks: list[int] = []
    if sample_set == "hashset":
        seen: set[int] = set()
        while len(picks) < fanout:
            offset = int(rng.integers(0, degree))
            if offset not in seen:
                seen.add(offset)
                picks.append(offset)
    elif sample_set == "linear_array":
        # Linear membership scan; cache-friendly for small fanouts (the
        # paper's winner despite O(k) lookup).
        while len(picks) < fanout:
            offset = int(rng.integers(0, degree))
            if offset not in picks:  # list scan == linear array search
                picks.append(offset)
    elif sample_set == "sorted_array":
        sorted_picks: list[int] = []
        while len(sorted_picks) < fanout:
            offset = int(rng.integers(0, degree))
            pos = bisect.bisect_left(sorted_picks, offset)
            if pos == len(sorted_picks) or sorted_picks[pos] != offset:
                sorted_picks.insert(pos, offset)
                picks.append(offset)
    elif sample_set == "bitmask":
        flags = np.zeros(degree, dtype=bool)
        while len(picks) < fanout:
            offset = int(rng.integers(0, degree))
            if not flags[offset]:
                flags[offset] = True
                picks.append(offset)
    else:  # pragma: no cover - guarded by SamplerVariant validation
        raise ValueError(sample_set)
    return picks


def _select_fisher_yates(degree: int, fanout: int, rng: np.random.Generator) -> list[int]:
    """Partial Fisher-Yates shuffle of the offset range."""
    pool = list(range(degree))
    for i in range(fanout):
        j = int(rng.integers(i, degree))
        pool[i], pool[j] = pool[j], pool[i]
    return pool[:fanout]


def _select_reservoir(degree: int, fanout: int, rng: np.random.Generator) -> list[int]:
    """Reservoir sampling over the offset stream."""
    reservoir = list(range(fanout))
    for i in range(fanout, degree):
        j = int(rng.integers(0, i + 1))
        if j < fanout:
            reservoir[j] = i
    return reservoir


def _select_random_keys(degree: int, fanout: int, rng: np.random.Generator) -> list[int]:
    """Assign random keys to all offsets, keep the fanout smallest."""
    keys = rng.random(degree)
    return np.argpartition(keys, fanout)[:fanout].tolist()


def _select(
    degree: int,
    fanout: Optional[int],
    rng: np.random.Generator,
    variant: SamplerVariant,
) -> list[int]:
    if fanout is None or degree <= fanout:
        return list(range(degree))
    if variant.selection == "rejection":
        return _select_rejection(degree, fanout, rng, variant.sample_set)
    if variant.selection == "fisher_yates":
        return _select_fisher_yates(degree, fanout, rng)
    if variant.selection == "reservoir":
        return _select_reservoir(degree, fanout, rng)
    return _select_random_keys(degree, fanout, rng)


# ----------------------------------------------------------------------
# Global-to-local ID maps
# ----------------------------------------------------------------------
class _DictIdMap:
    """Hash-map mapping (PyG baseline)."""

    def __init__(self, num_nodes: int, frontier: np.ndarray) -> None:
        self.map = {int(v): i for i, v in enumerate(frontier)}
        self.n_id = [int(v) for v in frontier]

    def lookup_or_add(self, node: int) -> int:
        local = self.map.get(node)
        if local is None:
            local = len(self.n_id)
            self.map[node] = local
            self.n_id.append(node)
        return local

    def finish(self) -> np.ndarray:
        return np.asarray(self.n_id, dtype=np.int64)


class _ArrayIdMap:
    """Flat-array mapping (the paper's winning structure)."""

    _shared: dict[int, np.ndarray] = {}

    def __init__(self, num_nodes: int, frontier: np.ndarray) -> None:
        # Reuse one scratch array per graph size to amortize allocation,
        # like SALIENT's persistent per-thread buffers.
        arr = self._shared.get(num_nodes)
        if arr is None:
            arr = np.full(num_nodes, -1, dtype=np.int64)
            self._shared[num_nodes] = arr
        self.arr = arr
        self.n_id = [int(v) for v in frontier]
        self.touched = list(self.n_id)
        for i, v in enumerate(self.n_id):
            arr[v] = i

    def lookup_or_add(self, node: int) -> int:
        local = self.arr[node]
        if local < 0:
            local = len(self.n_id)
            self.arr[node] = local
            self.n_id.append(node)
            self.touched.append(node)
        return int(local)

    def finish(self) -> np.ndarray:
        for v in self.touched:
            self.arr[v] = -1
        return np.asarray(self.n_id, dtype=np.int64)


class _HybridIdMap:
    """Array fast-path for the frontier, dict for later discoveries."""

    _shared: dict[int, np.ndarray] = {}

    def __init__(self, num_nodes: int, frontier: np.ndarray) -> None:
        arr = self._shared.get(num_nodes)
        if arr is None:
            arr = np.full(num_nodes, -1, dtype=np.int64)
            self._shared[num_nodes] = arr
        self.arr = arr
        self.n_id = [int(v) for v in frontier]
        self.frontier_nodes = self.n_id[:]
        for i, v in enumerate(self.n_id):
            arr[v] = i
        self.overflow: dict[int, int] = {}

    def lookup_or_add(self, node: int) -> int:
        local = self.arr[node]
        if local >= 0:
            return int(local)
        local = self.overflow.get(node)
        if local is None:
            local = len(self.n_id)
            self.overflow[node] = local
            self.n_id.append(node)
        return local

    def finish(self) -> np.ndarray:
        for v in self.frontier_nodes:
            self.arr[v] = -1
        return np.asarray(self.n_id, dtype=np.int64)


_ID_MAP_CLASSES = {"dict": _DictIdMap, "array": _ArrayIdMap, "hybrid": _HybridIdMap}


# ----------------------------------------------------------------------
# Hop expansion
# ----------------------------------------------------------------------
#: Shared per-graph-size state for the arena-delegated corner of the space
#: (mirrors the `_ArrayIdMap._shared` amortization pattern).
_ARENA_SHARED: dict[int, tuple[SamplerArena, np.ndarray]] = {}


def _shared_arena_state(num_nodes: int) -> tuple[SamplerArena, np.ndarray]:
    state = _ARENA_SHARED.get(num_nodes)
    if state is None:
        state = (SamplerArena(), np.full(num_nodes, -1, dtype=np.int64))
        _ARENA_SHARED[num_nodes] = state
    return state


def _expand_hop_arena(
    graph: CSRGraph,
    frontier: np.ndarray,
    fanout: Optional[int],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """The arena kernels as a hop-contract implementation.

    Variants whose knobs spell out the paper's winning design — array ID
    map + array set + fused construction — delegate here so the Figure 2
    sweep both benefits from and cross-checks the production arena hot
    path instead of maintaining a slower copy of the same design.
    """
    frontier = np.ascontiguousarray(frontier, dtype=np.int64)
    arena, local_of = _shared_arena_state(graph.num_nodes)
    touched: list[np.ndarray] = []
    try:
        touched.append(frontier)
        local_of[frontier] = np.arange(len(frontier), dtype=np.int64)
        src_sel, dst_sel = expand_frontier_arena(graph, frontier, fanout, rng, arena)
        src_local, ordered_new = first_occurrence_dedup(
            src_sel, local_of, len(frontier), arena
        )
        if ordered_new is not None:
            touched.append(ordered_new)
            n_id = np.concatenate([frontier, ordered_new])
        else:
            n_id = np.asarray(frontier, dtype=np.int64).copy()
        edge_index = np.empty((2, len(src_sel)), dtype=np.int64)
        edge_index[0] = src_local
        edge_index[1] = dst_sel
    finally:
        for arr in touched:
            local_of[arr] = -1
    return n_id, edge_index


def expand_hop(
    graph: CSRGraph,
    frontier: np.ndarray,
    fanout: Optional[int],
    rng: np.random.Generator,
    variant: SamplerVariant,
) -> tuple[np.ndarray, np.ndarray]:
    """One-hop expansion under ``variant``; returns (n_id, edge_index)."""
    if (
        variant.fused
        and variant.id_map == "array"
        and variant.sample_set == "linear_array"
    ):
        # The winning-design corner delegates to the production arena
        # kernels (all selection strategies are uniform without
        # replacement, so only the RNG stream — not the distribution —
        # differs from the per-element implementations).
        return _expand_hop_arena(graph, frontier, fanout, rng)
    indptr, indices = graph.indptr, graph.indices
    id_map = _ID_MAP_CLASSES[variant.id_map](graph.num_nodes, frontier)

    if variant.fused:
        # Single pass: select offsets and emit remapped edges immediately.
        rows: list[int] = []
        cols: list[int] = []
        for dst_local, v in enumerate(frontier):
            start = int(indptr[v])
            degree = int(indptr[v + 1]) - start
            if degree == 0:
                continue
            for offset in _select(degree, fanout, rng, variant):
                rows.append(id_map.lookup_or_add(int(indices[start + offset])))
                cols.append(dst_local)
    else:
        # Staged: pass 1 samples neighbor ids, pass 2 remaps and assembles.
        sampled: list[list[int]] = []
        for v in frontier:
            start = int(indptr[v])
            degree = int(indptr[v + 1]) - start
            if degree == 0:
                sampled.append([])
                continue
            offsets = _select(degree, fanout, rng, variant)
            sampled.append([int(indices[start + o]) for o in offsets])
        rows, cols = [], []
        for dst_local, neighbors in enumerate(sampled):
            for u in neighbors:
                rows.append(id_map.lookup_or_add(u))
                cols.append(dst_local)

    n_id = id_map.finish()
    edge_index = np.array([rows, cols], dtype=np.int64).reshape(2, -1)
    return n_id, edge_index


class ParameterizedSampler(NeighborSamplerBase):
    """Multi-hop sampler whose hop kernel is one of the 96 variants."""

    def __init__(
        self,
        graph: CSRGraph,
        fanouts: Sequence[Optional[int]],
        variant: SamplerVariant = BASELINE_VARIANT,
    ) -> None:
        super().__init__(graph, fanouts)
        self.variant = variant

    def sample(self, batch_nodes: np.ndarray, rng: np.random.Generator) -> MFG:
        batch_nodes = np.asarray(batch_nodes, dtype=np.int64)
        if len(batch_nodes) == 0:
            raise ValueError("empty batch")
        n_id = batch_nodes
        adjs: list[Adj] = []
        for fanout in self.fanouts:
            new_n_id, edge_index = expand_hop(
                self.graph, n_id, fanout, rng, self.variant
            )
            adjs.append(
                Adj(edge_index=edge_index, e_id=None, size=(len(new_n_id), len(n_id)))
            )
            n_id = new_n_id
        adjs.reverse()
        return MFG(n_id=n_id, adjs=adjs, batch_size=len(batch_nodes))
