"""Subgraph sampling: GraphSAINT and Cluster-GCN styles (Section 2.2).

The third family in the paper's sampling taxonomy: "sample a connected
subgraph and compute mini-batch loss restricted to this subgraph". Training
then runs *full-batch within the subgraph* — no MFG, no per-layer
neighborhood explosion.

- ``RandomNodeSubgraphSampler``   — GraphSAINT-Node: uniform node sample.
- ``RandomWalkSubgraphSampler``   — GraphSAINT-RW: union of short random
  walks from random roots (well-connected subgraphs).
- ``ClusterSubgraphSampler``      — Cluster-GCN: precomputed partition
  (``repro.graph.bfs_partition``), one or more clusters per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.partition import bfs_partition

__all__ = [
    "SampledSubgraph",
    "RandomNodeSubgraphSampler",
    "RandomWalkSubgraphSampler",
    "ClusterSubgraphSampler",
]


@dataclass
class SampledSubgraph:
    """An induced training subgraph with its global node mapping."""

    graph: CSRGraph  # induced subgraph, locally relabeled
    n_id: np.ndarray  # local -> global node ids

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def full_mfg_layers(self, num_layers: int):
        """Express the subgraph as MFG layers so the standard architectures
        run unchanged: every layer is the full (local) adjacency with the
        whole node set as both source and destination."""
        from .mfg import Adj

        edge_index = self.graph.edge_index()
        n = self.graph.num_nodes
        return [
            Adj(edge_index=edge_index, e_id=None, size=(n, n))
            for _ in range(num_layers)
        ]


class RandomNodeSubgraphSampler:
    """GraphSAINT-Node: induce on a uniform sample of nodes."""

    def __init__(self, graph: CSRGraph, subgraph_size: int) -> None:
        if subgraph_size < 1 or subgraph_size > graph.num_nodes:
            raise ValueError("subgraph_size out of range")
        self.graph = graph
        self.subgraph_size = subgraph_size

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        nodes = np.sort(
            rng.choice(self.graph.num_nodes, size=self.subgraph_size, replace=False)
        )
        sub, mapping = self.graph.induced_subgraph(nodes)
        return SampledSubgraph(graph=sub, n_id=mapping)


class RandomWalkSubgraphSampler:
    """GraphSAINT-RW: induce on the union of random walks."""

    def __init__(self, graph: CSRGraph, num_roots: int, walk_length: int) -> None:
        if num_roots < 1 or walk_length < 1:
            raise ValueError("num_roots and walk_length must be >= 1")
        self.graph = graph
        self.num_roots = num_roots
        self.walk_length = walk_length

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        indptr, indices = self.graph.indptr, self.graph.indices
        current = rng.integers(0, self.graph.num_nodes, size=self.num_roots)
        visited = [current.copy()]
        for _ in range(self.walk_length):
            degrees = indptr[current + 1] - indptr[current]
            stuck = degrees == 0
            offsets = np.where(
                stuck, 0, rng.integers(0, np.maximum(degrees, 1))
            )
            nxt = np.where(
                stuck, current, indices[indptr[current] + offsets]
            )
            visited.append(nxt.copy())
            current = nxt
        nodes = np.unique(np.concatenate(visited))
        sub, mapping = self.graph.induced_subgraph(nodes)
        return SampledSubgraph(graph=sub, n_id=mapping)


class ClusterSubgraphSampler:
    """Cluster-GCN: partition once, then train cluster-by-cluster."""

    def __init__(
        self,
        graph: CSRGraph,
        num_clusters: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.graph = graph
        self.partition = bfs_partition(
            graph, num_clusters, rng=rng or np.random.default_rng()
        )
        self.num_clusters = num_clusters

    def sample(
        self, rng: np.random.Generator, clusters_per_batch: int = 1
    ) -> SampledSubgraph:
        picked = rng.choice(
            self.num_clusters, size=min(clusters_per_batch, self.num_clusters),
            replace=False,
        )
        mask = np.isin(self.partition.assignment, picked)
        nodes = np.flatnonzero(mask)
        sub, mapping = self.graph.induced_subgraph(nodes)
        return SampledSubgraph(graph=sub, n_id=mapping)

    def cluster_nodes(self, cluster: int) -> np.ndarray:
        return np.flatnonzero(self.partition.assignment == cluster)
