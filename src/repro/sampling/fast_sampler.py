"""SALIENT's performance-engineered neighborhood sampler.

Implements the winning design points from the paper's Figure 2 exploration,
translated to the numpy substrate:

1. **Array-based global-to-local ID map** instead of a hash map: a
   persistent ``int64`` array of size ``num_nodes`` (reset lazily after each
   batch by touching only used entries). In the paper this was the
   flat-array swiss-table replacement worth ~2x.
2. **Array-set deduplication**: newly discovered nodes are deduplicated with
   vectorized first-occurrence selection rather than per-element hash-set
   probing (the paper's "array instead of hash table for the set", +17%).
3. **Fused sampling + MFG construction**: neighbor selection, ID remapping
   and bipartite-layer assembly happen in one pass over flat arrays; no
   staged intermediate per-node Python lists.

On the numpy substrate, "performance-engineering" means the entire hop is a
fixed number of O(D) / O(D log D) vectorized kernels (D = total frontier
degree) with zero per-node Python work, versus the reference sampler's
per-node dict/set loops.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from .base import NeighborSamplerBase
from .mfg import MFG, Adj

__all__ = ["FastNeighborSampler", "expand_frontier_vectorized"]


def _gather_all_edges(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All incident edges of ``frontier``: (src_global, dst_local, degrees)."""
    degrees = indptr[frontier + 1] - indptr[frontier]
    total = int(degrees.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, degrees
    starts = np.repeat(indptr[frontier], degrees)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(degrees) - degrees, degrees
    )
    src_global = indices[starts + offsets]
    dst_local = np.repeat(np.arange(len(frontier), dtype=np.int64), degrees)
    return src_global, dst_local, degrees


def expand_frontier_vectorized(
    graph: CSRGraph,
    frontier: np.ndarray,
    fanout: Optional[int],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """One-hop uniform without-replacement expansion, fully vectorized.

    Returns ``(src_global, dst_local)`` for the selected edges. Selection for
    over-degree nodes uses the random-keys trick: draw one uniform key per
    candidate edge and keep the ``fanout`` smallest keys per destination
    segment — an exchangeable scheme equivalent to uniform sampling without
    replacement.
    """
    indptr, indices = graph.indptr, graph.indices
    src_global, dst_local, degrees = _gather_all_edges(indptr, indices, frontier)
    if fanout is None or len(src_global) == 0 or degrees.max() <= fanout:
        return src_global, dst_local

    total = len(src_global)
    keys = rng.random(total)
    # Candidate edges are already grouped by destination; lexsort orders by
    # (segment, key) so each segment's smallest-key edges come first.
    order = np.lexsort((keys, dst_local))
    seg_starts = np.cumsum(degrees) - degrees
    rank_in_segment = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, degrees)
    cap = np.minimum(degrees, fanout)
    keep_sorted = rank_in_segment < np.repeat(cap, degrees)
    selected = order[keep_sorted]
    # Restore ascending destination order (selected is already grouped by
    # segment because lexsort's primary key was dst_local).
    return src_global[selected], dst_local[selected]


class FastNeighborSampler(NeighborSamplerBase):
    """Fused, array-mapped, vectorized multi-hop sampler (SALIENT)."""

    def __init__(self, graph: CSRGraph, fanouts: Sequence[Optional[int]]) -> None:
        super().__init__(graph, fanouts)
        # Persistent array ID map (design point 1). Reset lazily per batch.
        self._local_of = np.full(graph.num_nodes, -1, dtype=np.int64)

    def sample(self, batch_nodes: np.ndarray, rng: np.random.Generator) -> MFG:
        batch_nodes = np.asarray(batch_nodes, dtype=np.int64)
        if len(batch_nodes) == 0:
            raise ValueError("empty batch")
        local_of = self._local_of
        touched: list[np.ndarray] = [batch_nodes]
        local_of[batch_nodes] = np.arange(len(batch_nodes), dtype=np.int64)

        n_id = batch_nodes.copy()
        adjs: list[Adj] = []
        try:
            for fanout in self.fanouts:
                n_dst = len(n_id)
                src_global, dst_local = expand_frontier_vectorized(
                    self.graph, n_id, fanout, rng
                )
                # Fused remap + dedup (design points 2 and 3): find first
                # occurrences of unseen globals in discovery order.
                src_local = local_of[src_global]
                new_mask = src_local < 0
                if new_mask.any():
                    new_globals = src_global[new_mask]
                    uniq, first_pos = np.unique(new_globals, return_index=True)
                    discovery = np.argsort(first_pos, kind="stable")
                    ordered_new = uniq[discovery]
                    local_of[ordered_new] = len(n_id) + np.arange(
                        len(ordered_new), dtype=np.int64
                    )
                    touched.append(ordered_new)
                    n_id = np.concatenate([n_id, ordered_new])
                    src_local = local_of[src_global]
                edge_index = np.stack([src_local, dst_local])
                adjs.append(
                    Adj(edge_index=edge_index, e_id=None, size=(len(n_id), n_dst))
                )
        finally:
            for arr in touched:
                local_of[arr] = -1
        adjs.reverse()
        return MFG(n_id=n_id, adjs=adjs, batch_size=len(batch_nodes))
