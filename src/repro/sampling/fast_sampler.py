"""SALIENT's performance-engineered neighborhood sampler.

Implements the winning design points from the paper's Figure 2 exploration,
translated to the numpy substrate:

1. **Array-based global-to-local ID map** instead of a hash map: a
   persistent ``int64`` array of size ``num_nodes`` (reset lazily after each
   batch by touching only used entries). In the paper this was the
   flat-array swiss-table replacement worth ~2x.
2. **Array-set deduplication**: newly discovered nodes are deduplicated with
   vectorized first-occurrence selection rather than per-element hash-set
   probing (the paper's "array instead of hash table for the set", +17%).
3. **Fused sampling + MFG construction**: neighbor selection, ID remapping
   and bipartite-layer assembly happen in one pass over flat arrays; no
   staged intermediate per-node Python lists.
4. **Arena-allocated hot path** (default): per-sampler persistent scratch
   buffers (:mod:`repro.sampling.arena`) make every hop allocation-free
   after warm-up, dedup O(D) via the persistent map (no ``np.unique``
   sort), and fanout selection a *split path* that copies under-degree
   segments verbatim and sorts only the over-degree remainder.

The pre-arena kernels are kept intact behind ``use_arena=False`` as the
"old fast" comparison twin: both paths consume the RNG stream identically
and emit edges in canonical adjacency order, so they produce byte-identical
MFGs for a shared seed (asserted by the determinism tests and timed against
each other by ``benchmarks/bench_sampler_hotpath.py``).

On the numpy substrate, "performance-engineering" means the entire hop is a
fixed number of O(D) vectorized kernels (D = total frontier degree) plus a
single stable sort of the over-degree edges, with zero per-node Python
work, versus the reference sampler's per-node dict/set loops.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from ..telemetry import Counters
from .arena import SamplerArena, expand_frontier_arena, first_occurrence_dedup
from .base import NeighborSamplerBase
from .mfg import MFG, Adj

__all__ = ["FastNeighborSampler", "expand_frontier_vectorized"]


def _gather_all_edges(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All incident edges of ``frontier``: (src_global, dst_local, degrees)."""
    degrees = indptr[frontier + 1] - indptr[frontier]
    total = int(degrees.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, degrees
    starts = np.repeat(indptr[frontier], degrees)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(degrees) - degrees, degrees
    )
    src_global = indices[starts + offsets]
    dst_local = np.repeat(np.arange(len(frontier), dtype=np.int64), degrees)
    return src_global, dst_local, degrees


def expand_frontier_vectorized(
    graph: CSRGraph,
    frontier: np.ndarray,
    fanout: Optional[int],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """One-hop uniform without-replacement expansion, fully vectorized.

    The pre-arena ("old fast") kernel: gathers every candidate edge, draws
    one uniform key per edge, and keeps the ``fanout`` smallest keys per
    destination segment via a full-array ``lexsort`` — an exchangeable
    scheme equivalent to uniform sampling without replacement.

    Returns ``(src_global, dst_local)`` for the selected edges in canonical
    adjacency order (ascending candidate-edge position), the same order the
    arena split path emits, so the two kernels are interchangeable under a
    shared RNG stream.
    """
    indptr, indices = graph.indptr, graph.indices
    src_global, dst_local, degrees = _gather_all_edges(indptr, indices, frontier)
    if fanout is None or len(src_global) == 0 or degrees.max() <= fanout:
        return src_global, dst_local

    total = len(src_global)
    keys = rng.random(total)
    # Candidate edges are already grouped by destination; lexsort orders by
    # (segment, key) so each segment's smallest-key edges come first.
    order = np.lexsort((keys, dst_local))
    seg_starts = np.cumsum(degrees) - degrees
    rank_in_segment = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, degrees)
    cap = np.minimum(degrees, fanout)
    keep_sorted = rank_in_segment < np.repeat(cap, degrees)
    # Canonical adjacency order: selection happens in key order, output in
    # original candidate order (a boolean mask preserves it).
    keep = np.zeros(total, dtype=bool)
    keep[order[keep_sorted]] = True
    return src_global[keep], dst_local[keep]


class FastNeighborSampler(NeighborSamplerBase):
    """Fused, array-mapped, vectorized multi-hop sampler (SALIENT).

    ``use_arena=True`` (default) runs the arena-allocated O(D) hot path;
    ``use_arena=False`` preserves the pre-arena kernels (``np.unique``
    dedup + full-edge lexsort + fresh per-hop allocations) as the timing
    and equivalence twin.  Both paths produce byte-identical MFGs for a
    shared RNG stream.
    """

    def __init__(
        self,
        graph: CSRGraph,
        fanouts: Sequence[Optional[int]],
        use_arena: bool = True,
        arena: Optional[SamplerArena] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        super().__init__(graph, fanouts)
        # Persistent array ID map (design point 1). Reset lazily per batch.
        self._local_of = np.full(graph.num_nodes, -1, dtype=np.int64)
        self.use_arena = use_arena
        self.counters = counters if counters is not None else Counters()
        self.arena: Optional[SamplerArena] = None
        if use_arena:
            self.arena = arena if arena is not None else SamplerArena(self.counters)
            self.arena.attach_counters(self.counters)

    def attach_counters(self, counters: Counters) -> None:
        """Redirect telemetry (e.g. to a batch-preparation pool's counters)."""
        self.counters = counters
        if self.arena is not None:
            self.arena.attach_counters(counters)

    def attach_metrics(self, metrics) -> None:
        """Redirect arena metric observations to a shared registry."""
        if self.arena is not None:
            self.arena.attach_metrics(metrics)

    def sample(self, batch_nodes: np.ndarray, rng: np.random.Generator) -> MFG:
        batch_nodes = np.ascontiguousarray(batch_nodes, dtype=np.int64)
        if len(batch_nodes) == 0:
            raise ValueError("empty batch")
        # Validate before touching the persistent map: a negative id would
        # silently wrap and an out-of-range id would raise mid-write,
        # leaving entries the reset loop below could not account for.
        if int(batch_nodes.min()) < 0 or int(batch_nodes.max()) >= self.graph.num_nodes:
            raise ValueError("batch node ids out of range")
        local_of = self._local_of
        touched: list[np.ndarray] = []
        n_id = batch_nodes.copy()
        adjs: list[Adj] = []
        try:
            touched.append(batch_nodes)
            local_of[batch_nodes] = np.arange(len(batch_nodes), dtype=np.int64)
            hops = self._sample_hops_arena if self.use_arena else self._sample_hops_legacy
            n_id = hops(n_id, local_of, touched, adjs, rng)
        finally:
            # Every array in ``touched`` holds validated node ids, so this
            # reset is exception-safe: any failure mid-hop (bad RNG, graph
            # corruption, interrupt) leaves the map all -1 and the sampler
            # reusable.
            for arr in touched:
                local_of[arr] = -1
        adjs.reverse()
        self.counters.inc("sampler_batches")
        return MFG(n_id=n_id, adjs=adjs, batch_size=len(batch_nodes))

    def _sample_hops_arena(
        self,
        n_id: np.ndarray,
        local_of: np.ndarray,
        touched: list[np.ndarray],
        adjs: list[Adj],
        rng: np.random.Generator,
    ) -> np.ndarray:
        arena = self.arena
        assert arena is not None
        for fanout in self.fanouts:
            n_dst = len(n_id)
            src_sel, dst_sel = expand_frontier_arena(
                self.graph, n_id, fanout, rng, arena
            )
            src_local, ordered_new = first_occurrence_dedup(
                src_sel, local_of, n_dst, arena
            )
            if ordered_new is not None:
                touched.append(ordered_new)
                n_id = np.concatenate([n_id, ordered_new])
            n_edges = len(src_sel)
            edge_index = np.empty((2, n_edges), dtype=np.int64)
            edge_index[0] = src_local
            edge_index[1] = dst_sel
            adjs.append(Adj(edge_index=edge_index, e_id=None, size=(len(n_id), n_dst)))
        return n_id

    def _sample_hops_legacy(
        self,
        n_id: np.ndarray,
        local_of: np.ndarray,
        touched: list[np.ndarray],
        adjs: list[Adj],
        rng: np.random.Generator,
    ) -> np.ndarray:
        for fanout in self.fanouts:
            n_dst = len(n_id)
            src_global, dst_local = expand_frontier_vectorized(
                self.graph, n_id, fanout, rng
            )
            # Fused remap + dedup (design points 2 and 3): find first
            # occurrences of unseen globals in discovery order.
            src_local = local_of[src_global]
            new_mask = src_local < 0
            if new_mask.any():
                new_globals = src_global[new_mask]
                uniq, first_pos = np.unique(new_globals, return_index=True)
                discovery = np.argsort(first_pos, kind="stable")
                ordered_new = uniq[discovery]
                local_of[ordered_new] = len(n_id) + np.arange(
                    len(ordered_new), dtype=np.int64
                )
                touched.append(ordered_new)
                n_id = np.concatenate([n_id, ordered_new])
                src_local = local_of[src_global]
            edge_index = np.stack([src_local, dst_local])
            adjs.append(
                Adj(edge_index=edge_index, e_id=None, size=(len(n_id), n_dst))
            )
        return n_id
