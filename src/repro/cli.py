"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``train``    — train an architecture on a stand-in dataset through the
  serial (PyG-style) or pipelined (SALIENT) executor, then evaluate with
  sampled inference.
- ``simulate`` — run the calibrated performance model: single-GPU epoch
  breakdown or multi-GPU scaling at paper scale.
- ``info``     — dataset statistics (the Table 4 view) for one or all
  stand-ins.
- ``timeline`` — trace a few mini-batches through both executors and
  render Figure-1-style ASCII timelines.
- ``diagnose`` — bottleneck attribution for a ``run_report`` JSON: blocking
  shares, stall decomposition and the prep-/transfer-/compute-bound
  verdict.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SALIENT reproduction: fast sampling and pipelining for GNNs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a GNN through the SALIENT pipeline")
    train.add_argument("--dataset", default="products", help="arxiv|products|papers")
    train.add_argument("--model", default="sage", help="sage|gat|gin|sage-ri|mlp")
    train.add_argument("--scale", type=float, default=0.375)
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--batch-size", type=int, default=64)
    train.add_argument("--hidden", type=int, default=48)
    train.add_argument("--lr", type=float, default=0.01)
    train.add_argument(
        "--executor",
        choices=["serial", "pipelined", "staged", "multiprocess"],
        default="pipelined",
    )
    train.add_argument(
        "--prepare-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker *processes* for --executor multiprocess (defaults to "
        "the thread worker count); threads-based executors ignore it",
    )
    train.add_argument(
        "--mp-start-method",
        choices=["spawn", "fork", "forkserver"],
        default="spawn",
        help="multiprocessing start method for --executor multiprocess",
    )
    train.add_argument(
        "--infer-executor",
        choices=["serial", "pipelined", "staged"],
        default="serial",
        help="executor policy for the post-training evaluation passes",
    )
    train.add_argument("--sampler", choices=["fast", "pyg"], default="fast")
    train.add_argument(
        "--feature-tier",
        choices=["ram", "mmap", "mmap-quant"],
        default="ram",
        help="feature storage: in-RAM fp16 (ram), memory-mapped slab with "
        "a RAM-hot tier (mmap, byte-identical losses), or a uint8 "
        "quantized slab with fused dequantize-on-slice (mmap-quant)",
    )
    train.add_argument(
        "--hot-rows",
        type=int,
        default=None,
        metavar="N",
        help="RAM-hot rows for the mmap tiers (highest-degree nodes; "
        "default num_nodes // 8, 0 disables the hot tier)",
    )
    train.add_argument(
        "--slab-dir",
        default=None,
        metavar="DIR",
        help="directory for the on-disk feature slab (default: a "
        "temporary directory removed on exit)",
    )
    train.add_argument(
        "--compute",
        choices=["fused", "legacy"],
        default="fused",
        help="kernel generation: fused aggregation plans + workspace pool, "
        "or the legacy per-call kernels (byte-identical results)",
    )
    train.add_argument("--fanouts", type=int, nargs="+", default=None)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome trace-event JSON of the run "
        "(open in chrome://tracing or https://ui.perfetto.dev)",
    )
    train.add_argument(
        "--report-out",
        default=None,
        metavar="PATH",
        help="write a machine-readable run_report JSON artifact",
    )
    train.add_argument(
        "--probe-interval",
        type=float,
        default=10.0,
        metavar="MS",
        help="continuous-monitoring sampling period in milliseconds "
        "(0 disables the probe sampler; probes only run when --report-out "
        "or --trace-out is set)",
    )

    simulate = sub.add_parser("simulate", help="run the calibrated performance model")
    simulate.add_argument("--dataset", default="papers")
    simulate.add_argument(
        "--config", choices=["pyg", "salient"], default="salient",
        help="pipeline configuration to simulate",
    )
    simulate.add_argument("--gpus", type=int, default=1)
    simulate.add_argument("--model", default="sage")

    info = sub.add_parser("info", help="dataset statistics (Table 4 view)")
    info.add_argument("--dataset", default=None, help="one dataset, or all if omitted")
    info.add_argument("--scale", type=float, default=1.0)

    timeline = sub.add_parser("timeline", help="render Figure-1-style timelines")
    timeline.add_argument("--dataset", default="products")
    timeline.add_argument("--scale", type=float, default=0.375)
    timeline.add_argument("--batches", type=int, default=6)

    diagnose = sub.add_parser(
        "diagnose", help="bottleneck attribution for a run_report JSON"
    )
    diagnose.add_argument("report", help="path to a run_report JSON artifact")
    return parser


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.datasets import get_dataset
    from repro.telemetry import ProbeSampler, Tracer
    from repro.train import Trainer, get_config
    from repro.train.config import ExperimentConfig
    from repro.train.loop import TrainResult

    dataset = get_dataset(args.dataset, scale=args.scale, seed=args.seed)
    try:
        base = get_config(args.dataset, args.model)
    except KeyError:
        base = ExperimentConfig(dataset=args.dataset, model=args.model)
    config = replace(
        base,
        batch_size=args.batch_size,
        hidden_channels=args.hidden,
        lr=args.lr,
        **(
            {
                "train_fanouts": tuple(args.fanouts),
                # inference depth must match the model depth
                "infer_fanouts": tuple([20] * len(args.fanouts)),
                "num_layers": len(args.fanouts),
            }
            if args.fanouts
            else {}
        ),
    )
    print(f"dataset: {dataset}")
    print(
        f"model: {config.model} layers={config.num_layers} "
        f"hidden={config.hidden_channels} fanouts={config.train_fanouts}"
    )
    tracer = Tracer(enabled=args.trace_out is not None)
    # Continuous monitoring only pays off when its series land somewhere:
    # enable the sampler exactly when an artifact is requested.
    want_probes = (
        args.probe_interval > 0
        and (args.report_out is not None or args.trace_out is not None)
    )
    probes = ProbeSampler(
        interval=max(args.probe_interval, 0.001) / 1000.0,
        enabled=want_probes,
        clock=tracer.now,  # one time axis for spans and counter tracks
    )
    trainer = Trainer(
        dataset,
        config,
        executor=args.executor,
        sampler=args.sampler,
        seed=args.seed,
        tracer=tracer,
        infer_executor=args.infer_executor,
        compute=args.compute,
        probes=probes,
        prepare_workers=args.prepare_workers,
        mp_start_method=args.mp_start_method,
        feature_tier=args.feature_tier,
        hot_rows=args.hot_rows,
        slab_dir=args.slab_dir,
    )
    result = TrainResult()
    with probes:
        for epoch in range(args.epochs):
            stats = trainer.train_epoch(epoch)
            result.epoch_stats.append(stats)
            print(
                f"epoch {epoch:3d}: loss={np.mean(stats.losses):.4f} "
                f"time={stats.epoch_time * 1000:.0f}ms"
            )
    val_acc = trainer.evaluate("val")
    test_acc = trainer.evaluate("test")
    print(f"val accuracy:  {val_acc:.4f}")
    print(f"test accuracy: {test_acc:.4f}")
    if result.epoch_stats:
        print(f"bottleneck: {result.epoch_stats[-1].attribution(tracer).detail}")
    if args.trace_out:
        tracer.write_chrome_trace(args.trace_out, probes=probes if want_probes else None)
        print(f"trace written to {args.trace_out}")
    if args.report_out:
        report = trainer.build_report(result)
        report.add_evaluation("val", val_acc)
        report.add_evaluation("test", test_acc)
        report.write(args.report_out)
        print(f"run report written to {args.report_out}")
    trainer.shutdown()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.perfmodel import (
        CONFIG_PYG,
        CONFIG_SALIENT,
        scaling_curve,
        simulate_cluster_epoch,
        simulate_epoch,
    )
    from repro.telemetry import format_table

    config = CONFIG_SALIENT if args.config == "salient" else CONFIG_PYG
    if args.gpus == 1:
        b = simulate_epoch(args.dataset, config)
        rows = [
            {
                "dataset": b.dataset,
                "config": b.config,
                "epoch_s": round(b.epoch_time, 2),
                "prep_s": round(b.prep_blocking, 2),
                "transfer_s": round(b.transfer_blocking, 2),
                "train_s": round(b.train_time, 2),
                "gpu_util": round(b.gpu_utilization, 2),
            }
        ]
        print(format_table(rows, title="Simulated single-GPU epoch (paper scale)"))
    else:
        points = scaling_curve(
            args.dataset,
            tuple(sorted({1, args.gpus} | {2, 4, 8} & set(range(args.gpus + 1)))),
            config,
            model=args.model,
        )
        rows = [
            {
                "gpus": p.num_gpus,
                "epoch_s": round(p.epoch_time, 2),
                "speedup": round(p.speedup_vs_1gpu, 2),
            }
            for p in points
        ]
        print(format_table(rows, title=f"Simulated scaling ({args.dataset}, {args.model})"))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.datasets import available_datasets, get_dataset
    from repro.telemetry import format_table

    names = [args.dataset] if args.dataset else available_datasets()
    rows = [get_dataset(name, scale=args.scale).summary_row() for name in names]
    print(format_table(rows, title=f"Datasets (scale={args.scale})"))
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.datasets import get_dataset
    from repro.models import build_model
    from repro.nn import Adam
    from repro.runtime import (
        Device,
        PipelinedExecutor,
        SerialExecutor,
        Tracer,
        render_timeline,
    )
    from repro.sampling import FastNeighborSampler, PyGNeighborSampler
    from repro.slicing import FeatureStore
    from repro.tensor import Tensor, functional as F

    dataset = get_dataset(args.dataset, scale=args.scale, seed=0)
    store = FeatureStore(dataset.features, dataset.labels)
    rng = np.random.default_rng(1)
    size = min(192, len(dataset.split.train))
    batches = [
        rng.choice(dataset.split.train, size=size, replace=False)
        for _ in range(args.batches)
    ]

    def make_train_fn():
        model = build_model(
            "sage", dataset.num_features, 48, dataset.num_classes,
            rng=np.random.default_rng(0),
        )
        optimizer = Adam(model.parameters(), lr=3e-3)

        def fn(batch):
            model.train()
            optimizer.zero_grad()
            loss = F.nll_loss(
                model(Tensor(batch.xs.data), batch.mfg.adjs), batch.ys.data
            )
            loss.backward()
            optimizer.step()
            return loss.item()

        return fn

    tracer = Tracer()
    device = Device(transfer_bandwidth=25e6, roundtrip_latency=5e-4)
    serial = SerialExecutor(
        PyGNeighborSampler(dataset.graph, [15, 10, 5]), store, device, tracer=tracer
    )
    stats = serial.run_epoch(batches, make_train_fn())
    device.shutdown()
    print(
        f"(a) standard workflow - {stats.epoch_time*1000:.0f} ms, "
        f"GPU busy {100 * tracer.gpu_utilization():.0f}%"
    )
    print(render_timeline(tracer, width=96))

    tracer = Tracer()
    device = Device(transfer_bandwidth=25e6)
    pipelined = PipelinedExecutor(
        lambda: FastNeighborSampler(dataset.graph, [15, 10, 5]),
        store,
        device,
        num_workers=2,
        max_batch_hint=size,
        tracer=tracer,
    )
    stats = pipelined.run_epoch(batches, make_train_fn())
    device.shutdown()
    print(
        f"\n(b) SALIENT - {stats.epoch_time*1000:.0f} ms, "
        f"GPU busy {100 * tracer.gpu_utilization():.0f}%"
    )
    print(render_timeline(tracer, width=96))
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import attribute_report, render_attribution

    try:
        with open(args.report) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"diagnose: cannot read {args.report}: {exc}", file=sys.stderr)
        return 2
    if doc.get("bench") != "run_report":
        print(
            f"diagnose: {args.report} is not a run_report artifact "
            f"(bench={doc.get('bench')!r})",
            file=sys.stderr,
        )
        return 2
    try:
        attribution = attribute_report(doc)
    except ValueError as exc:
        print(f"diagnose: {exc}", file=sys.stderr)
        return 2
    config = doc.get("config") or {}
    print(
        f"run: {doc.get('command')} executor={config.get('executor')} "
        f"sampler={config.get('sampler')} epochs={len(doc.get('epochs') or [])}"
    )
    print(render_attribution(attribution, epochs=doc.get("epochs")))
    return 0


_COMMANDS = {
    "train": _cmd_train,
    "simulate": _cmd_simulate,
    "info": _cmd_info,
    "timeline": _cmd_timeline,
    "diagnose": _cmd_diagnose,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
