"""Leaf layers: Linear, BatchNorm1d, ReLU, Dropout.

Semantics follow PyTorch defaults so the model listings in the paper's
appendix translate directly.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..tensor import Tensor, functional as F, init
from .module import Module

__all__ = ["Linear", "BatchNorm1d", "ReLU", "LeakyReLU", "Dropout"]


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with PyTorch weight layout."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self._rng = rng or np.random.default_rng()
        self.weight = init.kaiming_uniform(in_features, out_features, rng=self._rng)
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = init.uniform(-bound, bound, (out_features,), rng=self._rng)
        else:
            self.bias = None

    def reset_parameters(self) -> None:
        self.weight.data[...] = init.kaiming_uniform(
            self.in_features, self.out_features, rng=self._rng
        ).data
        if self.bias is not None:
            bound = 1.0 / math.sqrt(self.in_features)
            self.bias.data[...] = self._rng.uniform(
                -bound, bound, size=(self.out_features,)
            ).astype(np.float32)

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class BatchNorm1d(Module):
    """Batch normalization over the leading (batch) dimension.

    Training mode normalizes with batch statistics and maintains running
    estimates; eval mode uses the running estimates (needed by GIN and
    SAGE-RI, which the paper trains with BatchNorm layers).
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = init.ones(num_features)
        self.bias = init.zeros(num_features)
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def reset_parameters(self) -> None:
        self.weight.data[...] = 1.0
        self.bias.data[...] = 0.0
        self.running_mean[...] = 0.0
        self.running_var[...] = 1.0

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expects (N, {self.num_features}), got {x.shape}"
            )
        if self.training:
            # Fully differentiable batch statistics: gradients flow through
            # the mean and variance, matching torch.nn.BatchNorm1d.
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            inv_std = (var + self.eps) ** -0.5
            n = x.shape[0]
            unbiased = x.data.var(axis=0) * (n / max(n - 1, 1))
            self.running_mean[...] = (
                (1 - self.momentum) * self.running_mean
                + self.momentum * x.data.mean(axis=0)
            )
            self.running_var[...] = (
                (1 - self.momentum) * self.running_var + self.momentum * unbiased
            )
        else:
            centered = x - Tensor(self.running_mean)
            inv_std = Tensor(
                ((self.running_var + self.eps) ** -0.5).astype(np.float32)
            )
        return centered * inv_std * self.weight + self.bias

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.num_features})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, p=self.p, training=self.training, rng=self.rng)
