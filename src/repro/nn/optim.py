"""Optimizers (SGD, Adam) and learning-rate schedulers.

Adam follows Kingma & Ba (2015) exactly — the optimizer the paper uses for
all experiments — including bias correction.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from ..tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "CosineLR"]


class Optimizer:
    """Base optimizer over a flat list of parameters."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(param.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        self._step += 1
        bias1 = 1 - self.beta1**self._step
        bias2 = 1 - self.beta2**self._step
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(param.data)
                self._v[i] = np.zeros_like(param.data)
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "step": self._step,
            "m": [m.copy() if m is not None else None for m in self._m],
            "v": [v.copy() if v is not None else None for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self._step = state["step"]
        self._m = [m.copy() if m is not None else None for m in state["m"]]
        self._v = [v.copy() if v is not None else None for v in state["v"]]


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        self.optimizer.lr = self._base_lr * self.gamma ** (self._epoch // self.step_size)


class CosineLR:
    """Cosine annealing from the base LR down to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0) -> None:
        self.optimizer = optimizer
        self.t_max = t_max
        self.min_lr = min_lr
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.t_max)
        cos = (1 + math.cos(math.pi * self._epoch / self.t_max)) / 2
        self.optimizer.lr = self.min_lr + (self._base_lr - self.min_lr) * cos
