"""Neural-network module system, leaf layers and optimizers."""

from .layers import BatchNorm1d, Dropout, LeakyReLU, Linear, ReLU
from .module import Identity, Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, CosineLR, Optimizer, StepLR

__all__ = [
    "Module",
    "ModuleList",
    "Sequential",
    "Identity",
    "Parameter",
    "Linear",
    "BatchNorm1d",
    "ReLU",
    "LeakyReLU",
    "Dropout",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
]
