"""Minimal module system mirroring ``torch.nn`` semantics.

Modules register parameters and submodules by attribute assignment, expose
``parameters()`` / ``named_parameters()`` / ``state_dict()`` and a
train/eval mode flag. This keeps the model definitions in
:mod:`repro.models` line-for-line close to the paper's appendix listings.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = ["Module", "ModuleList", "Sequential", "Identity", "Parameter"]


def Parameter(data: np.ndarray) -> Tensor:
    """Wrap an array as a trainable tensor (requires_grad=True)."""
    return Tensor(data, requires_grad=True)


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration by attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track non-trainable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place of the attribute."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Tensor]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield (f"{prefix}{name}", self._buffers[name])
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({name: b.copy() for name, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        for name, value in state.items():
            if name in params:
                if params[name].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{params[name].data.shape} vs {value.shape}"
                    )
                params[name].data[...] = value
            else:
                self._load_buffer(name, value)

    def _load_buffer(self, dotted: str, value: np.ndarray) -> None:
        parts = dotted.split(".")
        target: Module = self
        for part in parts[:-1]:
            target = target._modules[part]
        if parts[-1] not in target._buffers:
            raise KeyError(f"unknown state entry {dotted!r}")
        target._set_buffer(parts[-1], value.copy())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def reset_parameters(self) -> None:
        """Re-initialize parameters; overridden by leaf layers."""
        for module in self._modules.values():
            module.reset_parameters()


class ModuleList(Module):
    """Indexable container of submodules (``torch.nn.ModuleList``)."""

    def __init__(self, modules: Optional[list] = None) -> None:
        super().__init__()
        self._list: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._list)
        self._list.append(module)
        self._modules[str(index)] = module
        return self

    def __getitem__(self, index: int) -> Module:
        return self._list[index]

    def __len__(self) -> int:
        return len(self._list)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)


class Sequential(Module):
    """Feed-forward container; used for GIN's per-layer MLPs."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._list: List[Module] = []
        for i, layer in enumerate(layers):
            self._list.append(layer)
            self._modules[str(i)] = layer

    def forward(self, x):
        for layer in self._list:
            x = layer(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self._list[index]

    def __len__(self) -> int:
        return len(self._list)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)


class Identity(Module):
    """Pass-through module (used by SAGE-RI residual shortcuts)."""

    def forward(self, x):
        return x
