"""Evaluation metrics: accuracy, per-degree accuracy (Figure 3), summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "accuracy",
    "DegreeAccuracy",
    "accuracy_by_degree",
    "confusion_matrix",
    "macro_f1",
    "mean_and_std",
]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct argmax predictions.

    ``predictions`` may be class ids ``(N,)`` or logits ``(N, C)``.
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"prediction/label shape mismatch: {predictions.shape} vs {labels.shape}"
        )
    if len(labels) == 0:
        return float("nan")
    return float((predictions == labels).mean())


@dataclass
class DegreeAccuracy:
    """Accuracy and node count per degree bucket (Figure 3's two curves)."""

    bin_edges: np.ndarray  # (B+1,) degree bucket boundaries
    node_counts: np.ndarray  # (B,)
    accuracies: np.ndarray  # (B,) NaN for empty buckets

    def rows(self) -> list[dict]:
        out = []
        for i in range(len(self.node_counts)):
            out.append(
                {
                    "degree_lo": int(self.bin_edges[i]),
                    "degree_hi": int(self.bin_edges[i + 1]),
                    "nodes": int(self.node_counts[i]),
                    "accuracy": float(self.accuracies[i]),
                }
            )
        return out


def accuracy_by_degree(
    predictions: np.ndarray,
    labels: np.ndarray,
    degrees: np.ndarray,
    num_bins: int = 12,
    log_scale: bool = True,
) -> DegreeAccuracy:
    """Bucket test nodes by degree and compute per-bucket accuracy.

    Figure 3 overlays the node-count distribution with per-degree accuracy;
    log-spaced buckets match its log-degree x-axis.
    """
    predictions = np.asarray(predictions)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    degrees = np.asarray(degrees)
    max_degree = max(int(degrees.max()), 1) if len(degrees) else 1
    if log_scale:
        edges = np.unique(
            np.round(np.logspace(0, np.log10(max_degree + 1), num_bins + 1)).astype(int)
        )
    else:
        edges = np.linspace(0, max_degree + 1, num_bins + 1).astype(int)
    bucket = np.clip(np.searchsorted(edges, degrees, side="right") - 1, 0, len(edges) - 2)
    counts = np.bincount(bucket, minlength=len(edges) - 1)
    correct = np.bincount(
        bucket, weights=(predictions == labels).astype(float), minlength=len(edges) - 1
    )
    with np.errstate(invalid="ignore"):
        accs = np.where(counts > 0, correct / np.maximum(counts, 1), np.nan)
    return DegreeAccuracy(bin_edges=edges, node_counts=counts, accuracies=accs)


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """``(num_classes, num_classes)`` counts; rows = true, cols = predicted."""
    predictions = np.asarray(predictions)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("prediction/label shape mismatch")
    flat = labels * num_classes + predictions
    counts = np.bincount(flat, minlength=num_classes * num_classes)
    return counts.reshape(num_classes, num_classes)


def macro_f1(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> float:
    """Unweighted mean of per-class F1 (robust to products-style imbalance)."""
    cm = confusion_matrix(predictions, labels, num_classes)
    tp = np.diag(cm).astype(np.float64)
    fp = cm.sum(axis=0) - tp
    fn = cm.sum(axis=1) - tp
    denom = 2 * tp + fp + fn
    with np.errstate(invalid="ignore", divide="ignore"):
        f1 = np.where(denom > 0, 2 * tp / denom, np.nan)
    present = ~np.isnan(f1)
    if not present.any():
        return float("nan")
    return float(f1[present].mean())


def mean_and_std(values: Sequence[float]) -> tuple[float, float]:
    """Mean and sample standard deviation (Table 6's ± column)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0:
        return float("nan"), float("nan")
    std = float(arr.std(ddof=1)) if len(arr) > 1 else 0.0
    return float(arr.mean()), std
