"""Inference paths: mini-batch sampled inference vs layer-wise full inference.

Section 5 argues for running inference with neighborhood sampling — the
same code path as training — instead of the conventional layer-wise
full-neighborhood computation. Both are implemented here so Table 6 and
Figure 3 can compare them:

- :func:`sampled_inference` — mini-batch inference through a sampler; this
  is *one-shot* sampling (no averaging), exactly the regime the paper
  studies.
- :func:`layerwise_full_inference` — evaluates the network layer by layer
  over full neighborhoods, materializing every layer's representations for
  all nodes in host memory. Also reports that memory footprint, the cost
  the paper's Section 5 highlights (dense architectures like SAGE-RI must
  keep *all* layers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from ..models.architectures import GAT, GIN, MLP, SAGERI, GraphSAGE, _SampledGNN
from ..nn.module import Module
from ..sampling.base import BatchIterator, NeighborSamplerBase
from ..sampling.fast_sampler import FastNeighborSampler
from ..tensor import Tensor, functional as F, no_grad

__all__ = ["sampled_inference", "layerwise_full_inference", "LayerwiseResult"]


def sampled_inference(
    model: Module,
    features: np.ndarray,
    graph: CSRGraph,
    nodes: np.ndarray,
    fanouts: Sequence[Optional[int]],
    batch_size: int = 1024,
    seed: int = 0,
    sampler: Optional[NeighborSamplerBase] = None,
) -> np.ndarray:
    """Predict log-probabilities for ``nodes`` with one-shot sampling.

    Reuses the training code path (model.forward over sampled MFGs), the
    simplification benefit Section 5 emphasizes.
    """
    model.eval()
    sampler = sampler or FastNeighborSampler(graph, list(fanouts))
    nodes = np.asarray(nodes, dtype=np.int64)
    out: Optional[np.ndarray] = None
    cursor = 0
    with no_grad():
        for batch in BatchIterator(nodes, batch_size, shuffle=False):
            rng = np.random.default_rng(np.random.SeedSequence([seed, cursor]))
            mfg = sampler.sample(batch, rng)
            x = Tensor(features[mfg.n_id].astype(np.float32))
            log_probs = model(x, mfg.adjs).data
            if out is None:
                out = np.empty((len(nodes), log_probs.shape[1]), dtype=np.float32)
            out[cursor : cursor + len(batch)] = log_probs
            cursor += len(batch)
    assert out is not None and cursor == len(nodes)
    return out


@dataclass
class LayerwiseResult:
    """Full-neighborhood inference output plus its memory footprint."""

    log_probs: np.ndarray  # (N, C) for all nodes
    peak_host_bytes: int  # bytes of simultaneously live layer activations

    def select(self, nodes: np.ndarray) -> np.ndarray:
        return self.log_probs[np.asarray(nodes, dtype=np.int64)]


def _propagate_full(
    apply_layer,
    h_in: np.ndarray,
    graph: CSRGraph,
    batch_size: int,
) -> np.ndarray:
    """Apply one conv over full neighborhoods for every node, batched.

    The single-hop full-fanout sampler produces exact (unsampled) bipartite
    blocks, so this is the conventional layer-wise inference kernel.
    """
    sampler = FastNeighborSampler(graph, [None])
    rng = np.random.default_rng(0)  # unused: full fanout draws nothing
    h_out: Optional[np.ndarray] = None
    for batch in BatchIterator(
        np.arange(graph.num_nodes), batch_size, shuffle=False
    ):
        mfg = sampler.sample(batch, rng)
        adj = mfg.adjs[0]
        x_src = Tensor(h_in[mfg.n_id].astype(np.float32))
        x_dst = x_src[: adj.size[1]]
        out = apply_layer((x_src, x_dst), adj.edge_index).data
        if h_out is None:
            h_out = np.empty((graph.num_nodes, out.shape[1]), dtype=np.float32)
        h_out[batch] = out
    assert h_out is not None
    return h_out


def layerwise_full_inference(
    model: Module,
    features: np.ndarray,
    graph: CSRGraph,
    batch_size: int = 4096,
) -> LayerwiseResult:
    """Full-neighborhood, layer-by-layer inference for every node.

    Dispatches on architecture: plain stacks (SAGE, GAT) keep two live
    layer buffers; GIN adds its prediction head; SAGE-RI's dense
    (Inception) connections force *all* layer outputs to stay resident,
    multiplying host memory — the trade-off Section 5 calls out.
    """
    model.eval()
    with no_grad():
        if isinstance(model, (GraphSAGE, GAT)):
            return _layerwise_stack(model, features, graph, batch_size)
        if isinstance(model, GIN):
            return _layerwise_gin(model, features, graph, batch_size)
        if isinstance(model, SAGERI):
            return _layerwise_sage_ri(model, features, graph, batch_size)
        if isinstance(model, MLP):
            x = Tensor(features.astype(np.float32))
            log_probs = model(x, []).data
            return LayerwiseResult(log_probs, peak_host_bytes=log_probs.nbytes)
    raise TypeError(f"layerwise inference not implemented for {type(model).__name__}")


def _layerwise_stack(
    model: _SampledGNN, features: np.ndarray, graph: CSRGraph, batch_size: int
) -> LayerwiseResult:
    h = features
    peak = 0
    for i in range(model.num_layers):
        last = i == model.num_layers - 1

        def apply_layer(x_pair, edge_index, _conv=model.convs[i], _last=last):
            out = _conv(x_pair, edge_index)
            return out if _last else F.relu(out)

        h_next = _propagate_full(apply_layer, h, graph, batch_size)
        peak = max(peak, h.nbytes + h_next.nbytes)
        h = h_next
    log_probs = F.log_softmax(Tensor(h), axis=-1).data
    return LayerwiseResult(log_probs, peak_host_bytes=peak)


def _layerwise_gin(
    model: GIN, features: np.ndarray, graph: CSRGraph, batch_size: int
) -> LayerwiseResult:
    h = features
    peak = 0
    for i in range(model.num_layers):
        def apply_layer(x_pair, edge_index, _conv=model.convs[i]):
            return _conv(x_pair, edge_index)

        h_next = _propagate_full(apply_layer, h, graph, batch_size)
        peak = max(peak, h.nbytes + h_next.nbytes)
        h = h_next
    x = model.lin2(model.lin1(Tensor(h)).relu())
    log_probs = F.log_softmax(x, axis=-1).data
    return LayerwiseResult(log_probs, peak_host_bytes=peak)


def _layerwise_sage_ri(
    model: SAGERI, features: np.ndarray, graph: CSRGraph, batch_size: int
) -> LayerwiseResult:
    x = features.astype(np.float32)
    collect: list[np.ndarray] = [x]  # dense connections: all layers stay live
    h = x
    for i in range(model.num_layers):
        def apply_layer(x_pair, edge_index, _i=i):
            out = model.convs[_i](x_pair, edge_index)
            out = model.bns[_i](out)
            return F.leaky_relu(out)

        h_next = _propagate_full(apply_layer, h, graph, batch_size)
        collect.append(h_next)
        # Residual: x_{i+1} = h_i + res(x_i); in full inference the target
        # set is every node, so the residual applies row-wise globally.
        res = model.res_linears[i](Tensor(h)).data
        h = h_next + res
    peak = sum(arr.nbytes for arr in collect) + h.nbytes
    concat = np.concatenate(collect, axis=1)
    log_probs = F.log_softmax(model.mlp(Tensor(concat)), axis=-1).data
    return LayerwiseResult(log_probs, peak_host_bytes=peak)
