"""Inference paths: mini-batch sampled inference vs layer-wise full inference.

Section 5 argues for running inference with neighborhood sampling — the
same code path as training — instead of the conventional layer-wise
full-neighborhood computation. Both are implemented here so Table 6 and
Figure 3 can compare them:

- :func:`sampled_inference` — mini-batch inference through a sampler; this
  is *one-shot* sampling (no averaging), exactly the regime the paper
  studies.
- :func:`layerwise_full_inference` — evaluates the network layer by layer
  over full neighborhoods, materializing every layer's representations for
  all nodes in host memory. Also reports that memory footprint, the cost
  the paper's Section 5 highlights (dense architectures like SAGE-RI must
  keep *all* layers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from ..models.architectures import GAT, GIN, MLP, SAGERI, GraphSAGE, _SampledGNN
from ..nn.module import Module
from ..runtime.device import Device, DeviceBatch
from ..runtime.pinned import PinnedBufferPool
from ..runtime.stages import (
    ComputeStage,
    PrepareStage,
    SampleStage,
    SliceStage,
    StagedPipeline,
    TransferStage,
)
from ..telemetry.tracer import Tracer
from ..runtime.workers import estimate_max_rows
from ..sampling.base import BatchIterator, NeighborSamplerBase
from ..sampling.fast_sampler import FastNeighborSampler
from ..slicing.store import FeatureStore
from ..tensor import Tensor, functional as F, no_grad
from ..telemetry import Counters, MetricsRegistry

__all__ = ["sampled_inference", "layerwise_full_inference", "LayerwiseResult"]


def sampled_inference(
    model: Module,
    features: np.ndarray,
    graph: CSRGraph,
    nodes: np.ndarray,
    fanouts: Sequence[Optional[int]],
    batch_size: int = 1024,
    seed: int = 0,
    sampler: Optional[NeighborSamplerBase] = None,
    executor: str = "serial",
    device: Optional[Device] = None,
    num_workers: int = 2,
    prefetch_depth: int = 4,
    pinned_slots: int = 4,
    tracer: Optional[Tracer] = None,
    counters: Optional[Counters] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> np.ndarray:
    """Predict log-probabilities for ``nodes`` with one-shot sampling.

    Reuses the training code path (model.forward over sampled MFGs), the
    simplification benefit Section 5 emphasizes — and, like training, it
    runs on the staged-pipeline runtime:

    - ``executor="serial"`` — depth-0 policy, every stage inline (the
      conventional inference loop);
    - ``executor="pipelined"`` — fused prepare workers + bounded prefetch,
      Section 5.4's pipelined inference;
    - ``executor="staged"`` — split sample/slice stages, same prefetch.

    When a :class:`~repro.runtime.device.Device` is given, batches move
    through a transfer stage (pinned staging buffers, transfer stream);
    the overlapped executors then hide transfer+prepare behind compute.
    Results are byte-identical across executors: batch seeds depend only
    on the batch's node offset (``[seed, cursor]``) and completed batches
    are delivered in index order.
    """
    if executor not in ("serial", "pipelined", "staged"):
        raise ValueError(f"unknown executor {executor!r}")
    model.eval()
    nodes = np.asarray(nodes, dtype=np.int64)
    if hasattr(features, "slice_features"):
        # Already a store (e.g. a TieredFeatureStore): use it directly so
        # inference slices through the same tier hierarchy as training.
        store = features
    else:
        # half_precision=None: wrap the caller's array without changing
        # dtype or values; labels are a placeholder (inference needs none).
        store = FeatureStore(features, half_precision=None)
    if sampler is not None:
        factory = lambda: sampler  # noqa: E731 - shared instance: 1 worker
        num_workers = 1
    else:
        factory = lambda: FastNeighborSampler(graph, list(fanouts))  # noqa: E731

    overlapped = executor != "serial"
    pinned_pool = None
    shared_counters = counters if counters is not None else Counters()
    shared_metrics = metrics if metrics is not None else MetricsRegistry()
    if device is not None and overlapped:
        max_rows = estimate_max_rows(factory().fanouts, batch_size, store.num_nodes)
        pinned_pool = PinnedBufferPool(
            num_slots=pinned_slots,
            max_rows=max_rows,
            num_features=store.num_features,
            max_batch=batch_size,
            feature_dtype=store.feature_dtype,
            counters=shared_counters,
            metrics=shared_metrics,
        )

    stages: list = []
    if executor == "pipelined":
        stages.append(
            PrepareStage(factory, store, pinned_pool=pinned_pool, workers=num_workers)
        )
    else:
        stages.append(SampleStage(factory, workers=num_workers))
        stages.append(SliceStage(store, pinned_pool=pinned_pool))
    if device is not None:
        stages.append(TransferStage(device))
    stages.append(ComputeStage(name="infer"))

    def infer_fn(payload) -> np.ndarray:
        if isinstance(payload, DeviceBatch):
            xs, mfg = payload.xs.data, payload.mfg
        else:
            xs, mfg = payload.xs, payload.mfg
        x = Tensor(np.asarray(xs, dtype=np.float32))
        return model(x, mfg.adjs).data

    out: Optional[np.ndarray] = None

    def on_result(env) -> None:
        nonlocal out
        log_probs = env.output
        if out is None:
            out = np.empty((len(nodes), log_probs.shape[1]), dtype=np.float32)
        start = env.index * batch_size
        out[start : start + len(env.nodes)] = log_probs

    pipeline = StagedPipeline(
        stages,
        prefetch_depth=prefetch_depth if overlapped else 0,
        seed=seed,
        # The batch's node offset (not its index) keys the RNG stream,
        # preserving the historical cursor-based seeding.
        rng_entries=lambda index: [seed, index * batch_size],
        tracer=tracer,
        counters=shared_counters,
        metrics=shared_metrics,
    )
    batches = list(BatchIterator(nodes, batch_size, shuffle=False))
    with no_grad():
        pipeline.run_epoch(batches, infer_fn, on_result=on_result)
    assert out is not None and out.shape[0] == len(nodes)
    return out


@dataclass
class LayerwiseResult:
    """Full-neighborhood inference output plus its memory footprint."""

    log_probs: np.ndarray  # (N, C) for all nodes
    peak_host_bytes: int  # bytes of simultaneously live layer activations

    def select(self, nodes: np.ndarray) -> np.ndarray:
        return self.log_probs[np.asarray(nodes, dtype=np.int64)]


def _propagate_full(
    apply_layer,
    h_in: np.ndarray,
    graph: CSRGraph,
    batch_size: int,
) -> np.ndarray:
    """Apply one conv over full neighborhoods for every node, batched.

    The single-hop full-fanout sampler produces exact (unsampled) bipartite
    blocks, so this is the conventional layer-wise inference kernel.  Runs
    on the depth-0 staged pipeline like every other execution path (full
    fanout draws nothing from the RNG, so seeding is irrelevant here).
    """
    store = FeatureStore(h_in, half_precision=None)
    h_out: Optional[np.ndarray] = None

    def layer_fn(sliced) -> np.ndarray:
        adj = sliced.mfg.adjs[0]
        x_src = Tensor(np.asarray(sliced.xs, dtype=np.float32))
        x_dst = x_src[: adj.size[1]]
        return apply_layer((x_src, x_dst), adj.edge_index).data

    def on_result(env) -> None:
        nonlocal h_out
        out = env.output
        if h_out is None:
            h_out = np.empty((graph.num_nodes, out.shape[1]), dtype=np.float32)
        h_out[env.nodes] = out

    pipeline = StagedPipeline(
        [
            SampleStage(lambda: FastNeighborSampler(graph, [None])),
            SliceStage(store),
            ComputeStage(name="infer"),
        ],
        prefetch_depth=0,
    )
    batches = list(
        BatchIterator(np.arange(graph.num_nodes), batch_size, shuffle=False)
    )
    pipeline.run_epoch(batches, layer_fn, on_result=on_result)
    assert h_out is not None
    return h_out


def layerwise_full_inference(
    model: Module,
    features: np.ndarray,
    graph: CSRGraph,
    batch_size: int = 4096,
) -> LayerwiseResult:
    """Full-neighborhood, layer-by-layer inference for every node.

    Dispatches on architecture: plain stacks (SAGE, GAT) keep two live
    layer buffers; GIN adds its prediction head; SAGE-RI's dense
    (Inception) connections force *all* layer outputs to stay resident,
    multiplying host memory — the trade-off Section 5 calls out.
    """
    model.eval()
    with no_grad():
        if isinstance(model, (GraphSAGE, GAT)):
            return _layerwise_stack(model, features, graph, batch_size)
        if isinstance(model, GIN):
            return _layerwise_gin(model, features, graph, batch_size)
        if isinstance(model, SAGERI):
            return _layerwise_sage_ri(model, features, graph, batch_size)
        if isinstance(model, MLP):
            x = Tensor(features.astype(np.float32))
            log_probs = model(x, []).data
            return LayerwiseResult(log_probs, peak_host_bytes=log_probs.nbytes)
    raise TypeError(f"layerwise inference not implemented for {type(model).__name__}")


def _layerwise_stack(
    model: _SampledGNN, features: np.ndarray, graph: CSRGraph, batch_size: int
) -> LayerwiseResult:
    h = features
    peak = 0
    for i in range(model.num_layers):
        last = i == model.num_layers - 1

        def apply_layer(x_pair, edge_index, _conv=model.convs[i], _last=last):
            out = _conv(x_pair, edge_index)
            return out if _last else F.relu(out)

        h_next = _propagate_full(apply_layer, h, graph, batch_size)
        peak = max(peak, h.nbytes + h_next.nbytes)
        h = h_next
    log_probs = F.log_softmax(Tensor(h), axis=-1).data
    return LayerwiseResult(log_probs, peak_host_bytes=peak)


def _layerwise_gin(
    model: GIN, features: np.ndarray, graph: CSRGraph, batch_size: int
) -> LayerwiseResult:
    h = features
    peak = 0
    for i in range(model.num_layers):
        def apply_layer(x_pair, edge_index, _conv=model.convs[i]):
            return _conv(x_pair, edge_index)

        h_next = _propagate_full(apply_layer, h, graph, batch_size)
        peak = max(peak, h.nbytes + h_next.nbytes)
        h = h_next
    x = model.lin2(model.lin1(Tensor(h)).relu())
    log_probs = F.log_softmax(x, axis=-1).data
    return LayerwiseResult(log_probs, peak_host_bytes=peak)


def _layerwise_sage_ri(
    model: SAGERI, features: np.ndarray, graph: CSRGraph, batch_size: int
) -> LayerwiseResult:
    x = features.astype(np.float32)
    collect: list[np.ndarray] = [x]  # dense connections: all layers stay live
    h = x
    for i in range(model.num_layers):
        def apply_layer(x_pair, edge_index, _i=i):
            out = model.convs[_i](x_pair, edge_index)
            out = model.bns[_i](out)
            return F.leaky_relu(out)

        h_next = _propagate_full(apply_layer, h, graph, batch_size)
        collect.append(h_next)
        # Residual: x_{i+1} = h_i + res(x_i); in full inference the target
        # set is every node, so the residual applies row-wise globally.
        res = model.res_linears[i](Tensor(h)).data
        h = h_next + res
    peak = sum(arr.nbytes for arr in collect) + h.nbytes
    concat = np.concatenate(collect, axis=1)
    log_probs = F.log_softmax(model.mlp(Tensor(concat)), axis=-1).data
    return LayerwiseResult(log_probs, peak_host_bytes=peak)
