"""End-to-end training driver wiring datasets, samplers, executors, models.

``Trainer`` is the single-GPU workflow of Listing 1 / Figure 1 with either
executor backend; ``repro.train.ddp`` scales it to multiple simulated GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..datasets.synthetic import Dataset
from ..models.architectures import build_model
from ..nn.module import Module
from ..nn.optim import Adam, Optimizer
from ..runtime.device import Device, DeviceBatch
from ..runtime.mp_prepare import MultiprocessExecutor
from ..runtime.pipeline import (
    EpochStats,
    PipelinedExecutor,
    SerialExecutor,
    StagedExecutor,
)
from ..telemetry.monitor import ProbeSampler
from ..telemetry.tracer import Tracer
from ..sampling.base import BatchIterator, NeighborSamplerBase
from ..sampling.fast_sampler import FastNeighborSampler
from ..sampling.pyg_sampler import PyGNeighborSampler
from ..slicing.store import FeatureStore
from ..telemetry import Counters, MetricsRegistry, RunReport
from ..tensor import Tensor, Workspace, compute_scope, functional as F, workspace_scope
from .config import ExperimentConfig
from .inference import sampled_inference
from .metrics import accuracy

__all__ = ["Trainer", "TrainResult"]


@dataclass
class TrainResult:
    """History of one training run."""

    epoch_stats: list[EpochStats] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(s.epoch_time for s in self.epoch_stats)

    def final_loss(self) -> float:
        losses = self.epoch_stats[-1].losses if self.epoch_stats else []
        return float(np.mean(losses)) if losses else float("nan")


class Trainer:
    """Mini-batch GNN training with neighborhood sampling.

    Parameters
    ----------
    dataset:
        A :class:`repro.datasets.Dataset`.
    config:
        Hyperparameters (Table 5 row).
    executor:
        ``"serial"`` — the baseline PyG workflow; ``"pipelined"`` — SALIENT
        (fused prepare workers); ``"staged"`` — split sample/slice stages;
        ``"multiprocess"`` — prepare runs in worker *processes* over shared
        memory (true multi-core batch prep, Section 4.2 / Table 2).
    sampler:
        ``"fast"`` (SALIENT's sampler) or ``"pyg"`` (the reference one).
    prepare_workers:
        Worker-process count for the multiprocess executor (defaults to
        ``num_workers``); ignored by the thread-based executors.
    infer_executor:
        Executor policy for :meth:`predict`/:meth:`evaluate` (Section 5.4's
        pipelined inference when set to ``"pipelined"``/``"staged"``).
    compute:
        ``"fused"`` (default) — per-batch aggregation plans built in the
        prepare stage, fused gather→reduce and linear kernels, and a
        workspace buffer pool recycled across batches; ``"legacy"`` — the
        original kernels.  Byte-identical training results either way (the
        twin-kernel contract; pinned by the determinism tests).
    feature_tier:
        ``"ram"`` (default) — the in-RAM fp16 :class:`FeatureStore`;
        ``"mmap"`` — features live in an on-disk slab opened through a
        :class:`~repro.slicing.memmap_store.TieredFeatureStore` (RAM-hot
        rows for the ``hot_rows`` highest-degree nodes, mmap-cold rest) —
        training results are byte-identical to ``"ram"`` per seed;
        ``"mmap-quant"`` — same hierarchy over uint8 per-channel codes
        with fused dequantize-on-slice (bounded loss delta).
    hot_rows:
        Hot-tier size for the mmap tiers (default ``num_nodes // 8``;
        0 disables the hot tier entirely).  Ignored by ``"ram"``.
    slab_dir:
        Directory holding (or receiving) the feature slab for the mmap
        tiers.  Defaults to a temporary directory removed on
        :meth:`shutdown`; pass an explicit path to reuse slabs across
        runs.
    """

    def __init__(
        self,
        dataset: Dataset,
        config: ExperimentConfig,
        executor: str = "pipelined",
        sampler: str = "fast",
        device: Optional[Device] = None,
        num_workers: int = 2,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        infer_executor: str = "serial",
        compute: str = "fused",
        probes: Optional[ProbeSampler] = None,
        prepare_workers: Optional[int] = None,
        mp_start_method: str = "spawn",
        feature_tier: str = "ram",
        hot_rows: Optional[int] = None,
        slab_dir=None,
    ) -> None:
        if executor not in ("serial", "pipelined", "staged", "multiprocess"):
            raise ValueError(f"unknown executor {executor!r}")
        if sampler not in ("fast", "pyg"):
            raise ValueError(f"unknown sampler {sampler!r}")
        if infer_executor not in ("serial", "pipelined", "staged"):
            raise ValueError(f"unknown infer_executor {infer_executor!r}")
        if compute not in ("fused", "legacy"):
            raise ValueError(f"unknown compute mode {compute!r}")
        if feature_tier not in ("ram", "mmap", "mmap-quant"):
            raise ValueError(f"unknown feature tier {feature_tier!r}")
        self.compute = compute
        self.dataset = dataset
        self.config = config
        self.seed = seed
        self.device = device or Device()
        self.tracer = tracer or Tracer(enabled=False)
        self.probes = probes if probes is not None and probes.enabled else None
        self.infer_executor = infer_executor
        self.num_workers = num_workers
        self.prepare_workers = prepare_workers or num_workers
        self.feature_tier = feature_tier
        self._slab_tmpdir = None
        if feature_tier == "ram":
            self.store = FeatureStore(dataset.features, dataset.labels)
        else:
            self.store = self._build_tiered_store(
                feature_tier, hot_rows, slab_dir
            )

        model_rng = np.random.default_rng(np.random.SeedSequence([seed, 101]))
        self.model: Module = build_model(
            config.model,
            dataset.num_features,
            config.hidden_channels,
            dataset.num_classes,
            num_layers=config.num_layers,
            rng=model_rng,
        )
        self.optimizer: Optimizer = Adam(
            self.model.parameters(), lr=config.lr, weight_decay=config.weight_decay
        )

        sampler_cls = FastNeighborSampler if sampler == "fast" else PyGNeighborSampler
        fanouts = list(config.train_fanouts)
        self._sampler_factory = lambda: sampler_cls(dataset.graph, fanouts)

        if executor == "serial":
            self._executor = SerialExecutor(
                sampler=self._sampler_factory(),
                store=self.store,
                device=self.device,
                tracer=self.tracer,
                seed=seed,
                compute=compute,
                probes=self.probes,
            )
        elif executor == "multiprocess":
            self._executor = MultiprocessExecutor(
                graph=dataset.graph,
                store=self.store,
                device=self.device,
                fanouts=fanouts,
                num_workers=prepare_workers or num_workers,
                sampler=sampler,
                max_batch_hint=config.batch_size,
                tracer=self.tracer,
                seed=seed,
                compute=compute,
                probes=self.probes,
                start_method=mp_start_method,
            )
        else:
            executor_cls = (
                PipelinedExecutor if executor == "pipelined" else StagedExecutor
            )
            self._executor = executor_cls(
                sampler_factory=self._sampler_factory,
                store=self.store,
                device=self.device,
                num_workers=num_workers,
                max_batch_hint=config.batch_size,
                tracer=self.tracer,
                seed=seed,
                compute=compute,
                probes=self.probes,
            )
        # One pool per trainer, shared across batches/epochs; counters land
        # in the executor's cumulative registry.
        self._workspace = (
            Workspace(metrics=self._executor.metrics) if compute == "fused" else None
        )
        if self.probes is not None and self._workspace is not None:
            self._workspace.register_probes(self.probes)
        # Tiered stores report hit/miss/bytes and mmap-wait into the
        # executor's registry (so EpochStats attribution sees them) and
        # expose tier-health probes to the monitor.
        attach = getattr(self.store, "attach_metrics", None)
        if attach is not None:
            attach(self._executor.metrics)
        if self.probes is not None and hasattr(self.store, "register_probes"):
            self.store.register_probes(self.probes)

    def _build_tiered_store(self, feature_tier, hot_rows, slab_dir):
        """Write/reuse the dataset slab and open the tier hierarchy."""
        import tempfile

        from ..datasets.slab import dataset_slab_path, write_dataset_slab
        from ..runtime.feature_cache import hottest_nodes
        from ..slicing.memmap_store import MemmapFeatureStore, TieredFeatureStore

        if slab_dir is None:
            self._slab_tmpdir = tempfile.TemporaryDirectory(prefix="repro-slab-")
            slab_dir = self._slab_tmpdir.name
        encoding = "uint8" if feature_tier == "mmap-quant" else "raw"
        slab_path = dataset_slab_path(slab_dir, self.dataset.name, encoding)
        if not slab_path.exists():
            write_dataset_slab(self.dataset, slab_path, encoding=encoding)
        cold = MemmapFeatureStore(slab_path)
        # Slab paths key on dataset *name*; a reused slab_dir holding the
        # same dataset at a different scale would silently train on stale
        # features. Shape mismatch is the cheap tell.
        if cold.num_nodes != self.dataset.num_nodes:
            raise ValueError(
                f"slab {slab_path} holds {cold.num_nodes} nodes but dataset "
                f"{self.dataset.name!r} has {self.dataset.num_nodes}; "
                "point slab_dir at a fresh directory"
            )
        if hot_rows is None:
            hot_rows = cold.num_nodes // 8
        hot_rows = min(int(hot_rows), cold.num_nodes)
        hot_ids = (
            hottest_nodes(self.dataset.graph, hot_rows)
            if hot_rows > 0
            else np.empty(0, dtype=np.int64)
        )
        return TieredFeatureStore(cold, hot_ids)

    # ------------------------------------------------------------------
    def _train_fn(self) -> Callable[[DeviceBatch], float]:
        model, optimizer = self.model, self.optimizer
        mode, workspace = self.compute, self._workspace

        def step(batch: DeviceBatch) -> float:
            model.train()
            optimizer.zero_grad()
            x = Tensor(batch.xs.data)
            # Forward/backward run under the step's compute context: fused
            # kernels + pooled buffers (released on scope exit — nothing on
            # the tape outlives the step: parameter grads are copies).
            with compute_scope(mode), workspace_scope(workspace):
                out = model(x, batch.mfg.adjs)
                loss = F.nll_loss(out, batch.ys.data)
                loss.backward()
            optimizer.step()
            return loss.item()

        return step

    def epoch_batches(self, epoch: int) -> list[np.ndarray]:
        """Shuffled train-set mini-batches for one epoch (deterministic)."""
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 7, epoch]))
        return list(
            BatchIterator(
                self.dataset.split.train,
                self.config.batch_size,
                shuffle=True,
                rng=rng,
            )
        )

    def train_epoch(self, epoch: int = 0) -> EpochStats:
        return self._executor.run_epoch(self.epoch_batches(epoch), self._train_fn())

    @property
    def metrics(self) -> MetricsRegistry:
        """The executor's cumulative metric registry (all epochs merged)."""
        return self._executor.metrics

    @property
    def counters(self) -> Counters:
        return self._executor.counters

    def build_report(self, result: TrainResult, command: str = "train") -> RunReport:
        """A :class:`RunReport` document for a finished :meth:`fit` run."""
        from dataclasses import asdict

        report = RunReport(
            command=command,
            config={
                **asdict(self.config),
                "executor": type(self._executor).__name__,
                "sampler": type(self._sampler_factory()).__name__,
                "num_workers": self.num_workers,
                "prepare_workers": self.prepare_workers,
                "seed": self.seed,
                "compute": self.compute,
                "feature_tier": self.feature_tier,
            },
        )
        for epoch, stats in enumerate(result.epoch_stats):
            report.add_epoch(stats, epoch)
        if result.val_accuracy:
            report.add_evaluation("val", result.val_accuracy[-1])
        report.attach_metrics(self.metrics)
        report.attach_counters(self.counters)
        report.attach_probes(self.probes)
        return report

    def predict(
        self,
        nodes: np.ndarray,
        fanouts: Optional[Sequence[Optional[int]]] = None,
        seed: int = 1234,
    ) -> np.ndarray:
        """Sampled-inference log-probabilities for ``nodes``."""
        fanouts = list(fanouts) if fanouts is not None else list(self.config.infer_fanouts)
        overlapped = self.infer_executor != "serial"
        return sampled_inference(
            self.model,
            # Tiered stores have no flat ``.features``; sampled_inference
            # accepts store-like objects and slices through the hierarchy.
            getattr(self.store, "features", self.store),
            self.dataset.graph,
            nodes,
            fanouts,
            batch_size=self.config.batch_size,
            seed=seed,
            executor=self.infer_executor,
            # Overlapped inference stages batches through the trainer's
            # device (pinned staging + transfer stream); serial inference
            # keeps the historical host-only path.
            device=self.device if overlapped else None,
            num_workers=self.num_workers,
        )

    def evaluate(
        self,
        split: str = "val",
        fanouts: Optional[Sequence[Optional[int]]] = None,
        seed: int = 1234,
    ) -> float:
        nodes = getattr(self.dataset.split, split)
        log_probs = self.predict(nodes, fanouts=fanouts, seed=seed)
        return accuracy(log_probs, self.dataset.labels[nodes])

    def fit(
        self,
        epochs: Optional[int] = None,
        evaluate_every: int = 0,
        early_stopping_patience: int = 0,
    ) -> TrainResult:
        """Train for up to ``epochs`` epochs.

        Parameters
        ----------
        evaluate_every:
            Evaluate validation accuracy every N epochs (0 disables).
        early_stopping_patience:
            Stop once validation accuracy has not improved for this many
            consecutive evaluations (requires ``evaluate_every > 0``); the
            best-performing parameters are restored before returning.
        """
        if early_stopping_patience and not evaluate_every:
            raise ValueError("early stopping requires evaluate_every > 0")
        epochs = epochs if epochs is not None else self.config.epochs
        result = TrainResult()
        best_accuracy = -1.0
        best_state: Optional[dict] = None
        stale = 0
        for epoch in range(epochs):
            result.epoch_stats.append(self.train_epoch(epoch))
            if evaluate_every and (epoch + 1) % evaluate_every == 0:
                acc = self.evaluate("val")
                result.val_accuracy.append(acc)
                if early_stopping_patience:
                    if acc > best_accuracy:
                        best_accuracy = acc
                        best_state = self.model.state_dict()
                        stale = 0
                    else:
                        stale += 1
                        if stale >= early_stopping_patience:
                            break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return result

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def save_checkpoint(self, path) -> None:
        """Persist model parameters/buffers and optimizer state to ``path``.

        Stored as a compressed ``.npz``; keys are the model's dotted state
        names plus ``__optimizer__/...`` entries.
        """
        payload: dict = {f"model/{k}": v for k, v in self.model.state_dict().items()}
        opt_state = self.optimizer.state_dict()
        payload["optimizer/lr"] = np.asarray(opt_state["lr"])
        if "step" in opt_state:  # Adam
            payload["optimizer/step"] = np.asarray(opt_state["step"])
            for i, (m, v) in enumerate(zip(opt_state["m"], opt_state["v"])):
                if m is not None:
                    payload[f"optimizer/m/{i}"] = m
                    payload[f"optimizer/v/{i}"] = v
        np.savez_compressed(path, **payload)

    def load_checkpoint(self, path) -> None:
        """Restore model and optimizer state saved by :meth:`save_checkpoint`."""
        archive = np.load(path)
        model_state = {
            key[len("model/") :]: archive[key]
            for key in archive.files
            if key.startswith("model/")
        }
        self.model.load_state_dict(model_state)
        if "optimizer/step" in archive.files:
            n_params = len(self.optimizer.params)
            m = [None] * n_params
            v = [None] * n_params
            for i in range(n_params):
                if f"optimizer/m/{i}" in archive.files:
                    m[i] = archive[f"optimizer/m/{i}"]
                    v[i] = archive[f"optimizer/v/{i}"]
            self.optimizer.load_state_dict(
                {
                    "lr": float(archive["optimizer/lr"]),
                    "step": int(archive["optimizer/step"]),
                    "m": m,
                    "v": v,
                }
            )
        else:
            self.optimizer.load_state_dict({"lr": float(archive["optimizer/lr"])})

    def shutdown(self) -> None:
        close = getattr(self._executor, "close", None)
        if close is not None:  # multiprocess: stop workers, free shm segments
            close()
        self.device.shutdown()
        if self._slab_tmpdir is not None:  # trainer-owned slab scratch dir
            self._slab_tmpdir.cleanup()
            self._slab_tmpdir = None
