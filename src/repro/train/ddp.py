"""Distributed data-parallel (DDP) training, simulated.

SALIENT "straightforwardly applies the PyTorch DDP module" (Section 6):
each of K ranks holds a model replica, trains on its own shard of each
global batch, and gradients are averaged with an all-reduce before every
optimizer step, keeping replicas bit-identical.

Without multiple machines we *execute* the ranks sequentially but preserve
DDP's exact semantics: per-rank samplers and batches, gradient averaging,
replicated optimizer state. ``allreduce_seconds`` provides the ring
all-reduce cost model that the perf simulator uses for Figure 5's scaling
curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..datasets.synthetic import Dataset
from ..models.architectures import build_model
from ..nn.optim import Adam
from ..runtime.stages import PrepareStage, StagedPipeline
from ..sampling.fast_sampler import FastNeighborSampler
from ..slicing.slicer import SlicedBatch
from ..slicing.store import FeatureStore
from ..tensor import Tensor, functional as F
from ..telemetry import Counters, MetricsRegistry
from .config import ExperimentConfig
from .inference import sampled_inference
from .metrics import accuracy

__all__ = ["DDPTrainer", "allreduce_seconds"]


def allreduce_seconds(
    param_bytes: int,
    num_ranks: int,
    bandwidth: float = 1.25e9,  # 10GigE in bytes/s (the paper's network)
    latency: float = 50e-6,
    steps_latency_factor: int = 2,
) -> float:
    """Ring all-reduce time: 2(K-1)/K of the buffer over the slowest link."""
    if num_ranks <= 1:
        return 0.0
    volume = 2.0 * (num_ranks - 1) / num_ranks * param_bytes
    return volume / bandwidth + steps_latency_factor * (num_ranks - 1) * latency


@dataclass
class DDPStepStats:
    loss: float
    grad_norm: float


class DDPTrainer:
    """K-rank data-parallel trainer with exact gradient-averaging semantics."""

    def __init__(
        self,
        dataset: Dataset,
        config: ExperimentConfig,
        num_ranks: int = 2,
        seed: int = 0,
        prefetch_depth: int = 2,
    ) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.dataset = dataset
        self.config = config
        self.num_ranks = num_ranks
        self.seed = seed
        self.prefetch_depth = prefetch_depth
        #: raw-dtype store shared by every rank's prepare pipeline
        #: (half_precision=None keeps DDP numerics identical to slicing
        #: the dataset arrays directly)
        self.store = FeatureStore(
            dataset.features, dataset.labels, half_precision=None
        )
        self.counters = Counters()
        self.metrics = MetricsRegistry()

        # All replicas start from identical parameters (DDP broadcast).
        self.replicas = []
        self.optimizers = []
        for _ in range(num_ranks):
            model = build_model(
                config.model,
                dataset.num_features,
                config.hidden_channels,
                dataset.num_classes,
                num_layers=config.num_layers,
                rng=np.random.default_rng(np.random.SeedSequence([seed, 101])),
            )
            self.replicas.append(model)
            self.optimizers.append(Adam(model.parameters(), lr=config.lr))
        reference = self.replicas[0].state_dict()
        for model in self.replicas[1:]:
            model.load_state_dict(reference)

        self.samplers = [
            FastNeighborSampler(dataset.graph, list(config.train_fanouts))
            for _ in range(num_ranks)
        ]

    # ------------------------------------------------------------------
    def param_bytes(self) -> int:
        return sum(p.data.nbytes for p in self.replicas[0].parameters())

    def _rank_shards(self, epoch: int) -> list[list[np.ndarray]]:
        """Per-rank mini-batch node lists; effective batch = K * per-GPU.

        Matches the paper's scaling protocol: "the effective batch size is
        proportional to the number of GPUs" — each rank keeps the per-GPU
        batch size and the train set is sharded across ranks.
        """
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 7, epoch]))
        order = rng.permutation(self.dataset.split.train)
        shards: list[list[np.ndarray]] = [[] for _ in range(self.num_ranks)]
        per_global = self.config.batch_size * self.num_ranks
        for start in range(0, len(order), per_global):
            window = order[start : start + per_global]
            pieces = np.array_split(window, self.num_ranks)
            for rank, piece in enumerate(pieces):
                if len(piece):
                    shards[rank].append(piece)
        return shards

    def _start_rank_run(
        self,
        rank: int,
        batches: list[np.ndarray],
        first_step: int = 0,
        prefetch_depth: Optional[int] = None,
    ):
        """Start a prepare pipeline over ``batches`` for one replica.

        Batch ``i`` of the run corresponds to global step ``first_step+i``
        and is seeded ``[seed, 11, step, rank]`` — the DDP convention:
        every (step, rank) pair owns one RNG stream regardless of which
        thread prepares it or how the epoch is chunked.
        """
        depth = self.prefetch_depth if prefetch_depth is None else prefetch_depth
        pipeline = StagedPipeline(
            [PrepareStage(lambda r=rank: self.samplers[r], self.store)],
            prefetch_depth=depth,
            seed=self.seed,
            rng_entries=lambda i: [self.seed, 11, first_step + i, rank],
            counters=self.counters,
            metrics=self.metrics,
        )
        return pipeline.start(batches)

    def _replica_step(
        self, rank: int, sliced: SlicedBatch
    ) -> tuple[list[np.ndarray], float]:
        """Forward/backward on one replica from a prepared batch."""
        model = self.replicas[rank]
        model.train()
        x = Tensor(np.asarray(sliced.xs, dtype=np.float32))
        y = sliced.ys
        model.zero_grad()
        loss = F.nll_loss(model(x, sliced.mfg.adjs), y)
        loss.backward()
        grads = [
            p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
            for p in model.parameters()
        ]
        return grads, loss.item()

    def _rank_grads(
        self, rank: int, nodes: np.ndarray, step_index: int
    ) -> tuple[list[np.ndarray], float]:
        """Gradients for one (rank, step) pair, prepared inline (depth 0)."""
        run = self._start_rank_run(
            rank, [nodes], first_step=step_index, prefetch_depth=0
        )
        env = run.next_envelope()
        run.drain()
        return self._replica_step(rank, env.sliced)

    def train_epoch(self, epoch: int = 0) -> list[DDPStepStats]:
        """One epoch of synchronized data-parallel steps.

        Each rank's batches are prepared by its own staged pipeline
        (sampling + slicing run ahead under bounded prefetch); the
        all-reduce barrier below consumes them in strict step order, so
        replica updates are identical to fully serial execution.
        """
        shards = self._rank_shards(epoch)
        num_steps = max(len(s) for s in shards)
        runs = [
            self._start_rank_run(rank, shards[rank])
            for rank in range(self.num_ranks)
        ]
        try:
            history = self._drive_steps(shards, num_steps, runs)
        except BaseException:
            for run in runs:
                run.close()
            raise
        for run in runs:
            run.drain()
        return history

    def _drive_steps(self, shards, num_steps: int, runs) -> list[DDPStepStats]:
        history: list[DDPStepStats] = []
        for step in range(num_steps):
            all_grads: list[list[np.ndarray]] = []
            losses: list[float] = []
            for rank in range(self.num_ranks):
                if step >= len(shards[rank]):
                    continue  # rank has no batch this step (tail of epoch)
                env = runs[rank].next_envelope()
                # Prepare-stage busy seconds, per rank (worker-thread view).
                for stage_name, seconds in env.timings.items():
                    self.metrics.histogram(
                        "stage_seconds", stage=stage_name, rank=str(rank)
                    ).observe(seconds)
                with self.metrics.timer(
                    "caller_seconds", stage="train", rank=str(rank)
                ).time():
                    grads, loss = self._replica_step(rank, env.sliced)
                all_grads.append(grads)
                losses.append(loss)
            self.metrics.counter("ddp_steps").inc()
            # All-reduce: average gradients across participating ranks.
            averaged = [
                np.mean([grads[i] for grads in all_grads], axis=0)
                for i in range(len(all_grads[0]))
            ]
            grad_norm = float(
                np.sqrt(sum(float((g.astype(np.float64) ** 2).sum()) for g in averaged))
            )
            # Identical update on every replica (optimizer states stay in sync).
            for model, optimizer in zip(self.replicas, self.optimizers):
                for param, grad in zip(model.parameters(), averaged):
                    param.grad = grad.copy()
                optimizer.step()
                model.zero_grad()
            history.append(DDPStepStats(loss=float(np.mean(losses)), grad_norm=grad_norm))
        return history

    def max_replica_divergence(self) -> float:
        """Max abs parameter difference across replicas (0 when in sync)."""
        reference = self.replicas[0].state_dict()
        worst = 0.0
        for model in self.replicas[1:]:
            for name, value in model.state_dict().items():
                worst = max(worst, float(np.abs(reference[name] - value).max()))
        return worst

    def evaluate(self, split: str = "val", seed: int = 1234) -> float:
        nodes = getattr(self.dataset.split, split)
        log_probs = self.distributed_inference(nodes, seed=seed)
        return accuracy(log_probs, self.dataset.labels[nodes])

    def distributed_inference(
        self, nodes: np.ndarray, seed: int = 1234, executor: str = "serial"
    ) -> np.ndarray:
        """Sampled inference sharded across ranks (Section 5: "mini-batch
        inference ... can be executed in a distributed data parallel
        context"). Each rank predicts a contiguous shard with its own
        replica; results are gathered in order. Because replicas are kept
        identical, the gathered output equals single-rank inference up to
        sampling seeds.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        shards = np.array_split(nodes, self.num_ranks)
        pieces: list[np.ndarray] = []
        for rank, shard in enumerate(shards):
            if len(shard) == 0:
                continue
            pieces.append(
                sampled_inference(
                    self.replicas[rank],
                    self.dataset.features,
                    self.dataset.graph,
                    shard,
                    list(self.config.infer_fanouts),
                    batch_size=self.config.batch_size,
                    seed=seed + rank,
                    executor=executor,
                )
            )
        return np.concatenate(pieces, axis=0)
