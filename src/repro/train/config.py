"""Experiment configurations (the paper's Table 5).

Hyperparameters follow Table 5 exactly where scale-independent (layers,
fanouts, batch-size-to-training-set ratios, hidden widths are reduced in
the same proportion as the datasets; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

__all__ = ["ExperimentConfig", "TABLE5_CONFIGS", "get_config"]


@dataclass(frozen=True)
class ExperimentConfig:
    """One (dataset, model) training configuration."""

    dataset: str
    model: str
    num_layers: int = 3
    hidden_channels: int = 64
    train_fanouts: tuple = (15, 10, 5)
    infer_fanouts: tuple = (20, 20, 20)
    batch_size: int = 1024
    lr: float = 3e-3
    weight_decay: float = 0.0
    epochs: int = 25
    # Paper-scale values for reporting (Table 5 columns)
    paper_hidden: int = 256
    paper_batch_size: int = 1024

    def scaled(self, scale: float) -> "ExperimentConfig":
        """Shrink batch size with dataset scale (keeps batches/epoch sane)."""
        return replace(self, batch_size=max(int(self.batch_size * scale), 32))


#: Table 5 rows. Hidden widths are 1/4 of the paper's (256 -> 64; SAGE-RI
#: 1024 -> 256) to match the ~100x smaller synthetic datasets.
TABLE5_CONFIGS: list[ExperimentConfig] = [
    ExperimentConfig(dataset="arxiv", model="sage", batch_size=256),
    ExperimentConfig(dataset="products", model="sage", batch_size=256),
    ExperimentConfig(dataset="papers", model="sage", batch_size=256),
    ExperimentConfig(dataset="papers", model="gat", batch_size=256),
    ExperimentConfig(
        dataset="papers",
        model="gin",
        train_fanouts=(20, 20, 20),
        batch_size=256,
    ),
    ExperimentConfig(
        dataset="papers",
        model="sage-ri",
        hidden_channels=256,
        train_fanouts=(12, 12, 12),
        infer_fanouts=(100, 100, 100),
        batch_size=256,
        paper_hidden=1024,
    ),
]


def get_config(dataset: str, model: str) -> ExperimentConfig:
    """Look up the Table 5 configuration for (dataset, model)."""
    for config in TABLE5_CONFIGS:
        if config.dataset == dataset and config.model == model:
            return config
    raise KeyError(f"no Table 5 config for dataset={dataset!r}, model={model!r}")
