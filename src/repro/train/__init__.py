"""Training, inference and evaluation drivers."""

from .config import TABLE5_CONFIGS, ExperimentConfig, get_config
from .ddp import DDPTrainer, allreduce_seconds
from .fullbatch import FullBatchTrainer
from .inference import LayerwiseResult, layerwise_full_inference, sampled_inference
from .loop import Trainer, TrainResult
from .metrics import (
    DegreeAccuracy,
    accuracy,
    accuracy_by_degree,
    confusion_matrix,
    macro_f1,
    mean_and_std,
)

__all__ = [
    "ExperimentConfig",
    "TABLE5_CONFIGS",
    "get_config",
    "Trainer",
    "TrainResult",
    "DDPTrainer",
    "FullBatchTrainer",
    "allreduce_seconds",
    "sampled_inference",
    "layerwise_full_inference",
    "LayerwiseResult",
    "accuracy",
    "accuracy_by_degree",
    "DegreeAccuracy",
    "confusion_matrix",
    "macro_f1",
    "mean_and_std",
]
