"""Full-batch (whole-graph) training — the comparators' batching scheme.

Several Table 7 systems (NeuGraph, Roc, DeepGalois) train *full-batch*:
every epoch performs one forward/backward over the entire graph. The paper
argues for mini-batch training instead because it "converges faster and
generalizes better" (Bottou et al., 2018). This module implements the
full-batch scheme over the same architectures so that claim can be
tested (``bench_ablation_batching.py``): epochs-to-accuracy and
time-to-accuracy for full-batch vs SALIENT mini-batch training.

Implementation: the whole graph is expressed as L identical full-adjacency
MFG layers (every node is both source and destination), so the standard
``forward(x, adjs)`` architectures run unchanged; the loss is masked to
the training nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..datasets.synthetic import Dataset
from ..models.architectures import build_model
from ..nn.optim import Adam
from ..sampling.mfg import Adj
from ..tensor import Tensor, functional as F, no_grad
from .config import ExperimentConfig
from .metrics import accuracy

__all__ = ["FullBatchTrainer"]


@dataclass
class FullBatchEpoch:
    loss: float
    epoch_time: float


class FullBatchTrainer:
    """Whole-graph gradient descent (NeuGraph/Roc-style batching)."""

    def __init__(
        self,
        dataset: Dataset,
        config: ExperimentConfig,
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.model = build_model(
            config.model,
            dataset.num_features,
            config.hidden_channels,
            dataset.num_classes,
            num_layers=config.num_layers,
            rng=np.random.default_rng(np.random.SeedSequence([seed, 101])),
        )
        self.optimizer = Adam(
            self.model.parameters(), lr=config.lr, weight_decay=config.weight_decay
        )
        # Precompute the full-graph "MFG": L identical dense layers.
        n = dataset.num_nodes
        edge_index = dataset.graph.edge_index()
        self._layers = [
            Adj(edge_index=edge_index, e_id=None, size=(n, n))
            for _ in range(config.num_layers)
        ]
        self._features = dataset.features.astype(np.float32)

    def train_epoch(self) -> FullBatchEpoch:
        import time

        start = time.perf_counter()
        self.model.train()
        self.optimizer.zero_grad()
        out = self.model(Tensor(self._features), self._layers)
        train_nodes = self.dataset.split.train
        loss = F.nll_loss(out[train_nodes], self.dataset.labels[train_nodes])
        loss.backward()
        self.optimizer.step()
        return FullBatchEpoch(loss=loss.item(), epoch_time=time.perf_counter() - start)

    def evaluate(self, split: str = "val") -> float:
        self.model.eval()
        with no_grad():
            out = self.model(Tensor(self._features), self._layers).data
        nodes = getattr(self.dataset.split, split)
        return accuracy(out[nodes], self.dataset.labels[nodes])

    def peak_activation_bytes(self) -> int:
        """Rough lower bound on activation memory: every node's hidden state
        at every layer is live during backward — the memory pressure that
        forces the paper's largest graphs out of full-batch training."""
        n = self.dataset.num_nodes
        per_layer = n * self.config.hidden_channels * 4
        return per_layer * self.config.num_layers + self._features.nbytes
