"""SALIENT reproduction: fast sampling and pipelining for GNN training.

Reproduces "Accelerating Training and Inference of Graph Neural Networks
with Fast Sampling and Pipelining" (MLSys 2022) from scratch on a
numpy-only substrate. See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Subpackages
-----------
- ``repro.tensor``    numpy autograd engine (the PyTorch substitute)
- ``repro.nn``        module system, layers, optimizers
- ``repro.graph``     CSR graphs, generators, partitioning
- ``repro.datasets``  synthetic OGB-like datasets
- ``repro.sampling``  MFGs + PyG/fast/design-space neighborhood samplers
- ``repro.slicing``   host feature store and batch slicing
- ``repro.runtime``   worker pools, pinned buffers, device streams, executors
- ``repro.models``    GraphSAGE / GAT / GIN / GraphSAGE-RI
- ``repro.train``     trainer, sampled & layer-wise inference, DDP
- ``repro.perfmodel`` calibrated performance simulator (cluster-scale results)
- ``repro.telemetry`` timers and table rendering
"""

__version__ = "0.1.0"

__all__ = [
    "tensor",
    "nn",
    "graph",
    "datasets",
    "sampling",
    "slicing",
    "runtime",
    "models",
    "train",
    "perfmodel",
    "telemetry",
]
