"""The four GNN architectures evaluated in the paper (Appendix A).

Each model's ``forward(x, adjs)`` consumes a list of MFG layers exactly as
in the appendix listings: per layer, ``x_target = x[:size[1]]`` selects the
destination prefix, the conv maps ``(x, x_target)`` across the bipartite
edges, and inter-layer ReLU+dropout apply everywhere but the last layer.

Deviations from the listings (both noted inline):
- Listing 1/4 declare every SAGE conv as hidden->hidden, leaving the class
  prediction dimensionality unresolved (the public SALIENT repo adds a
  projection); GraphSAGE here ends in a hidden->out conv like Listing 2's
  GAT, and SAGE-RI defines the ``self.mlp`` head the listing references but
  never constructs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn.layers import BatchNorm1d, Linear, ReLU
from ..nn.module import Identity, Module, ModuleList, Sequential
from ..sampling.mfg import Adj
from ..tensor import Tensor, functional as F

__all__ = ["GraphSAGE", "GAT", "GIN", "SAGERI", "MLP", "build_model", "MODEL_REGISTRY"]


def _as_adj_list(adjs: Sequence) -> list[Adj]:
    return list(adjs)


def _layer_arg(adj):
    """``(conv_edge_arg, size)`` for one MFG layer.

    :class:`Adj` objects are passed to the conv layers whole, so a prebuilt
    :class:`~repro.tensor.plan.AggregationPlan` attached by the prepare
    stage reaches the kernels; raw PyG-style 3-tuples unpack to the edge
    array (legacy calling convention, still supported).
    """
    if isinstance(adj, Adj):
        return adj, adj.size
    edge_index, _, size = adj
    return edge_index, size


class _SampledGNN(Module):
    """Shared forward skeleton for SAGE/GAT: conv + ReLU + dropout stacks."""

    def __init__(self) -> None:
        super().__init__()
        self.convs = ModuleList()
        self.num_layers = 0
        self.dropout_p = 0.5
        self._rng = np.random.default_rng()

    def forward(self, x: Tensor, adjs: Sequence) -> Tensor:
        adjs = _as_adj_list(adjs)
        if len(adjs) != self.num_layers:
            raise ValueError(
                f"model has {self.num_layers} layers but got {len(adjs)} MFG layers"
            )
        for i, adj in enumerate(adjs):
            edge_arg, size = _layer_arg(adj)
            x_target = x[: size[1]]
            x = self.convs[i]((x, x_target), edge_arg)
            if i != self.num_layers - 1:
                x = F.relu(x)
                x = F.dropout(x, p=self.dropout_p, training=self.training, rng=self._rng)
        return F.log_softmax(x, axis=-1)


class GraphSAGE(_SampledGNN):
    """3-layer (by default) GraphSAGE with mean aggregation (Listing 1)."""

    def __init__(
        self,
        in_channels: int,
        hidden_channels: int,
        out_channels: int,
        num_layers: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers < 2:
            raise ValueError("need at least 2 layers")
        from .conv import SAGEConv

        rng = rng or np.random.default_rng()
        self._rng = rng
        self.num_layers = num_layers
        self.hidden_channels = hidden_channels
        kwargs = dict(bias=False, rng=rng)
        self.convs.append(SAGEConv(in_channels, hidden_channels, **kwargs))
        for _ in range(num_layers - 2):
            self.convs.append(SAGEConv(hidden_channels, hidden_channels, **kwargs))
        # Listing 1 ends hidden->hidden; we project to classes here (see
        # module docstring).
        self.convs.append(SAGEConv(hidden_channels, out_channels, **kwargs))


class GAT(_SampledGNN):
    """Single-head GAT stack (Listing 2)."""

    def __init__(
        self,
        in_channels: int,
        hidden_channels: int,
        out_channels: int,
        num_layers: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers < 2:
            raise ValueError("need at least 2 layers")
        from .conv import GATConv

        rng = rng or np.random.default_rng()
        self._rng = rng
        self.num_layers = num_layers
        self.hidden_channels = hidden_channels
        kwargs = dict(bias=False, heads=1, rng=rng)
        self.convs.append(GATConv(in_channels, hidden_channels, **kwargs))
        for _ in range(num_layers - 2):
            self.convs.append(GATConv(hidden_channels, hidden_channels, **kwargs))
        self.convs.append(GATConv(hidden_channels, out_channels, **kwargs))


class GIN(Module):
    """GIN stack with per-layer BatchNorm MLPs and a 2-layer head (Listing 3)."""

    def __init__(
        self,
        in_channels: int,
        hidden_channels: int,
        out_channels: int,
        num_layers: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers < 2:
            raise ValueError("need at least 2 layers")
        from .conv import GINConv

        rng = rng or np.random.default_rng()
        self._rng = rng
        self.num_layers = num_layers
        self.hidden_channels = hidden_channels
        self.convs = ModuleList()

        def make_mlp(first_dim: int) -> Sequential:
            return Sequential(
                Linear(first_dim, hidden_channels, rng=rng),
                BatchNorm1d(hidden_channels),
                ReLU(),
                Linear(hidden_channels, hidden_channels, rng=rng),
                ReLU(),
            )

        self.convs.append(GINConv(make_mlp(in_channels)))
        for _ in range(num_layers - 1):
            self.convs.append(GINConv(make_mlp(hidden_channels)))
        self.lin1 = Linear(hidden_channels, hidden_channels, rng=rng)
        self.lin2 = Linear(hidden_channels, out_channels, rng=rng)

    def forward(self, x: Tensor, adjs: Sequence) -> Tensor:
        adjs = _as_adj_list(adjs)
        if len(adjs) != self.num_layers:
            raise ValueError(
                f"model has {self.num_layers} layers but got {len(adjs)} MFG layers"
            )
        # GIN's MLPs mix channels per layer; the input projection happens in
        # the first conv's MLP. A sum aggregation is used throughout.
        for i, adj in enumerate(adjs):
            edge_arg, size = _layer_arg(adj)
            x_target = x[: size[1]]
            x = self.convs[i]((x, x_target), edge_arg)
        x = self.lin1(x).relu()
        x = F.dropout(x, p=0.5, training=self.training, rng=self._rng)
        x = self.lin2(x)
        return F.log_softmax(x, axis=-1)


class SAGERI(Module):
    """GraphSAGE-RI: residual connections + Inception-style head (Listing 4).

    Collects the target-prefix activations of the raw input and every layer,
    concatenates them, and predicts from the concatenation through an MLP
    (which the listing references as ``self.mlp``; constructed here as
    Linear -> BatchNorm -> LeakyReLU -> Linear).
    """

    def __init__(
        self,
        in_channels: int,
        hidden_channels: int,
        out_channels: int,
        num_layers: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers < 2:
            raise ValueError("need at least 2 layers")
        from .conv import SAGEConv

        rng = rng or np.random.default_rng()
        self._rng = rng
        self.num_layers = num_layers
        self.hidden_channels = hidden_channels
        self.dropout_p = 0.1
        kwargs = dict(bias=False, rng=rng)

        self.convs = ModuleList()
        self.bns = ModuleList()
        self.res_linears = ModuleList()
        self.convs.append(SAGEConv(in_channels, hidden_channels, **kwargs))
        self.bns.append(BatchNorm1d(hidden_channels))
        self.res_linears.append(Linear(in_channels, hidden_channels, rng=rng))
        for _ in range(num_layers - 1):
            self.convs.append(SAGEConv(hidden_channels, hidden_channels, **kwargs))
            self.bns.append(BatchNorm1d(hidden_channels))
            self.res_linears.append(Identity())

        concat_dim = in_channels + num_layers * hidden_channels
        self.mlp = Sequential(
            Linear(concat_dim, 2 * hidden_channels, rng=rng),
            BatchNorm1d(2 * hidden_channels),
            ReLU(),
            Linear(2 * hidden_channels, out_channels, rng=rng),
        )

    def forward(self, x: Tensor, adjs: Sequence) -> Tensor:
        adjs = _as_adj_list(adjs)
        if len(adjs) != self.num_layers:
            raise ValueError(
                f"model has {self.num_layers} layers but got {len(adjs)} MFG layers"
            )
        collect: list[Tensor] = []
        end_size = adjs[-1].size[1]
        p, training, rng = self.dropout_p, self.training, self._rng
        x = F.dropout(x, p=p, training=training, rng=rng)
        collect.append(x[:end_size])
        for i, adj in enumerate(adjs):
            edge_arg, size = _layer_arg(adj)
            x_target = x[: size[1]]
            h = self.convs[i](
                (
                    F.dropout(x, p=p, training=training, rng=rng),
                    F.dropout(x_target, p=p, training=training, rng=rng),
                ),
                edge_arg,
            )
            h = self.bns[i](h)
            h = F.leaky_relu(h)
            h = F.dropout(h, p=p, training=training, rng=rng)
            collect.append(h[:end_size])
            x = h + self.res_linears[i](x_target)
        return F.log_softmax(self.mlp(Tensor.concat(collect, axis=-1)), axis=-1)


class MLP(Module):
    """Graph-free baseline: ignores the MFG entirely.

    Not part of the paper's evaluation; used by tests/examples to verify the
    synthetic datasets actually require neighborhood aggregation.
    """

    def __init__(
        self,
        in_channels: int,
        hidden_channels: int,
        out_channels: int,
        num_layers: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self._rng = rng
        self.num_layers = num_layers
        self.lins = ModuleList()
        self.lins.append(Linear(in_channels, hidden_channels, rng=rng))
        for _ in range(num_layers - 2):
            self.lins.append(Linear(hidden_channels, hidden_channels, rng=rng))
        self.lins.append(Linear(hidden_channels, out_channels, rng=rng))

    def forward(self, x: Tensor, adjs: Sequence) -> Tensor:
        adjs = _as_adj_list(adjs)
        end_size = adjs[-1].size[1] if adjs else x.shape[0]
        x = x[:end_size]
        for i, lin in enumerate(self.lins):
            x = lin(x)
            if i != len(self.lins) - 1:
                x = F.relu(x)
                x = F.dropout(x, p=0.5, training=self.training, rng=self._rng)
        return F.log_softmax(x, axis=-1)


MODEL_REGISTRY = {
    "sage": GraphSAGE,
    "gat": GAT,
    "gin": GIN,
    "sage-ri": SAGERI,
    "mlp": MLP,
}


def build_model(
    name: str,
    in_channels: int,
    hidden_channels: int,
    out_channels: int,
    num_layers: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> Module:
    """Instantiate a registered architecture by name."""
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[name](
        in_channels, hidden_channels, out_channels, num_layers=num_layers, rng=rng
    )
