"""GNN architectures and bipartite convolution layers."""

from .architectures import (
    GAT,
    GIN,
    MLP,
    MODEL_REGISTRY,
    GraphSAGE,
    SAGERI,
    build_model,
)
from .conv import GATConv, GINConv, SAGEConv

__all__ = [
    "GraphSAGE",
    "GAT",
    "GIN",
    "SAGERI",
    "MLP",
    "build_model",
    "MODEL_REGISTRY",
    "SAGEConv",
    "GATConv",
    "GINConv",
]
