"""Bipartite graph convolution layers (SAGEConv, GATConv, GINConv).

Each layer follows the PyG bipartite calling convention used throughout the
paper's appendix listings::

    x = conv((x_source, x_target), edge_index)

where ``edge_index`` is local ``(2, E)`` with messages flowing
``edge_index[0] -> edge_index[1]`` and the target nodes are a prefix of the
source set.  ``edge_index`` may also be a :class:`~repro.sampling.mfg.Adj`
carrying a precomputed :class:`~repro.tensor.plan.AggregationPlan`; layers
then route through the plan-based / fused kernels (bitwise-identical, no
per-call argsort, no ``(E, F)`` message temporaries for sum/mean).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..nn.layers import Linear
from ..nn.module import Module
from ..tensor import Tensor, functional as F, init

__all__ = ["SAGEConv", "GATConv", "GINConv"]


def _unpack(x_pair, edge_index):
    x_src, x_dst = x_pair
    n_dst = x_dst.shape[0]
    # Accept either a raw (2, E) array or an Adj carrying a prebuilt plan.
    plan = getattr(edge_index, "plan", None)
    edge_index = getattr(edge_index, "edge_index", edge_index)
    if edge_index.shape[1]:
        if edge_index[1].max() >= n_dst:
            raise ValueError("edge destination exceeds target-set size")
        if edge_index[0].max() >= x_src.shape[0]:
            raise ValueError("edge source exceeds source-set size")
    if plan is not None and plan.num_edges != edge_index.shape[1]:
        raise ValueError("aggregation plan does not match edge_index")
    return x_src, x_dst, n_dst, edge_index, plan


class SAGEConv(Module):
    """GraphSAGE convolution (Hamilton et al., 2017).

    ``out = W_neigh * AGG({x_u}) + W_root * x_v`` with mean (default), sum
    or max aggregation. ``bias=False`` matches the paper's Listing 1
    hyperparameters.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        bias: bool = False,
        aggregator: str = "mean",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if aggregator not in ("mean", "sum", "max"):
            raise ValueError(f"unknown aggregator {aggregator!r}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.aggregator = aggregator
        self.lin_neigh = Linear(in_channels, out_channels, bias=False, rng=rng)
        self.lin_root = Linear(in_channels, out_channels, bias=bias, rng=rng)

    def forward(self, x_pair, edge_index) -> Tensor:
        x_src, x_dst, n_dst, edge_index, plan = _unpack(x_pair, edge_index)
        if plan is not None and self.aggregator in ("mean", "sum"):
            # Fused gather→reduce: the (E, F) message array never exists.
            if self.aggregator == "mean":
                agg = F.gather_segment_mean(x_src, plan)
            else:
                agg = F.gather_segment_sum(x_src, plan)
        else:
            messages = F.gather_rows(x_src, edge_index[0])
            if self.aggregator == "mean":
                agg = F.segment_mean(messages, edge_index[1], n_dst)
            elif self.aggregator == "sum":
                agg = F.segment_sum(messages, edge_index[1], n_dst)
            else:
                agg = F.segment_max(messages, edge_index[1], n_dst, plan=plan)
        return self.lin_neigh(agg) + self.lin_root(x_dst)

    def __repr__(self) -> str:
        return f"SAGEConv({self.in_channels}, {self.out_channels}, aggr={self.aggregator})"


class GATConv(Module):
    """Graph attention convolution (Velickovic et al., 2018).

    Attention logits ``e_uv = LeakyReLU(a_src . W x_u + a_dst . W x_v)`` are
    normalized per destination with a segment softmax. Self-loop edges for
    the target nodes are added internally (PyG's ``add_self_loops=True``
    default), which is how the target's own representation enters the
    weighted combination described in Section 2.1.

    Multi-head attention concatenates the heads' outputs (PyG's
    ``concat=True`` convention), so the layer output width is
    ``heads * out_channels``. The paper's Table 5 configuration uses
    ``heads=1``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        heads: int = 1,
        bias: bool = False,
        negative_slope: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if heads < 1:
            raise ValueError("heads must be >= 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.heads = heads
        self.negative_slope = negative_slope
        # One shared projection producing all heads' channels at once.
        self.lin = Linear(in_channels, heads * out_channels, bias=False, rng=rng)
        limit = math.sqrt(6.0 / (out_channels + 1))
        self.att_src = init.uniform(-limit, limit, (heads, out_channels), rng=rng)
        self.att_dst = init.uniform(-limit, limit, (heads, out_channels), rng=rng)
        self.bias = init.zeros(heads * out_channels) if bias else None

    def forward(self, x_pair, edge_index) -> Tensor:
        x_src, x_dst, n_dst, edge_index, plan = _unpack(x_pair, edge_index)
        # Self loops: target node j is source node j (prefix property).
        # The augmented plan is memoized on the batch plan, shared by all
        # heads and both passes.
        aug_plan = plan.with_self_loops() if plan is not None else None
        loops = np.arange(n_dst, dtype=np.int64)
        src = np.concatenate([edge_index[0], loops])
        dst = np.concatenate([edge_index[1], loops])

        n_src = x_src.shape[0]
        h_src = self.lin(x_src).reshape(n_src, self.heads, self.out_channels)
        # Per-node attention scores, one per head: (N, H)
        alpha_src = (h_src * self.att_src).sum(axis=2)
        alpha_dst = (h_src[:n_dst] * self.att_dst).sum(axis=2)

        head_outputs: list[Tensor] = []
        for head in range(self.heads):
            logits = (
                alpha_src[:, head][src] + alpha_dst[:, head][dst]
            ).leaky_relu(self.negative_slope)
            alpha = F.segment_softmax(logits, dst, n_dst, plan=aug_plan)
            h_head = h_src[:, head]
            weighted = F.gather_rows(h_head, src) * alpha.reshape(-1, 1)
            head_outputs.append(F.segment_sum(weighted, dst, n_dst, plan=aug_plan))
        out = (
            head_outputs[0]
            if self.heads == 1
            else Tensor.concat(head_outputs, axis=-1)
        )
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"GATConv({self.in_channels}, {self.out_channels}, heads={self.heads})"
        )


class GINConv(Module):
    """Graph isomorphism convolution (Xu et al., 2019).

    ``out = MLP((1 + eps) * x_v + sum({x_u}))``; the paper's Listing 3 uses
    PyG defaults (eps = 0, not trained).
    """

    def __init__(self, mlp: Module, eps: float = 0.0) -> None:
        super().__init__()
        self.mlp = mlp
        self.eps = eps

    def forward(self, x_pair, edge_index) -> Tensor:
        x_src, x_dst, n_dst, edge_index, plan = _unpack(x_pair, edge_index)
        if plan is not None:
            agg = F.gather_segment_sum(x_src, plan)
        else:
            agg = F.segment_sum(
                F.gather_rows(x_src, edge_index[0]), edge_index[1], n_dst
            )
        return self.mlp(agg + x_dst * (1.0 + self.eps))

    def __repr__(self) -> str:
        return f"GINConv(eps={self.eps})"
