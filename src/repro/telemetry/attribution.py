"""Bottleneck attribution: span + probe telemetry into a verdict.

Table 1 and Figure 1 of the paper exist to answer one question — *which
stage gates epoch time*: batch preparation (sampling + slicing), the
host-to-device transfer, or model compute.  This module automates that
reading.  Given the blocking-perspective stage breakdown an
:class:`~repro.runtime.stages.EpochStats` already computes (and a
:class:`~repro.telemetry.tracer.Tracer`'s lane intervals when available),
it produces an :class:`Attribution`: per-stage shares of the caller's
epoch time, per-lane utilization, a stall/wait decomposition, and a
one-line **verdict** — ``prep-bound`` / ``transfer-bound`` /
``compute-bound``, refined to ``storage-bound`` when cold-tier mmap
waits dominate a prep-bound epoch — with the supporting numbers.

Three entry points, one per telemetry granularity:

- :func:`attribute_breakdown` — from one breakdown dict (what
  ``EpochStats.attribution()`` calls);
- :func:`attribute_trace` — per-lane busy/utilization from tracer spans;
- :func:`attribute_report` — from a full ``run_report`` JSON document
  (epoch rows + metrics snapshot + probe series), which is what
  ``python -m repro diagnose report.json`` renders.

The verdict is intentionally coarse: it compares *blocking* shares, the
time the caller thread actually waited per stage, so an overlapped
pipeline whose workers keep up is compute-bound even though its workers
burn more aggregate CPU than the serial policy — exactly the Figure 1(a)
vs 1(b) contrast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Attribution",
    "attribute_breakdown",
    "attribute_trace",
    "attribute_report",
    "render_attribution",
]

#: verdict vocabulary, keyed by the winning blocking share
VERDICTS = {"prep": "prep-bound", "transfer": "transfer-bound", "train": "compute-bound"}

#: a prep-bound epoch is re-labelled storage-bound when cold-tier mmap
#: waits account for at least this fraction of the blocking prep seconds
STORAGE_BOUND_THRESHOLD = 0.5


@dataclass
class Attribution:
    """One bottleneck reading: shares, verdict, and supporting telemetry."""

    verdict: str  # prep-bound | transfer-bound | compute-bound | storage-bound
    bound_stage: str  # prep | transfer | train
    #: blocking share of epoch time per stage group (caller's perspective)
    shares: Dict[str, float]
    #: fraction of the epoch the compute lane sat idle
    gpu_idle_fraction: float
    #: one-line human reading, e.g. "prep-bound on cpu:0, gpu idle 43%"
    detail: str
    #: lane -> busy fraction of the makespan (from tracer spans, optional)
    lanes: Dict[str, float] = field(default_factory=dict)
    #: wait decomposition in seconds (prep_wait, queue waits, pinned waits)
    stalls: Dict[str, float] = field(default_factory=dict)

    def to_doc(self) -> dict:
        return {
            "verdict": self.verdict,
            "bound_stage": self.bound_stage,
            "shares": {k: float(v) for k, v in self.shares.items()},
            "gpu_idle_fraction": float(self.gpu_idle_fraction),
            "detail": self.detail,
            "lanes": {k: float(v) for k, v in self.lanes.items()},
            "stalls": {k: float(v) for k, v in self.stalls.items()},
        }


def _blocking_shares(breakdown: Dict[str, float]) -> Dict[str, float]:
    """Collapse a breakdown dict into the three blocking stage groups.

    ``prep`` = blocking batch preparation + time the caller starved for
    prepared batches (on an overlapped run the former is ~0 and the latter
    is the only visible prep cost).  ``plan_build`` is a busy-time view
    (already inside ``batch_prep`` on serial runs) and is excluded.
    """
    return {
        "prep": breakdown.get("batch_prep", 0.0) + breakdown.get("prep_wait", 0.0),
        "transfer": breakdown.get("transfer", 0.0),
        "train": breakdown.get("train", 0.0),
    }


def attribute_breakdown(
    breakdown: Dict[str, float],
    lanes: Optional[Dict[str, float]] = None,
    stalls: Optional[Dict[str, float]] = None,
    total_s: Optional[float] = None,
) -> Attribution:
    """Verdict for one epoch's blocking-perspective stage breakdown.

    ``total_s`` (the epoch's wall seconds) lets stall *seconds* be
    compared against blocking *shares*: when the cold feature tier's
    ``mmap_wait_s`` stall dominates the prep seconds of a prep-bound
    epoch, the verdict refines to ``storage-bound`` — the fix is tier
    sizing (more hot rows, quantization, faster disk), not more
    prepare workers.
    """
    shares = _blocking_shares(breakdown)
    bound_stage = max(shares, key=lambda k: shares[k])
    train_share = shares["train"]
    gpu_idle = min(max(1.0 - train_share, 0.0), 1.0)
    lanes = dict(lanes or {})
    stalls = dict(stalls or {})

    verdict = VERDICTS[bound_stage]
    storage_fraction = 0.0
    if bound_stage == "prep" and total_s:
        prep_seconds = shares["prep"] * total_s
        mmap_wait = stalls.get("mmap_wait_s", 0.0)
        if prep_seconds > 0 and mmap_wait > 0:
            storage_fraction = min(mmap_wait / prep_seconds, 1.0)
            if storage_fraction >= STORAGE_BOUND_THRESHOLD:
                verdict = "storage-bound"

    detail = (
        f"{verdict} "
        f"({bound_stage} blocks {100 * shares[bound_stage]:.0f}% of epoch time"
    )
    if bound_stage == "prep" and lanes:
        cpu_lanes = {k: v for k, v in lanes.items() if k.startswith("cpu")}
        if cpu_lanes:
            busiest = max(cpu_lanes, key=lambda k: cpu_lanes[k])
            detail = (
                f"{verdict} on {busiest} "
                f"({bound_stage} blocks {100 * shares[bound_stage]:.0f}% of epoch time"
            )
    detail += f"), gpu idle {100 * gpu_idle:.0f}%"
    if verdict == "storage-bound":
        detail += (
            f"; mmap waits are {100 * storage_fraction:.0f}% of prep seconds"
        )
    if bound_stage == "prep":
        # Multiprocess prepare: cpu:mp<i> lanes carry per-worker-process
        # busy fractions, so a prep-bound verdict can name core starvation
        # (workers saturated → add cores) vs dispatch overhead (they are
        # mostly idle → the bottleneck is elsewhere in the prep path).
        mp_lanes = {k: v for k, v in (lanes or {}).items() if k.startswith("cpu:mp")}
        if mp_lanes:
            mean_busy = sum(mp_lanes.values()) / len(mp_lanes)
            state = "core-starved" if mean_busy >= 0.8 else "under-utilized"
            detail += (
                f"; {len(mp_lanes)} prepare workers {state} "
                f"(mean busy {100 * mean_busy:.0f}%)"
            )

    return Attribution(
        verdict=verdict,
        bound_stage=bound_stage,
        shares=shares,
        gpu_idle_fraction=gpu_idle,
        detail=detail,
        lanes=lanes,
        stalls=dict(stalls or {}),
    )


def attribute_trace(tracer) -> Dict[str, float]:
    """Per-lane utilization (busy fraction of the makespan) from spans."""
    span = tracer.makespan()
    if span <= 0:
        return {}
    lanes = sorted({e.resource for e in tracer.events})
    return {lane: tracer.resource_busy(lane) / span for lane in lanes}


def _stalls_from_metrics(metrics: Iterable[dict]) -> Dict[str, float]:
    """Wait decomposition (seconds) from a metrics snapshot list."""
    stalls: Dict[str, float] = {}
    for entry in metrics:
        name = entry.get("name")
        if name == "caller_seconds" and entry.get("labels", {}).get("stage") == "prep_wait":
            stalls["prep_wait_s"] = stalls.get("prep_wait_s", 0.0) + entry.get("sum", 0.0)
        elif name == "queue_wait_seconds":
            stage = entry.get("labels", {}).get("stage", "?")
            key = f"queue_wait_s[{stage}]"
            stalls[key] = stalls.get(key, 0.0) + entry.get("sum", 0.0)
        elif name == "pinned_acquire_wait_seconds":
            stalls["pinned_acquire_wait_s"] = (
                stalls.get("pinned_acquire_wait_s", 0.0) + entry.get("sum", 0.0)
            )
        elif name == "mp_result_wait_seconds":
            # Dispatch/IPC overhead of the multiprocess prepare pool, net
            # of worker busy time (already inside batch_prep).
            stalls["mp_result_wait_s"] = (
                stalls.get("mp_result_wait_s", 0.0) + entry.get("sum", 0.0)
            )
        elif name == "mmap_wait_seconds":
            # Cold-tier page-fault/copy time (a counter, not a histogram):
            # the signal behind the storage-bound verdict.
            stalls["mmap_wait_s"] = (
                stalls.get("mmap_wait_s", 0.0) + entry.get("value", 0.0)
            )
    return stalls


def _mp_lanes_from_metrics(metrics: Iterable[dict], total_s: float) -> Dict[str, float]:
    """Per-worker-process busy fractions from ``mp_worker_busy_seconds``.

    Run reports carry no tracer spans, but the multiprocess prepare pool
    records each worker's busy seconds; dividing by the run's total epoch
    seconds yields a lane-utilization view ``attribute_breakdown`` can use
    to attribute a prep-bound verdict to actual core starvation.
    """
    if total_s <= 0:
        return {}
    lanes: Dict[str, float] = {}
    for entry in metrics:
        if entry.get("name") != "mp_worker_busy_seconds":
            continue
        worker = entry.get("labels", {}).get("worker", "?")
        key = f"cpu:mp{worker}"
        lanes[key] = lanes.get(key, 0.0) + entry.get("sum", 0.0) / total_s
    return lanes


def attribute_report(doc: dict) -> Attribution:
    """Overall attribution for a ``run_report`` JSON document.

    Epoch breakdown fractions are combined weighted by each epoch's
    duration; stalls come from the metrics snapshot.  Lane utilization is
    absent for thread executors (reports carry no spans), but multiprocess
    runs reconstruct per-worker ``cpu:mp<i>`` lanes from the
    ``mp_worker_busy_seconds`` metrics so prep-bound verdicts name core
    starvation.
    """
    epochs: List[dict] = list(doc.get("epochs") or [])
    if not epochs:
        raise ValueError("run report has no epoch rows to attribute")
    total = sum(max(row.get("epoch_s", 0.0), 0.0) for row in epochs) or 1.0
    combined: Dict[str, float] = {}
    for row in epochs:
        weight = max(row.get("epoch_s", 0.0), 0.0) / total
        for stage, fraction in (row.get("breakdown") or {}).items():
            combined[stage] = combined.get(stage, 0.0) + weight * fraction
    metrics = doc.get("metrics") or []
    stalls = _stalls_from_metrics(metrics)
    lanes = _mp_lanes_from_metrics(metrics, total_s=total)
    return attribute_breakdown(
        combined, lanes=lanes or None, stalls=stalls, total_s=total
    )


def render_attribution(attr: Attribution, epochs: Optional[List[dict]] = None) -> str:
    """Multi-line human rendering (the ``repro diagnose`` output body)."""
    lines = [f"verdict: {attr.detail}"]
    lines.append(
        "blocking shares: "
        + "  ".join(f"{k}={100 * v:.1f}%" for k, v in attr.shares.items())
    )
    if attr.lanes:
        lines.append(
            "lane utilization: "
            + "  ".join(f"{k}={100 * v:.0f}%" for k, v in sorted(attr.lanes.items()))
        )
    if attr.stalls:
        lines.append(
            "stalls: "
            + "  ".join(
                f"{k}={1e3 * v:.1f}ms" for k, v in sorted(attr.stalls.items())
            )
        )
    if epochs:
        lines.append("")
        lines.append("epoch  prep%  transfer%  train%  prep_wait%  verdict")
        for row in epochs:
            b = row.get("breakdown") or {}
            verdict = row.get("verdict") or attribute_breakdown(b).verdict
            lines.append(
                f"{row.get('epoch', '?'):>5}"
                f"  {100 * b.get('batch_prep', 0.0):5.1f}"
                f"  {100 * b.get('transfer', 0.0):9.1f}"
                f"  {100 * b.get('train', 0.0):6.1f}"
                f"  {100 * b.get('prep_wait', 0.0):10.1f}"
                f"  {verdict}"
            )
    return "\n".join(lines)
