"""Machine-readable run reports: one JSON document per training/inference run.

The benches already persist ``BENCH_*.json`` artifacts so perf trajectories
diff across PRs; :class:`RunReport` extends the same contract to *runs*: a
``python -m repro train --report-out report.json`` invocation writes one
validated document capturing

- the resolved configuration (dataset, model, executor, seeds, fanouts);
- the environment it ran in (python/numpy versions, platform, cpu count);
- per-epoch :class:`~repro.runtime.stages.EpochStats` rows (times, batch
  counts, bytes moved, loss trajectory, the Table-1 breakdown fractions);
- a full :class:`~repro.telemetry.metrics.MetricsRegistry` snapshot and the
  legacy integer :class:`~repro.telemetry.counters.Counters`;
- optional evaluation results (val/test accuracy).

``benchmarks/check_bench_json.py`` registers the ``run_report`` schema next
to the bench schemas, so reports are validated by the same tier-1 contract
tests that guard the bench artifacts.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Optional

from .counters import Counters
from .metrics import MetricsRegistry

__all__ = ["RunReport", "collect_environment", "REPORT_SCHEMA_VERSION"]

REPORT_SCHEMA_VERSION = 1


def collect_environment() -> dict:
    """Provenance snapshot of the interpreter/host executing the run."""
    import numpy

    return {
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


@dataclass
class RunReport:
    """Builder for the ``run_report`` JSON artifact."""

    command: str  # train / inference / ddp
    config: dict = field(default_factory=dict)
    environment: dict = field(default_factory=collect_environment)
    epochs: list = field(default_factory=list)
    evaluation: dict = field(default_factory=dict)
    metrics: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    probes: Optional[dict] = None

    # ------------------------------------------------------------------
    def add_epoch(self, stats, epoch: Optional[int] = None) -> None:
        """Append one :class:`~repro.runtime.stages.EpochStats` row."""
        import numpy as np

        losses = list(stats.losses)
        self.epochs.append(
            {
                "epoch": len(self.epochs) if epoch is None else int(epoch),
                "epoch_s": float(stats.epoch_time),
                "sample_s": float(stats.sample_time),
                "slice_s": float(stats.slice_time),
                "plan_build_s": float(getattr(stats, "plan_build_time", 0.0)),
                "transfer_s": float(stats.transfer_time),
                "train_s": float(stats.train_time),
                "prep_wait_s": float(stats.prep_wait_time),
                "num_batches": int(stats.num_batches),
                "bytes_transferred": int(stats.bytes_transferred),
                "overlapped": bool(stats.overlapped),
                "loss_mean": float(np.mean(losses)) if losses else None,
                "loss_last": float(losses[-1]) if losses else None,
                "breakdown": {k: float(v) for k, v in stats.breakdown().items()},
                # Bottleneck verdict as a sibling key — the breakdown dict
                # stays numbers-only for the schema validator.
                "verdict": stats.verdict(),
            }
        )

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        self.metrics = registry.snapshot()

    def attach_counters(self, counters: Counters) -> None:
        self.counters = dict(counters.snapshot())

    def attach_probes(self, sampler) -> None:
        """Fold a :class:`~repro.telemetry.monitor.ProbeSampler`'s ring
        series into the report (no-op for a disabled sampler)."""
        if sampler is not None and sampler.enabled:
            self.probes = sampler.to_doc()

    def add_evaluation(self, split: str, accuracy: float) -> None:
        self.evaluation[split] = float(accuracy)

    # ------------------------------------------------------------------
    def to_doc(self) -> dict:
        """The finished JSON document (``bench`` keys the validator)."""
        total_s = sum(e["epoch_s"] for e in self.epochs)
        doc = {
            "bench": "run_report",
            "schema_version": REPORT_SCHEMA_VERSION,
            "command": self.command,
            "config": self.config,
            "environment": self.environment,
            "epochs": self.epochs,
            "totals": {
                "epochs": len(self.epochs),
                "epoch_s": total_s,
                "num_batches": sum(e["num_batches"] for e in self.epochs),
                "bytes_transferred": sum(
                    e["bytes_transferred"] for e in self.epochs
                ),
            },
            "evaluation": self.evaluation,
            "metrics": self.metrics,
            "counters": self.counters,
        }
        if self.probes is not None:
            doc["probes"] = self.probes
        if self.epochs:
            from .attribution import attribute_report

            doc["attribution"] = attribute_report(doc).to_doc()
        return doc

    def write(self, path) -> dict:
        """Serialize to ``path``; returns the written document."""
        doc = self.to_doc()
        with open(path, "w") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")
        return doc
