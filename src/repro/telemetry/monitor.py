"""Continuous runtime monitoring: sampled probes into ring-buffer series.

The spans of :mod:`.tracer` answer *what ran when*; they cannot answer
*what the runtime looked like* while it ran — how deep the inter-stage
queues were, how many envelopes were in flight, how much of the pinned
staging pool and workspace was committed, whether the feature cache was
hitting.  :class:`ProbeSampler` closes that gap: a single low-overhead
background thread that periodically (default every 10 ms) evaluates a set
of registered *probe* callables and appends each value to a fixed-size
:class:`ProbeRing` time series.

Design constraints, mirroring the tracer's contract:

- **zero-cost when disabled** — ``ProbeSampler(enabled=False)`` registers
  nothing, starts no thread, and every method is a cheap no-op, so probe
  registration can stay in place unconditionally;
- **bounded memory** — each series is a preallocated ring of ``capacity``
  samples; wraparound drops the *oldest* samples and counts them, never
  growing;
- **non-perturbing** — probes are read-only callables evaluated on the
  sampler thread; a probe that raises is disabled after the first error
  (recorded in :attr:`ProbeSampler.errors`) instead of killing the thread;
- **self-accounting** — the sampler measures its own busy time, so tests
  can assert the monitoring overhead stays below a budget
  (:meth:`ProbeSampler.overhead_fraction`).

Series share a clock with the tracer when constructed with
``clock=tracer.now``, which is what lets the Chrome-trace export render
queue depth as counter tracks *under* the span Gantt
(:meth:`ProbeSampler.counter_track_events`, ``ph="C"`` events).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["ProbeRing", "ProbeSampler", "DEFAULT_PROBE_INTERVAL"]

#: default sampling period in seconds (10 ms)
DEFAULT_PROBE_INTERVAL = 0.01

#: default per-series capacity (samples retained before wraparound)
DEFAULT_RING_CAPACITY = 4096


class ProbeRing:
    """Fixed-capacity (timestamp, value) time series with wraparound.

    Appending beyond ``capacity`` overwrites the oldest sample;
    :attr:`dropped` counts how many were lost.  :meth:`series` returns the
    retained window in chronological order.
    """

    __slots__ = ("name", "unit", "capacity", "_t", "_v", "_written")

    def __init__(self, name: str, unit: str = "", capacity: int = DEFAULT_RING_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.unit = unit
        self.capacity = capacity
        self._t = np.empty(capacity, dtype=np.float64)
        self._v = np.empty(capacity, dtype=np.float64)
        self._written = 0  # total samples ever appended

    def append(self, t: float, value: float) -> None:
        slot = self._written % self.capacity
        self._t[slot] = t
        self._v[slot] = value
        self._written += 1

    def __len__(self) -> int:
        """Samples currently retained (<= capacity)."""
        return min(self._written, self.capacity)

    @property
    def total(self) -> int:
        """Samples ever appended (retained + dropped)."""
        return self._written

    @property
    def dropped(self) -> int:
        """Oldest samples lost to wraparound."""
        return max(0, self._written - self.capacity)

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(timestamps, values) of the retained window, oldest first."""
        n = len(self)
        if self._written <= self.capacity:
            return self._t[:n].copy(), self._v[:n].copy()
        start = self._written % self.capacity
        order = np.concatenate([np.arange(start, self.capacity), np.arange(start)])
        return self._t[order], self._v[order]

    def summary(self) -> dict:
        """Scalar digest of the retained window (NaNs when empty)."""
        _, values = self.series()
        empty = values.size == 0
        return {
            "count": int(len(self)),
            "total": int(self._written),
            "dropped": int(self.dropped),
            "mean": None if empty else float(values.mean()),
            "min": None if empty else float(values.min()),
            "max": None if empty else float(values.max()),
            "last": None if empty else float(values[-1]),
        }

    def to_doc(self, max_points: Optional[int] = None) -> dict:
        """JSON-serializable description (the RunReport ``probes`` entry).

        ``max_points`` decimates the series by striding (keeping the last
        sample) so reports stay small even at 1 ms intervals.
        """
        t, v = self.series()
        if max_points is not None and t.size > max_points:
            idx = np.linspace(0, t.size - 1, max_points).round().astype(np.int64)
            t, v = t[idx], v[idx]
        return {
            "name": self.name,
            "unit": self.unit,
            "capacity": self.capacity,
            **self.summary(),
            "t": [round(float(x), 6) for x in t],
            "values": [float(x) for x in v],
        }


class ProbeSampler:
    """Background thread sampling registered probes into ring buffers.

    Parameters
    ----------
    interval:
        Seconds between sampling sweeps (default 10 ms).
    capacity:
        Per-series ring capacity.
    enabled:
        ``False`` makes every method a no-op: no registrations are kept,
        no thread starts, no memory is held — the disabled-tracer contract.
    clock:
        Timestamp source for samples; pass ``tracer.now`` so probe series
        and spans share one time axis.  Defaults to seconds since the
        sampler's construction.
    """

    def __init__(
        self,
        interval: float = DEFAULT_PROBE_INTERVAL,
        capacity: int = DEFAULT_RING_CAPACITY,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.enabled = enabled
        self.interval = interval
        self.capacity = capacity
        self.errors: Dict[str, str] = {}
        self._origin = time.perf_counter()
        self._clock = clock or (lambda: time.perf_counter() - self._origin)
        self._lock = threading.Lock()
        self._probes: Dict[str, Callable[[], float]] = {}
        self._rings: Dict[str, ProbeRing] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._busy_seconds = 0.0
        self._monitored_seconds = 0.0
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_probe(self, name: str, fn: Callable[[], float], unit: str = "") -> None:
        """Register ``fn`` to be sampled as series ``name``.

        Re-registering an existing name swaps the callable but keeps the
        ring, so a series stays continuous across epochs even though the
        probed object (a per-run queue, say) is recreated each run.
        """
        if not self.enabled:
            return
        with self._lock:
            self._probes[name] = fn
            if name not in self._rings:
                self._rings[name] = ProbeRing(name, unit=unit, capacity=self.capacity)

    def remove_probe(self, name: str) -> None:
        """Stop sampling ``name``; its recorded series is kept."""
        if not self.enabled:
            return
        with self._lock:
            self._probes.pop(name, None)

    def probe_names(self) -> List[str]:
        with self._lock:
            return sorted(self._probes)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_once(self) -> int:
        """One synchronous sweep over every live probe; returns samples taken."""
        if not self.enabled:
            return 0
        t0 = time.perf_counter()
        with self._lock:
            live = list(self._probes.items())
        now = self._clock()
        taken = 0
        for name, fn in live:
            try:
                value = float(fn())
            except Exception as exc:  # noqa: BLE001 — a probe must never kill the sweep
                self.errors[name] = repr(exc)
                self.remove_probe(name)
                continue
            self._rings[name].append(now, value)
            taken += 1
        self._busy_seconds += time.perf_counter() - t0
        return taken

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def start(self) -> "ProbeSampler":
        """Start the background sampling thread (no-op when disabled)."""
        if not self.enabled or self._thread is not None:
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="probe-sampler"
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread after one final sweep (so short runs still record)."""
        if not self.enabled or self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10)
        self._thread = None
        self.sample_once()
        if self._started_at is not None:
            self._monitored_seconds += time.perf_counter() - self._started_at
            self._started_at = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "ProbeSampler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def ring(self, name: str) -> Optional[ProbeRing]:
        with self._lock:
            return self._rings.get(name)

    def rings(self) -> List[ProbeRing]:
        with self._lock:
            return [self._rings[name] for name in sorted(self._rings)]

    def overhead_fraction(self) -> float:
        """Probe busy time / monitored wall time (0.0 before any sampling).

        This is the sampler's *own* cost: seconds spent executing probe
        callables and appending to rings, divided by the seconds the
        sampler has been running.  The overhead budget test asserts this
        stays under 2% at the default 10 ms interval.
        """
        monitored = self._monitored_seconds
        if self._started_at is not None:
            monitored += time.perf_counter() - self._started_at
        if monitored <= 0.0:
            return 0.0
        return self._busy_seconds / monitored

    def counter_track_events(self, pid: int = 1) -> List[dict]:
        """Chrome trace-event counter tracks (``ph="C"``), one per series.

        Merged into :meth:`Tracer.to_chrome_trace`'s event list these
        render in Perfetto as numeric tracks under the span Gantt: queue
        depth, pinned-pool occupancy, workspace bytes over the same time
        axis as the stage spans (requires ``clock=tracer.now``).
        """
        events: List[dict] = []
        for ring in self.rings():
            name = f"{ring.name}" + (f" ({ring.unit})" if ring.unit else "")
            t, v = ring.series()
            for ts, value in zip(t, v):
                events.append(
                    {
                        "ph": "C",
                        "name": name,
                        "cat": "probe",
                        "ts": float(ts) * 1e6,
                        "pid": pid,
                        "args": {"value": float(value)},
                    }
                )
        return events

    def to_doc(self, max_points: Optional[int] = 512) -> dict:
        """JSON-serializable snapshot (the RunReport ``probes`` section)."""
        return {
            "interval_s": self.interval,
            "capacity": self.capacity,
            "overhead_fraction": self.overhead_fraction(),
            "errors": dict(self.errors),
            "series": [ring.to_doc(max_points=max_points) for ring in self.rings()],
        }
