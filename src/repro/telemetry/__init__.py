"""Observability: spans, metrics, counters, run reports, table rendering.

One package owns every instrumentation seam of the repository:

- :mod:`.tracer` — span-based :class:`Tracer` with a shared wall-clock
  origin, ASCII Figure-1 rendering and Chrome trace-event export;
- :mod:`.metrics` — :class:`MetricsRegistry` of labelled counters, gauges,
  histograms and timers with thread-safe merge semantics;
- :mod:`.counters` — the legacy integer :class:`Counters` (still the
  allocation-proof ledger of the sampling arena and fused slicer);
- :mod:`.report` — :class:`RunReport`, the machine-readable per-run JSON
  artifact validated by ``benchmarks/check_bench_json.py``;
- :mod:`.monitor` — :class:`ProbeSampler`, the continuous-monitoring
  background thread sampling queue depths / pool occupancy / cache hit
  rates into fixed-size :class:`ProbeRing` series;
- :mod:`.attribution` — bottleneck attribution: blocking shares, lane
  utilization and the prep-/transfer-/compute-bound verdict
  (``python -m repro diagnose report.json``);
- :mod:`.sentinel` — the perf-regression sentinel comparing fresh
  ``BENCH_*.json`` artifacts against committed baselines;
- :mod:`.timers` / :mod:`.tables` — stopwatches and the table/bar renderers
  every bench prints through.
"""

from .attribution import (
    Attribution,
    attribute_breakdown,
    attribute_report,
    attribute_trace,
    render_attribution,
)
from .counters import Counters
from .metrics import (
    Counter,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .monitor import DEFAULT_PROBE_INTERVAL, ProbeRing, ProbeSampler
from .report import RunReport, collect_environment
from .tables import format_bar_chart, format_seconds, format_table
from .timers import StageTimers, Timer
from .tracer import STAGE_GLYPHS, TraceEvent, Tracer, render_timeline

__all__ = [
    "Timer",
    "StageTimers",
    "Counters",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "RunReport",
    "collect_environment",
    "ProbeSampler",
    "ProbeRing",
    "DEFAULT_PROBE_INTERVAL",
    "Attribution",
    "attribute_breakdown",
    "attribute_trace",
    "attribute_report",
    "render_attribution",
    "Tracer",
    "TraceEvent",
    "render_timeline",
    "STAGE_GLYPHS",
    "format_table",
    "format_seconds",
    "format_bar_chart",
]
