"""Timers, counters and table/bar rendering for benches."""

from .counters import Counters
from .tables import format_bar_chart, format_seconds, format_table
from .timers import StageTimers, Timer

__all__ = [
    "Timer",
    "StageTimers",
    "Counters",
    "format_table",
    "format_seconds",
    "format_bar_chart",
]
