"""Observability: spans, metrics, counters, run reports, table rendering.

One package owns every instrumentation seam of the repository:

- :mod:`.tracer` — span-based :class:`Tracer` with a shared wall-clock
  origin, ASCII Figure-1 rendering and Chrome trace-event export;
- :mod:`.metrics` — :class:`MetricsRegistry` of labelled counters, gauges,
  histograms and timers with thread-safe merge semantics;
- :mod:`.counters` — the legacy integer :class:`Counters` (still the
  allocation-proof ledger of the sampling arena and fused slicer);
- :mod:`.report` — :class:`RunReport`, the machine-readable per-run JSON
  artifact validated by ``benchmarks/check_bench_json.py``;
- :mod:`.timers` / :mod:`.tables` — stopwatches and the table/bar renderers
  every bench prints through.
"""

from .counters import Counters
from .metrics import (
    Counter,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .report import RunReport, collect_environment
from .tables import format_bar_chart, format_seconds, format_table
from .timers import StageTimers, Timer
from .tracer import STAGE_GLYPHS, TraceEvent, Tracer, render_timeline

__all__ = [
    "Timer",
    "StageTimers",
    "Counters",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "RunReport",
    "collect_environment",
    "Tracer",
    "TraceEvent",
    "render_timeline",
    "STAGE_GLYPHS",
    "format_table",
    "format_seconds",
    "format_bar_chart",
]
