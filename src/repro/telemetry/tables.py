"""Plain-text table rendering for benchmark output.

Every bench prints its reproduced table/figure through these helpers so the
output visually matches the paper's row/column structure.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["format_table", "format_seconds", "format_bar_chart"]


def format_seconds(value: float) -> str:
    """Human scale: '13.9s' / '250ms' / '87us'."""
    if value >= 1.0:
        return f"{value:.1f}s" if value >= 10 else f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.1f}ms"
    return f"{value * 1e6:.0f}us"


def format_table(
    rows: Sequence[dict],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    floatfmt: str = "{:.4g}",
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    table = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in table)) for i, col in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    rule = "-" * len(header)
    body = "\n".join("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in table)
    parts = [title, header, rule, body] if title else [header, rule, body]
    return "\n".join(parts)


def format_bar_chart(
    labels: Sequence[str], values: Sequence[float], width: int = 50, unit: str = ""
) -> str:
    """Horizontal ASCII bars (stand-in for the paper's bar figures)."""
    if not values:
        return "(empty)"
    peak = max(values) or 1.0
    label_width = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(int(value / peak * width), 1 if value > 0 else 0)
        lines.append(f"{str(label):>{label_width}} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)
