"""Perf-regression sentinel: BENCH artifacts vs committed baselines.

The repository's perf story lives in the ``BENCH_*.json`` artifacts at the
repo root — sampler hot path, pipeline policies, fused compute kernels.
Until now those trajectories were *recorded* but not *enforced*: a PR
could halve ``arena_vs_fast_speedup`` and only a diligent reviewer would
notice.  The sentinel turns the artifacts into a contract:

- every guarded metric (per-row ``median_s``, per-dataset summary
  speedups) is compared against its committed baseline with a
  **noise-aware tolerance band**: relative slack plus an absolute floor,
  so microsecond-scale medians aren't held to nanosecond noise and
  near-1.0 speedups aren't failed by scheduler jitter;
- the comparison emits a ``BENCH_sentinel.json`` trajectory artifact
  (validated by ``benchmarks/check_bench_json.py`` like every other
  artifact) recording each check's baseline, current value and band;
- a non-empty set of regressions exits non-zero, so tier-1 tests — not
  code review — catch perf regressions.

Run it as ``python benchmarks/sentinel.py`` or via the ``repro-sentinel``
console entry point.  With no candidates the sentinel self-compares the
committed baselines (every check passes by construction), which is how
the committed trajectory snapshot is produced::

    PYTHONPATH=src python benchmarks/sentinel.py --out BENCH_sentinel.json

Comparing a fresh run against the committed baselines::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --output /tmp/BENCH_pipeline.json
    PYTHONPATH=src python benchmarks/sentinel.py /tmp/BENCH_pipeline.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "GuardedMetric",
    "extract_guarded_metrics",
    "compare_docs",
    "build_sentinel_doc",
    "main",
    "SENTINEL_SCHEMA_VERSION",
    "DEFAULT_REL_TOL",
    "DEFAULT_ABS_FLOOR_S",
    "DEFAULT_ABS_FLOOR_RATIO",
]

SENTINEL_SCHEMA_VERSION = 1

#: relative tolerance band (35% — CI machines are noisy; the sentinel is
#: for catching step-function regressions, not 5% drifts)
DEFAULT_REL_TOL = 0.35
#: absolute floor for duration metrics (seconds) — sub-5ms medians are
#: dominated by scheduler jitter
DEFAULT_ABS_FLOOR_S = 0.005
#: absolute floor for dimensionless speedup ratios
DEFAULT_ABS_FLOOR_RATIO = 0.15

#: artifacts the sentinel itself produces / that carry no guarded perf rows
_UNGUARDED_BENCH_KINDS = {"sentinel", "run_report"}


@dataclass
class GuardedMetric:
    """One metric the sentinel protects."""

    metric: str  # dotted path, e.g. "summary.arxiv.fused_epoch_speedup"
    kind: str  # "seconds" | "ratio"
    direction: str  # "lower-better" | "higher-better"
    value: float


def extract_guarded_metrics(doc: dict) -> List[GuardedMetric]:
    """The guarded metrics of one bench artifact (empty if unguarded).

    Per-row ``median_s`` (lower is better) plus every per-dataset summary
    entry (speedup ratios, higher is better).  Throughput keys are skipped
    — they are reciprocals of the medians and would double-count.
    """
    if doc.get("bench") in _UNGUARDED_BENCH_KINDS:
        return []
    guarded: List[GuardedMetric] = []
    for row in doc.get("rows") or []:
        if not isinstance(row, dict):
            continue
        median = row.get("median_s")
        if isinstance(median, (int, float)) and math.isfinite(median):
            name = f"rows.{row.get('bench')}.{row.get('dataset')}.{row.get('variant')}.median_s"
            guarded.append(GuardedMetric(name, "seconds", "lower-better", float(median)))
    summary = doc.get("summary")
    if isinstance(summary, dict):
        for dataset, entry in sorted(summary.items()):
            if not isinstance(entry, dict):
                continue
            for key, value in sorted(entry.items()):
                if isinstance(value, (int, float)) and math.isfinite(value):
                    guarded.append(
                        GuardedMetric(
                            f"summary.{dataset}.{key}", "ratio", "higher-better", float(value)
                        )
                    )
    return guarded


def _allowed_bound(metric: GuardedMetric, rel_tol: float, abs_floor: float) -> float:
    """The worst acceptable value for ``metric`` given the tolerance band."""
    slack = max(rel_tol * abs(metric.value), abs_floor)
    if metric.direction == "lower-better":
        return metric.value + slack
    return metric.value - slack


def compare_docs(
    baseline: dict,
    candidate: dict,
    artifact: str,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S,
    abs_floor_ratio: float = DEFAULT_ABS_FLOOR_RATIO,
) -> List[dict]:
    """Check every guarded baseline metric against the candidate document.

    Returns one check row per guarded metric with status ``pass``,
    ``regressed``, or ``missing`` (metric absent from the candidate —
    schema drift is a regression too).
    """
    candidate_values: Dict[str, float] = {
        m.metric: m.value for m in extract_guarded_metrics(candidate)
    }
    checks: List[dict] = []
    for metric in extract_guarded_metrics(baseline):
        abs_floor = abs_floor_s if metric.kind == "seconds" else abs_floor_ratio
        allowed = _allowed_bound(metric, rel_tol, abs_floor)
        current = candidate_values.get(metric.metric)
        if current is None:
            status = "missing"
        elif metric.direction == "lower-better":
            status = "pass" if current <= allowed else "regressed"
        else:
            status = "pass" if current >= allowed else "regressed"
        checks.append(
            {
                "artifact": artifact,
                "metric": metric.metric,
                "kind": metric.kind,
                "direction": metric.direction,
                "baseline": metric.value,
                "current": current,
                "allowed": allowed,
                "status": status,
            }
        )
    return checks


def build_sentinel_doc(
    checks: List[dict],
    artifacts: List[dict],
    mode: str,
    rel_tol: float,
    abs_floor_s: float,
    abs_floor_ratio: float,
) -> dict:
    """Assemble the ``BENCH_sentinel.json`` trajectory artifact."""
    regressed = sum(1 for c in checks if c["status"] != "pass")
    return {
        "bench": "sentinel",
        "schema_version": SENTINEL_SCHEMA_VERSION,
        "mode": mode,
        "rel_tolerance": rel_tol,
        "abs_floor_s": abs_floor_s,
        "abs_floor_ratio": abs_floor_ratio,
        "artifacts": artifacts,
        "checks": checks,
        "summary": {
            "checked": len(checks),
            "regressed": regressed,
            "status": "pass" if regressed == 0 else "regressed",
        },
    }


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _load(path: Path) -> Optional[dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"sentinel: cannot read {path}: {exc}", file=sys.stderr)
        return None


def _default_baseline_dir() -> Path:
    """The repo root when running from a src layout, else the cwd."""
    candidate = Path(__file__).resolve()
    if len(candidate.parents) >= 4:
        root = candidate.parents[3]  # src/repro/telemetry/sentinel.py -> repo
        if any(root.glob("BENCH_*.json")):
            return root
    return Path.cwd()


def _baseline_artifacts(baseline_dir: Path) -> List[Path]:
    """Guarded baseline artifacts (the sentinel's own output is excluded)."""
    return [
        path
        for path in sorted(baseline_dir.glob("BENCH_*.json"))
        if path.name != "BENCH_sentinel.json"
    ]


def _resolve_pairs(args) -> Optional[List[Tuple[Path, Path, str]]]:
    """(baseline, candidate, artifact-name) triples for the requested mode."""
    baseline_dir = Path(args.baseline_dir)
    if args.candidates:
        pairs = []
        for cand in args.candidates:
            cand = Path(cand)
            base = baseline_dir / cand.name
            if not base.exists():
                print(f"sentinel: no committed baseline {base}", file=sys.stderr)
                return None
            pairs.append((base, cand, cand.name))
        return pairs
    bases = _baseline_artifacts(baseline_dir)
    if not bases:
        print(f"sentinel: no BENCH_*.json baselines in {baseline_dir}", file=sys.stderr)
        return None
    if args.candidate_dir:
        candidate_dir = Path(args.candidate_dir)
        return [(base, candidate_dir / base.name, base.name) for base in bases]
    # Self-compare: trajectory snapshot of the committed baselines.
    return [(base, base, base.name) for base in bases]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sentinel",
        description="compare BENCH_*.json artifacts against committed baselines",
    )
    parser.add_argument(
        "candidates",
        nargs="*",
        help="candidate artifacts to check (matched to baselines by filename); "
        "none = self-compare the committed baselines",
    )
    parser.add_argument(
        "--baseline-dir",
        default=str(_default_baseline_dir()),
        help="directory holding the committed BENCH_*.json baselines "
        "(default: the repository root when run from a source tree, else cwd)",
    )
    parser.add_argument(
        "--candidate-dir",
        default=None,
        help="directory of freshly produced artifacts to check, one per baseline",
    )
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the BENCH_sentinel.json trajectory artifact here")
    parser.add_argument("--rel-tol", type=float, default=DEFAULT_REL_TOL)
    parser.add_argument("--abs-floor-s", type=float, default=DEFAULT_ABS_FLOOR_S)
    parser.add_argument("--abs-floor-ratio", type=float, default=DEFAULT_ABS_FLOOR_RATIO)
    args = parser.parse_args(argv)

    pairs = _resolve_pairs(args)
    if pairs is None:
        return 2

    checks: List[dict] = []
    artifacts: List[dict] = []
    for base_path, cand_path, name in pairs:
        base_doc = _load(base_path)
        cand_doc = _load(cand_path) if cand_path != base_path else base_doc
        if base_doc is None or cand_doc is None:
            return 2
        artifacts.append(
            {
                "name": name,
                "bench": base_doc.get("bench"),
                "baseline_mode": base_doc.get("mode"),
                "baseline_reps": base_doc.get("reps"),
            }
        )
        checks.extend(
            compare_docs(
                base_doc,
                cand_doc,
                name,
                rel_tol=args.rel_tol,
                abs_floor_s=args.abs_floor_s,
                abs_floor_ratio=args.abs_floor_ratio,
            )
        )
    if not checks:
        print("sentinel: no guarded metrics found", file=sys.stderr)
        return 2

    mode = "self" if all(b == c for b, c, _ in pairs) else "compare"
    doc = build_sentinel_doc(
        checks, artifacts, mode, args.rel_tol, args.abs_floor_s, args.abs_floor_ratio
    )
    if args.out:
        out = Path(args.out)
        out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"sentinel trajectory written to {out}")

    failed = [c for c in checks if c["status"] != "pass"]
    for check in failed:
        print(
            f"REGRESSED {check['artifact']}: {check['metric']} "
            f"baseline={check['baseline']:.6g} current="
            + (f"{check['current']:.6g}" if check["current"] is not None else "<missing>")
            + f" allowed={check['allowed']:.6g} ({check['direction']})",
            file=sys.stderr,
        )
    print(
        f"sentinel: {len(checks)} checks over {len(pairs)} artifacts, "
        f"{len(failed)} regressed ({mode} mode)"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
