"""Wall-clock timing utilities used by benchmarks and executors."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Timer", "StageTimers"]


@dataclass
class Timer:
    """Accumulating stopwatch. Use as a context manager per measured span."""

    total: float = 0.0
    count: int = 0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.total += time.perf_counter() - self._start
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Timer") -> None:
        """Accumulate another stopwatch (per-worker timers -> pool view)."""
        self.total += other.total
        self.count += other.count

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0


class StageTimers:
    """Named collection of timers (one per pipeline stage)."""

    def __init__(self) -> None:
        self._timers: dict[str, Timer] = {}

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        timer = self._timers.setdefault(name, Timer())
        with timer:
            yield

    def __getitem__(self, name: str) -> Timer:
        return self._timers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def totals(self) -> dict[str, float]:
        return {name: t.total for name, t in self._timers.items()}

    def merge(self, other: "StageTimers") -> None:
        """Name-wise accumulate another timer set into this one."""
        for name, timer in other._timers.items():
            self._timers.setdefault(name, Timer()).merge(timer)

    def reset(self) -> None:
        for timer in self._timers.values():
            timer.reset()
