"""Named monotonic counters for allocation/byte/path accounting.

The sampling arena and the fused slicing path report *what they did* —
buffer grows, bytes gathered, edges routed down the copy vs sort path —
through a :class:`Counters` instance, so benches and tests can prove
properties like "O(1) array allocations per batch after warm-up" instead
of asserting them by inspection.

Counters are thread-safe (batch-preparation workers share one instance)
and mergeable (per-worker sampler arenas aggregate into a pool view).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Mapping

__all__ = ["Counters"]


class Counters:
    """Thread-safe named integer counters."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = {}
        self._lock = threading.Lock()

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self._values[name] = self._values.get(name, 0) + int(amount)

    def __getitem__(self, name: str) -> int:
        with self._lock:
            return self._values.get(name, 0)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self.snapshot())

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time copy of every counter."""
        with self._lock:
            return dict(self._values)

    def merge(self, other: "Counters | Mapping[str, int]") -> None:
        """Accumulate another counter set (or plain mapping) into this one."""
        items = other.snapshot() if isinstance(other, Counters) else dict(other)
        with self._lock:
            for name, value in items.items():
                self._values[name] = self._values.get(name, 0) + int(value)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self.snapshot()!r})"
