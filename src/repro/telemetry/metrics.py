"""Labelled metrics registry: counters, gauges, histograms, timers.

:class:`MetricsRegistry` is the runtime's single source of truth for
quantitative observability.  Where :class:`~repro.telemetry.counters
.Counters` only counts integers, the registry models four metric kinds,
each addressed by a name plus a label set (``stage="slice"``,
``dataset="products"``):

- :class:`Counter` — monotonic accumulator (int or float);
- :class:`Gauge` — last-written value (queue depth, free pinned slots);
- :class:`Histogram` — fixed-bucket distribution with exact ``count`` /
  ``sum`` / ``min`` / ``max`` and interpolated p50/p90/p99.  Two histograms
  over the same bucket boundaries merge associatively, so per-worker or
  per-epoch registries aggregate into pool views exactly like ``Counters``;
- :class:`Timer` — a histogram of seconds with a ``time()`` context
  manager.

All metrics are thread-safe (pipeline workers share one registry) and the
registry itself merges: ``registry.merge(other)`` accumulates counters,
takes the latest gauge, and bucket-wise adds histograms.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
]

#: Default histogram boundaries for durations in seconds: log-spaced
#: 1-2.5-5 decades from 1us to 100s.  Everything above the last boundary
#: lands in the overflow bucket.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(
    base * 10.0 ** exponent
    for exponent in range(-6, 3)
    for base in (1.0, 2.5, 5.0)
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base: identity (name + labels) and a per-metric lock."""

    kind = "metric"

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def describe(self) -> dict:
        """JSON-serializable snapshot (RunReport's ``metrics`` entries)."""
        return {"name": self.name, "labels": self.label_dict, "kind": self.kind}


class Counter(Metric):
    """Monotonic accumulator."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey) -> None:
        super().__init__(name, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._lock:
            self.value += amount

    def describe(self) -> dict:
        return {**super().describe(), "value": self.value}

    def _merge(self, other: "Counter") -> None:
        with self._lock:
            self.value += other.value


class Gauge(Metric):
    """Last-written value."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey) -> None:
        super().__init__(name, labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def describe(self) -> dict:
        return {**super().describe(), "value": self.value}

    def _merge(self, other: "Gauge") -> None:
        with self._lock:
            self.value = other.value


class Histogram(Metric):
    """Fixed-bucket distribution with exact moments and merge support.

    ``buckets`` are the upper boundaries of each bin (ascending); one
    overflow bin collects everything beyond the last boundary.  ``count``,
    ``sum``, ``min`` and ``max`` are exact; percentiles interpolate within
    the containing bucket and clamp to the observed [min, max], so an empty
    histogram reports NaN and a single-sample histogram reports the sample
    itself at every percentile.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        boundaries = tuple(float(b) for b in buckets)
        if not boundaries or any(
            b2 <= b1 for b1, b2 in zip(boundaries, boundaries[1:])
        ):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.buckets = boundaries
        self.counts = [0] * (len(boundaries) + 1)  # +1 = overflow bin
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        index = self._bucket_index(value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # first boundary >= value (bisect_left)
            mid = (lo + hi) // 2
            if self.buckets[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def percentile(self, p: float) -> float:
        """Interpolated percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if self.count == 0:
                return float("nan")
            target = p / 100.0 * self.count
            cumulative = 0
            for i, bin_count in enumerate(self.counts):
                if bin_count == 0:
                    continue
                lo = self.buckets[i - 1] if i > 0 else self.min
                hi = self.buckets[i] if i < len(self.buckets) else self.max
                if cumulative + bin_count >= target:
                    fraction = (target - cumulative) / bin_count
                    value = lo + fraction * (hi - lo)
                    return min(max(value, self.min), self.max)
                cumulative += bin_count
            return self.max

    def merge(self, other: "Histogram") -> None:
        """Bucket-wise accumulate ``other`` (same boundaries required).

        ``other`` is snapshotted under *its* lock first: reading its bins
        while a concurrent ``observe`` runs can otherwise tear the read —
        e.g. pick up ``count``/``sum`` but miss the matching overflow
        (+Inf) bucket increment, silently losing tail samples.  The two
        locks are never held together, so merges in any direction cannot
        deadlock.
        """
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.name}{dict(self.labels)}"
            )
        with other._lock:
            counts = list(other.counts)
            count, total = other.count, other.sum
            lo, hi = other.min, other.max
        with self._lock:
            for i, bin_count in enumerate(counts):
                self.counts[i] += bin_count
            self.count += count
            self.sum += total
            self.min = min(self.min, lo)
            self.max = max(self.max, hi)

    _merge = merge

    def describe(self) -> dict:
        empty = self.count == 0
        return {
            **super().describe(),
            "count": self.count,
            "sum": self.sum,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "p50": None if empty else self.percentile(50),
            "p90": None if empty else self.percentile(90),
            "p99": None if empty else self.percentile(99),
        }


class Timer(Histogram):
    """Histogram of elapsed seconds with a context-manager front end.

    Replaces the old accumulating ``telemetry.timers.Timer`` stopwatch in
    registry contexts: ``total``/``mean`` keep the stopwatch vocabulary.
    """

    kind = "timer"

    @contextmanager
    def time(self) -> Iterator[None]:
        start = perf_counter()
        try:
            yield
        finally:
            self.observe(perf_counter() - start)

    @property
    def total(self) -> float:
        return self.sum


class MetricsRegistry:
    """Thread-safe collection of labelled metrics.

    A metric is identified by ``(kind-independent name, labels)``.
    Re-requesting the same identity returns the same object; requesting it
    as a *different kind* is a label collision and raises ``TypeError`` —
    silent kind swaps would corrupt merge semantics.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Metric] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Accessors (get-or-create)
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = cls(name, key[1], **kwargs)
            elif type(metric) is not cls:
                raise TypeError(
                    f"metric {name!r} with labels {dict(key[1])} already "
                    f"registered as {metric.kind}, requested {cls.kind}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def timer(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        **labels,
    ) -> Timer:
        return self._get_or_create(Timer, name, labels, buckets=buckets)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, name: str, **labels) -> Optional[Metric]:
        """The metric at this identity, or None (never creates)."""
        with self._lock:
            return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Scalar view: counter/gauge value, histogram/timer *sum*."""
        metric = self.get(name, **labels)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.sum
        return metric.value

    def collect(self, name: Optional[str] = None) -> list[Metric]:
        """Every metric (optionally filtered by name), label-sorted."""
        with self._lock:
            metrics = list(self._metrics.values())
        if name is not None:
            metrics = [m for m in metrics if m.name == name]
        return sorted(metrics, key=lambda m: (m.name, m.labels))

    def snapshot(self) -> list[dict]:
        """JSON-serializable description of every metric."""
        return [metric.describe() for metric in self.collect()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate ``other`` into this registry.

        Counters and histograms add; gauges take ``other``'s value (it is
        the more recent observation); missing metrics are deep-copied in
        kind-faithfully.  Merging is associative for counters/histograms,
        which is what lets per-epoch and per-worker registries aggregate
        into long-lived pool registries in any grouping.
        """
        with other._lock:
            items = list(other._metrics.items())
        for (name, labels), metric in items:
            if isinstance(metric, Histogram):
                mine = self._get_or_create(
                    type(metric), name, dict(labels), buckets=metric.buckets
                )
            else:
                mine = self._get_or_create(type(metric), name, dict(labels))
            mine._merge(metric)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self)} metrics)"
