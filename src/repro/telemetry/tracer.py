"""Span-based tracing: one clock, hierarchical spans, two renderers.

This is the repository's single tracing seam.  Every pipeline stage
(sample, slice, transfer, train) records :class:`TraceEvent` spans against
a named resource lane (``cpu:0``, ``dma``, ``gpu``) on a shared wall-clock
origin.  The collected trace renders two ways:

- :func:`render_timeline` — the ASCII Gantt chart reproducing the paper's
  Figure 1 comparison between the serial PyTorch workflow and SALIENT's
  overlapped pipeline (byte-compatible with the original
  ``repro.runtime.trace`` renderer);
- :meth:`Tracer.to_chrome_trace` — Chrome trace-event JSON (``ph``/``ts``/
  ``dur``/``pid``/``tid``) loadable in ``chrome://tracing`` or Perfetto,
  with one timeline track per resource lane and span nesting preserved.

Spans are hierarchical: entering a span inside another span (on the same
thread) records the parent's id, so a fused ``prepare`` stage can wrap its
``sample``/``slice`` children and the Chrome view nests them.  A disabled
tracer is free: ``span()`` returns a shared singleton — no allocation, no
lock acquisition, no clock read.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["TraceEvent", "Tracer", "render_timeline", "STAGE_GLYPHS"]

#: Stage -> single-character glyph used in the ASCII timeline. The paper's
#: Figure 1 color code: green=sample, yellow=slice, orange/red=transfer,
#: blue=train.
STAGE_GLYPHS = {"sample": "S", "slice": "L", "transfer": "T", "train": "C"}


@dataclass
class TraceEvent:
    """One timed stage execution on one resource lane."""

    name: str  # stage name: sample / slice / transfer / train
    resource: str  # lane: cpu:<i>, dma, gpu
    batch: int  # mini-batch index
    start: float
    end: float
    #: span id (unique per tracer) and parent span id (-1 = root)
    span_id: int = -1
    parent_id: int = -1
    #: OS thread that executed the span (Chrome-trace disambiguation)
    thread: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NullSpan:
    """Do-nothing context manager shared by every disabled-tracer span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: module-level singleton: ``span()`` on a disabled tracer allocates nothing
_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one event (with hierarchy bookkeeping)."""

    __slots__ = ("tracer", "name", "resource", "batch", "start", "span_id", "parent_id")

    def __init__(self, tracer: "Tracer", name: str, resource: str, batch: int):
        self.tracer = tracer
        self.name = name
        self.resource = resource
        self.batch = batch

    def __enter__(self) -> "_Span":
        self.span_id, self.parent_id = self.tracer._push_span()
        self.start = self.tracer.now()
        return self

    def __exit__(self, *exc) -> bool:
        end = self.tracer.now()
        self.tracer._pop_span()
        self.tracer._record_event(
            TraceEvent(
                name=self.name,
                resource=self.resource,
                batch=self.batch,
                start=self.start,
                end=end,
                span_id=self.span_id,
                parent_id=self.parent_id,
                thread=threading.get_ident(),
            )
        )
        return False


class Tracer:
    """Thread-safe span collector with a shared wall-clock origin.

    One ``Tracer`` instance is one timeline: every span's ``start``/``end``
    is seconds since the tracer's construction, so events recorded from
    different threads and stages interleave on a common axis.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []
        self._lock = threading.Lock()
        self._origin = time.perf_counter()
        self._next_id = 0
        self._stack = threading.local()

    def now(self) -> float:
        return time.perf_counter() - self._origin

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _push_span(self) -> tuple[int, int]:
        """Allocate a span id; return (id, parent id on this thread)."""
        stack = getattr(self._stack, "ids", None)
        if stack is None:
            stack = self._stack.ids = []
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent_id = stack[-1] if stack else -1
        stack.append(span_id)
        return span_id, parent_id

    def _pop_span(self) -> None:
        stack = getattr(self._stack, "ids", None)
        if stack:
            stack.pop()

    def _record_event(self, event: TraceEvent) -> None:
        with self._lock:
            self.events.append(event)

    def record(
        self, name: str, resource: str, batch: int, start: float, end: float
    ) -> None:
        """Append one pre-timed event (no hierarchy, analysis-path entry)."""
        if not self.enabled:
            return
        self._record_event(
            TraceEvent(name, resource, batch, start, end, thread=threading.get_ident())
        )

    def span(self, name: str, resource: str, batch: int) -> "_Span | _NullSpan":
        """Context manager that records one event.

        On a disabled tracer this is zero-cost: the shared no-op singleton
        is returned — no object allocation, no lock, no clock read.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, resource, batch)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def stage_totals(self) -> dict[str, float]:
        """Total busy time per stage name."""
        totals: dict[str, float] = {}
        for event in self.events:
            totals[event.name] = totals.get(event.name, 0.0) + event.duration
        return totals

    def resource_busy(self, resource: str) -> float:
        """Union length of busy intervals on one lane (handles overlap)."""
        spans = sorted(
            (e.start, e.end) for e in self.events if e.resource == resource
        )
        busy = 0.0
        current_start, current_end = None, None
        for start, end in spans:
            if current_end is None or start > current_end:
                if current_end is not None:
                    busy += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        if current_end is not None:
            busy += current_end - current_start
        return busy

    def makespan(self) -> float:
        if not self.events:
            return 0.0
        return max(e.end for e in self.events) - min(e.start for e in self.events)

    def gpu_utilization(self) -> float:
        """Fraction of the makespan during which the GPU lane is busy."""
        span = self.makespan()
        return self.resource_busy("gpu") / span if span > 0 else 0.0

    # ------------------------------------------------------------------
    # Chrome trace-event export
    # ------------------------------------------------------------------
    def to_chrome_trace(self, pid: int = 1, probes=None) -> dict:
        """The trace as a Chrome trace-event JSON document.

        Loadable in ``chrome://tracing`` / https://ui.perfetto.dev: one
        process (``pid``), one track (``tid``) per resource lane, complete
        events (``ph="X"``) with microsecond ``ts``/``dur``, batch index and
        span hierarchy under ``args``.  Lane-name metadata events label the
        tracks; lanes are ordered cpu* < dma < gpu to match the ASCII view.

        ``probes`` (a :class:`~repro.telemetry.monitor.ProbeSampler`
        constructed with ``clock=tracer.now``) appends its ``ph="C"``
        counter tracks, so queue depths and pool occupancy render as numeric
        series under the span Gantt on the same time axis.
        """
        lanes = sorted({e.resource for e in self.events}, key=_lane_sort_key)
        tid_of = {lane: tid for tid, lane in enumerate(lanes)}
        trace_events: list[dict] = []
        for lane in lanes:
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid_of[lane],
                    "args": {"name": lane},
                }
            )
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_sort_index",
                    "pid": pid,
                    "tid": tid_of[lane],
                    "args": {"sort_index": tid_of[lane]},
                }
            )
        for event in self.events:
            trace_events.append(
                {
                    "ph": "X",
                    "name": event.name,
                    "cat": "stage",
                    "ts": event.start * 1e6,
                    "dur": event.duration * 1e6,
                    "pid": pid,
                    "tid": tid_of[event.resource],
                    "args": {
                        "batch": event.batch,
                        "span_id": event.span_id,
                        "parent_id": event.parent_id,
                    },
                }
            )
        if probes is not None:
            trace_events.extend(probes.counter_track_events(pid=pid))
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.telemetry.tracer"},
        }

    def write_chrome_trace(self, path, pid: int = 1, probes=None) -> None:
        """Serialize :meth:`to_chrome_trace` to ``path`` as JSON."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(pid=pid, probes=probes), handle, indent=1)
            handle.write("\n")


def _lane_sort_key(lane: str) -> tuple[int, str]:
    """cpu lanes first, then dma, then gpu (Figure 1's top-to-bottom order)."""
    for rank, prefix in enumerate(("cpu", "dma", "gpu")):
        if lane.startswith(prefix):
            return (rank, lane)
    return (3, lane)


def render_timeline(
    tracer: Tracer, width: int = 100, resources: Optional[list[str]] = None
) -> str:
    """Render the trace as an ASCII Gantt chart (one row per resource lane).

    Glyphs: S=sample, L=slice, T=transfer, C=compute/train; digits would be
    batch indices but lanes show stages for readability (matching Figure 1's
    per-operation coloring).
    """
    if not tracer.events:
        return "(empty trace)"
    t0 = min(e.start for e in tracer.events)
    t1 = max(e.end for e in tracer.events)
    span = max(t1 - t0, 1e-9)
    if resources is None:
        resources = sorted({e.resource for e in tracer.events})
    lines = []
    scale = width / span
    for resource in resources:
        row = [" "] * width
        for event in tracer.events:
            if event.resource != resource:
                continue
            glyph = STAGE_GLYPHS.get(event.name, "?")
            lo = int((event.start - t0) * scale)
            hi = max(int((event.end - t0) * scale), lo + 1)
            for i in range(lo, min(hi, width)):
                row[i] = glyph
        lines.append(f"{resource:>8s} |{''.join(row)}|")
    legend = "legend: S=sample L=slice T=transfer C=train"
    return "\n".join(lines + [legend, f"span: {span*1000:.1f} ms"])
