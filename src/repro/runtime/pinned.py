"""Pinned host-memory buffer pool.

Real pinned (page-locked) memory lets the DMA engine read host buffers
directly, enabling asynchronous CPU->GPU copies. We model it as a pool of
preallocated numpy buffers with explicit acquire/release: batch-preparation
workers slice features straight into an acquired slot (Section 4.2's
zero-copy handoff), the transfer stream consumes the slot, and the slot is
recycled once the device copy completes. The pool bound doubles as pipeline
backpressure, exactly like a fixed ring of pinned staging buffers.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..telemetry import Counters, MetricsRegistry

__all__ = ["PinnedBuffer", "PinnedBufferPool"]


@dataclass
class PinnedBuffer:
    """One staging slot: feature rows + label entries."""

    slot: int
    features: np.ndarray  # (max_rows, num_features)
    labels: np.ndarray  # (max_batch,)


class PinnedBufferPool:
    """Fixed-size pool of staging buffers with blocking acquire."""

    def __init__(
        self,
        num_slots: int,
        max_rows: int,
        num_features: int,
        max_batch: int,
        feature_dtype=np.float16,
        counters: Optional[Counters] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if num_slots < 1:
            raise ValueError("need at least one slot")
        self.counters = counters if counters is not None else Counters()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_rows = max_rows
        self.num_features = num_features
        self.max_batch = max_batch
        self.feature_dtype = np.dtype(feature_dtype)
        self._buffers = [self._make_buffer(i) for i in range(num_slots)]
        self._free = list(range(num_slots))
        self._mutex = threading.Lock()
        self._available = threading.Condition(self._mutex)
        self.total_slots = num_slots

    def _make_buffer(self, slot: int) -> PinnedBuffer:
        """Allocate one slot's backing storage (subclasses override to
        place the arrays in shared memory)."""
        return PinnedBuffer(
            slot=slot,
            features=np.empty((self.max_rows, self.num_features), self.feature_dtype),
            labels=np.empty(self.max_batch, dtype=np.int64),
        )

    def acquire(self, timeout: Optional[float] = None) -> PinnedBuffer:
        """Block until a slot is free; return it.

        ``timeout`` is a single deadline for the whole call: the wait loop
        re-arms with the *remaining* time after every wakeup (a condition
        notify with no free slot must not restart the clock).
        """
        t0 = time.perf_counter()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._available:
            while not self._free:
                self.counters.inc("pinned_acquire_waits")
                if deadline is None:
                    self._available.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._available.wait(timeout=remaining):
                    raise TimeoutError("no pinned buffer became available")
            self.counters.inc("pinned_acquires")
            buffer = self._buffers[self._free.pop()]
            free = len(self._free)
        self.metrics.histogram(
            "pinned_acquire_wait_seconds"
        ).observe(time.perf_counter() - t0)
        self.metrics.gauge("pinned_free_slots").set(float(free))
        return buffer

    def release(self, buffer: PinnedBuffer) -> None:
        with self._available:
            if (
                not 0 <= buffer.slot < self.total_slots
                or self._buffers[buffer.slot] is not buffer
            ):
                raise ValueError(
                    f"buffer with slot {buffer.slot} does not belong to this pool"
                )
            if buffer.slot in self._free:
                raise ValueError(f"slot {buffer.slot} released twice")
            self._free.append(buffer.slot)
            self.counters.inc("pinned_releases")
            self._available.notify()
            free = len(self._free)
        self.metrics.gauge("pinned_free_slots").set(float(free))

    def free_slots(self) -> int:
        with self._mutex:
            return len(self._free)

    def utilization(self) -> float:
        """Fraction of slots currently checked out (1.0 = pool exhausted)."""
        return 1.0 - self.free_slots() / self.total_slots

    def register_probes(self, sampler) -> None:
        """Expose pool occupancy to a continuous-monitoring sampler.

        ``sampler`` is a :class:`~repro.telemetry.monitor.ProbeSampler`;
        both probes are lock-protected reads, cheap enough for a 10 ms
        sampling period.
        """
        sampler.add_probe(
            "pinned_pool/free_slots", lambda: float(self.free_slots()), unit="slots"
        )
        sampler.add_probe("pinned_pool/utilization", self.utilization, unit="fraction")

    def nbytes(self) -> int:
        """Total pinned memory footprint."""
        return sum(b.features.nbytes + b.labels.nbytes for b in self._buffers)
