"""Epoch executors: policy configurations over the staged-pipeline runtime.

Every executor here is a thin wiring of :mod:`repro.runtime.stages` — the
loop body (queues, workers, overlap, error handling, accounting) lives in
:class:`~repro.runtime.stages.StagedPipeline`, not in the executors:

- :class:`SerialExecutor` reproduces Listing 1 — the standard PyTorch
  workflow of Figure 1(a): sample, slice (double-copy reference path),
  transfer, train, strictly in order on the main thread.  Policy:
  ``prefetch_depth=0``.
- :class:`PipelinedExecutor` is SALIENT (Figure 1(b)): fused
  :class:`~repro.runtime.stages.PrepareStage` workers fill pinned buffers
  ahead of time; the transfer stream moves batch i+1 to the device while
  the main thread trains on batch i.  Policy: fused prepare +
  ``prefetch_depth=N``.
- :class:`StagedExecutor` runs the fully split dataflow (sample → slice →
  transfer → train as four stages, each with its own workers) — the
  explicit-stage configuration benchmarks compare against the fused one.

All three record per-stage times (the Table 1 measurement: "time spent on
it from the perspective of the main thread") into one
:class:`~repro.runtime.stages.EpochStats` accounting path, and share batch
seeding, so their per-batch losses are identical for a shared seed.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..sampling.base import NeighborSamplerBase
from ..slicing.store import FeatureStore
from ..telemetry import Counters, MetricsRegistry
from ..telemetry.monitor import ProbeSampler
from ..telemetry.tracer import Tracer
from .device import Device, DeviceBatch
from .pinned import PinnedBufferPool
from .stages import (
    ComputeStage,
    EpochStats,
    PrepareStage,
    SampleStage,
    SliceStage,
    StagedPipeline,
    TransferStage,
)
from .workers import estimate_max_rows

__all__ = ["EpochStats", "SerialExecutor", "PipelinedExecutor", "StagedExecutor"]

TrainFn = Callable[[DeviceBatch], float]


def _check_compute(compute: str) -> str:
    if compute not in ("fused", "legacy"):
        raise ValueError(f"unknown compute mode {compute!r}")
    return compute


class SerialExecutor:
    """Listing-1 workflow: every stage blocks the main thread (depth 0).

    ``compute`` selects the kernel generation: ``"fused"`` (default) builds
    per-batch aggregation plans in the slice stage for the fused kernels;
    ``"legacy"`` skips them, keeping the original per-call-argsort path
    (byte-identical results — the twin-kernel contract).
    """

    def __init__(
        self,
        sampler: NeighborSamplerBase,
        store: FeatureStore,
        device: Device,
        tracer: Optional[Tracer] = None,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        compute: str = "fused",
        probes: Optional[ProbeSampler] = None,
    ) -> None:
        self.sampler = sampler
        self.store = store
        self.device = device
        self.tracer = tracer or Tracer(enabled=False)
        self.seed = seed
        self.compute = _check_compute(compute)
        self.probes = probes
        self._pipeline = StagedPipeline(
            [
                SampleStage(lambda: sampler),
                SliceStage(store, reference=True, build_plans=self.compute == "fused"),
                TransferStage(device),
                ComputeStage(),
            ],
            prefetch_depth=0,
            seed=seed,
            tracer=self.tracer,
            metrics=metrics,
            probes=probes,
        )
        self.counters = self._pipeline.ctx.counters
        self.metrics = self._pipeline.ctx.metrics

    def run_epoch(self, batches: Sequence[np.ndarray], train_fn: TrainFn) -> EpochStats:
        return self._pipeline.run_epoch(batches, train_fn)


class _PooledExecutor:
    """Shared wiring for the overlapped policies: pinned pool + pipeline."""

    def __init__(
        self,
        sampler_factory: Callable[[], NeighborSamplerBase],
        store: FeatureStore,
        device: Device,
        num_workers: int = 2,
        prefetch_depth: int = 4,
        pinned_slots: int = 4,
        max_rows_hint: Optional[int] = None,
        max_batch_hint: int = 1024,
        tracer: Optional[Tracer] = None,
        seed: int = 0,
        counters: Optional[Counters] = None,
        metrics: Optional[MetricsRegistry] = None,
        compute: str = "fused",
        probes: Optional[ProbeSampler] = None,
    ) -> None:
        self.store = store
        self.device = device
        self.compute = _check_compute(compute)
        self.tracer = tracer or Tracer(enabled=False)
        #: one shared sink for sampler, slicer and pinned-pool telemetry
        self.counters = counters if counters is not None else Counters()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.probes = probes
        sizing_probe = sampler_factory()
        max_rows = max_rows_hint or estimate_max_rows(
            sizing_probe.fanouts, max_batch_hint, store.num_nodes
        )
        self.pinned_pool = PinnedBufferPool(
            num_slots=pinned_slots,
            max_rows=max_rows,
            num_features=store.num_features,
            max_batch=max_batch_hint,
            feature_dtype=store.feature_dtype,
            counters=self.counters,
            metrics=self.metrics,
        )
        if probes is not None and probes.enabled:
            self.pinned_pool.register_probes(probes)
        self._pipeline = StagedPipeline(
            self._build_stages(sampler_factory, num_workers),
            prefetch_depth=prefetch_depth,
            seed=seed,
            tracer=self.tracer,
            counters=self.counters,
            metrics=self.metrics,
            probes=probes,
        )

    def _build_stages(self, sampler_factory, num_workers):
        raise NotImplementedError

    def run_epoch(self, batches: Sequence[np.ndarray], train_fn: TrainFn) -> EpochStats:
        return self._pipeline.run_epoch(batches, train_fn)


class PipelinedExecutor(_PooledExecutor):
    """SALIENT's overlapped pipeline (Sections 4.2-4.3): fused prepare
    workers (one thread owns a batch's sampling *and* pinned slicing
    end-to-end) feeding the transfer/compute overlap."""

    def _build_stages(self, sampler_factory, num_workers):
        return [
            PrepareStage(
                sampler_factory,
                self.store,
                pinned_pool=self.pinned_pool,
                workers=num_workers,
                build_plans=self.compute == "fused",
            ),
            TransferStage(self.device),
            ComputeStage(),
        ]


class StagedExecutor(_PooledExecutor):
    """Split dataflow: sample and slice as separate stages with their own
    worker pools and a bounded queue between them — the explicit
    stage-per-resource configuration of the staged runtime."""

    def _build_stages(self, sampler_factory, num_workers):
        return [
            SampleStage(sampler_factory, workers=num_workers),
            SliceStage(
                self.store,
                pinned_pool=self.pinned_pool,
                build_plans=self.compute == "fused",
            ),
            TransferStage(self.device),
            ComputeStage(),
        ]
