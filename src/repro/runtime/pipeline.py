"""Epoch executors: the serial baseline workflow and SALIENT's pipeline.

:class:`SerialExecutor` reproduces Listing 1 — the standard PyTorch
workflow of Figure 1(a): sample, slice, transfer, train, strictly in order
on the main thread.

:class:`PipelinedExecutor` is SALIENT (Figure 1(b)): worker threads prepare
batches into pinned buffers ahead of time; a dedicated transfer stream
moves batch i+1 to the device while the main ("GPU") thread trains on
batch i; stream events enforce the necessary ordering.

Both record per-stage blocking times (the Table 1 measurement: "time spent
on it from the perspective of the main thread") and full timelines via
:class:`~repro.runtime.trace.Tracer`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..sampling.base import NeighborSamplerBase
from ..slicing.slicer import slice_batch_reference
from ..slicing.store import FeatureStore
from ..telemetry import Counters
from .device import Device, DeviceBatch
from .pinned import PinnedBufferPool
from .queues import QueueClosed
from .trace import Tracer
from .workers import BatchPreparationPool, PreparedBatch, estimate_max_rows

__all__ = ["EpochStats", "SerialExecutor", "PipelinedExecutor"]

TrainFn = Callable[[DeviceBatch], float]


@dataclass
class EpochStats:
    """Timing breakdown of one epoch, from the main thread's perspective."""

    epoch_time: float = 0.0
    sample_time: float = 0.0  # blocking sampling time
    slice_time: float = 0.0  # blocking slicing time
    transfer_time: float = 0.0  # blocking transfer (or transfer-wait) time
    train_time: float = 0.0  # device compute time
    prep_wait_time: float = 0.0  # pipelined: main thread starved for batches
    num_batches: int = 0
    bytes_transferred: int = 0
    losses: list[float] = field(default_factory=list)

    @property
    def batch_prep_time(self) -> float:
        """Batch preparation = sampling + slicing (Table 1's first column)."""
        return self.sample_time + self.slice_time

    def breakdown(self) -> dict[str, float]:
        """Fractions of epoch time per stage (blocking view)."""
        total = max(self.epoch_time, 1e-12)
        return {
            "batch_prep": self.batch_prep_time / total,
            "transfer": self.transfer_time / total,
            "train": self.train_time / total,
        }


class SerialExecutor:
    """Listing-1 workflow: every stage blocks the main thread."""

    def __init__(
        self,
        sampler: NeighborSamplerBase,
        store: FeatureStore,
        device: Device,
        tracer: Optional[Tracer] = None,
        seed: int = 0,
    ) -> None:
        self.sampler = sampler
        self.store = store
        self.device = device
        self.tracer = tracer or Tracer(enabled=False)
        self.seed = seed

    def run_epoch(self, batches: Sequence[np.ndarray], train_fn: TrainFn) -> EpochStats:
        stats = EpochStats()
        tracer = self.tracer
        bytes_at_start = self.device.bytes_transferred
        epoch_start = time.perf_counter()
        for index, nodes in enumerate(batches):
            rng = np.random.default_rng(np.random.SeedSequence([self.seed, index]))

            t0 = time.perf_counter()
            with tracer.span("sample", "cpu:0", index):
                mfg = self.sampler.sample(nodes, rng)
            t1 = time.perf_counter()
            with tracer.span("slice", "cpu:0", index):
                sliced = slice_batch_reference(self.store, mfg)
            t2 = time.perf_counter()
            with tracer.span("transfer", "dma", index):
                device_batch = self.device.transfer_batch(sliced, index)
            t3 = time.perf_counter()
            with tracer.span("train", "gpu", index):
                loss = train_fn(device_batch)
            t4 = time.perf_counter()

            stats.sample_time += t1 - t0
            stats.slice_time += t2 - t1
            stats.transfer_time += t3 - t2
            stats.train_time += t4 - t3
            stats.num_batches += 1
            stats.losses.append(loss)
        stats.epoch_time = time.perf_counter() - epoch_start
        stats.bytes_transferred = self.device.bytes_transferred - bytes_at_start
        return stats


class PipelinedExecutor:
    """SALIENT's overlapped pipeline (Sections 4.2-4.3)."""

    def __init__(
        self,
        sampler_factory: Callable[[], NeighborSamplerBase],
        store: FeatureStore,
        device: Device,
        num_workers: int = 2,
        prefetch_depth: int = 4,
        pinned_slots: int = 4,
        max_rows_hint: Optional[int] = None,
        max_batch_hint: int = 1024,
        tracer: Optional[Tracer] = None,
        seed: int = 0,
        counters: Optional[Counters] = None,
    ) -> None:
        self.store = store
        self.device = device
        self.tracer = tracer or Tracer(enabled=False)
        #: one shared sink for sampler, slicer and pinned-pool telemetry
        self.counters = counters if counters is not None else Counters()
        probe = sampler_factory()
        max_rows = max_rows_hint or estimate_max_rows(
            probe.fanouts, max_batch_hint, store.num_nodes
        )
        self.pinned_pool = PinnedBufferPool(
            num_slots=pinned_slots,
            max_rows=max_rows,
            num_features=store.num_features,
            max_batch=max_batch_hint,
            feature_dtype=store.feature_dtype,
            counters=self.counters,
        )
        self.pool = BatchPreparationPool(
            sampler_factory=sampler_factory,
            store=store,
            num_workers=num_workers,
            prefetch_depth=prefetch_depth,
            pinned_pool=self.pinned_pool,
            tracer=self.tracer,
            seed=seed,
            counters=self.counters,
        )

    def _submit_transfer(self, prepared: PreparedBatch):
        """Enqueue prepared batch on the transfer stream; returns waiter."""
        holder: list[Optional[DeviceBatch]] = [None]
        tracer = self.tracer

        def work() -> None:
            with tracer.span("transfer", "dma", prepared.index):
                holder[0] = self.device.transfer_batch(prepared.sliced, prepared.index)
            # The device copy is complete: the pinned slot can be recycled
            # even before training consumes the device-side batch.
            if prepared.buffer is not None:
                self.pinned_pool.release(prepared.buffer)

        event = self.device.transfer_stream.submit(work)
        return holder, event

    def run_epoch(self, batches: Sequence[np.ndarray], train_fn: TrainFn) -> EpochStats:
        stats = EpochStats()
        tracer = self.tracer
        bytes_at_start = self.device.bytes_transferred
        epoch_start = time.perf_counter()
        output_queue, join = self.pool.run(list(batches))
        try:
            self._drain_loop(output_queue, train_fn, stats, tracer)
        except BaseException:
            # Unblock producers so the executor stays reusable: workers
            # blocked in put() observe the close, release their pinned
            # buffers and exit.
            output_queue.close()
            self.device.transfer_stream.synchronize()
            raise
        join()
        stats.epoch_time = time.perf_counter() - epoch_start
        stats.bytes_transferred = self.device.bytes_transferred - bytes_at_start
        # Workers did sampling/slicing off the main thread; report their
        # aggregate busy time for completeness (non-blocking).
        for name, total in tracer.stage_totals().items():
            if name == "sample":
                stats.sample_time = total
            elif name == "slice":
                stats.slice_time = total
        return stats

    def _drain_loop(self, output_queue, train_fn, stats, tracer) -> None:
        in_flight: Optional[tuple] = None  # (holder, event, index)
        while True:
            t0 = time.perf_counter()
            try:
                prepared = output_queue.get()
            except QueueClosed:
                prepared = None
            stats.prep_wait_time += time.perf_counter() - t0

            next_in_flight = None
            if prepared is not None:
                holder, event = self._submit_transfer(prepared)
                next_in_flight = (holder, event, prepared.index)

            if in_flight is not None:
                holder, event, index = in_flight
                t1 = time.perf_counter()
                event.wait()
                stats.transfer_time += time.perf_counter() - t1
                t2 = time.perf_counter()
                with tracer.span("train", "gpu", index):
                    loss = train_fn(holder[0])
                stats.train_time += time.perf_counter() - t2
                stats.num_batches += 1
                stats.losses.append(loss)

            in_flight = next_in_flight
            if prepared is None and in_flight is None:
                break
