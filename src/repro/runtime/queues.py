"""Work queues for batch preparation.

SALIENT's batch-preparation threads "balance load dynamically via a
lock-free input queue that contains the destination nodes for each
mini-batch" (Section 4.2). CPython cannot express a true lock-free MPMC
queue, so :class:`InputQueue` uses a deque guarded by a single lock, which
preserves the architectural property that matters: dynamic (work-stealing
style) load balancing, as opposed to the PyTorch DataLoader's *static*
round-robin pre-assignment, which strands workers when neighborhood sizes
vary (the paper's stated motivation). :class:`StaticPartitionQueue`
implements that static scheme for the ablation benches.
"""

from __future__ import annotations

import collections
import threading
from typing import Generic, Iterable, Optional, TypeVar

__all__ = ["InputQueue", "StaticPartitionQueue", "BoundedOutputQueue", "QueueClosed"]

T = TypeVar("T")


class QueueClosed(Exception):
    """Raised by blocking consumers when the queue is closed and drained."""


class InputQueue(Generic[T]):
    """Dynamically load-balanced MPMC queue of pending work items."""

    def __init__(self, items: Optional[Iterable[T]] = None) -> None:
        self._items: collections.deque[T] = collections.deque(items or [])
        self._lock = threading.Lock()

    def put(self, item: T) -> None:
        with self._lock:
            self._items.append(item)

    def get(self) -> Optional[T]:
        """Pop the next item, or None when empty (non-blocking)."""
        with self._lock:
            if self._items:
                return self._items.popleft()
            return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class StaticPartitionQueue(Generic[T]):
    """Round-robin pre-assignment of items to workers (DataLoader-style).

    Each worker only sees its own stripe; a worker that finishes early idles
    even while other stripes still hold work. Exists to quantify the
    dynamic-vs-static scheduling gap in the ablation benchmarks.
    """

    def __init__(self, items: Iterable[T], num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._stripes: list[collections.deque[T]] = [
            collections.deque() for _ in range(num_workers)
        ]
        for i, item in enumerate(items):
            self._stripes[i % num_workers].append(item)
        self._locks = [threading.Lock() for _ in range(num_workers)]

    def get(self, worker_id: int) -> Optional[T]:
        stripe = self._stripes[worker_id]
        with self._locks[worker_id]:
            if stripe:
                return stripe.popleft()
            return None

    def __len__(self) -> int:
        return sum(len(s) for s in self._stripes)


class BoundedOutputQueue(Generic[T]):
    """Bounded blocking queue for prepared batches (producer backpressure).

    Workers block in :meth:`put` when ``capacity`` batches are already
    waiting, bounding pinned-memory usage; the consumer blocks in
    :meth:`get` until a batch (or close) arrives.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: collections.deque[T] = collections.deque()
        self._mutex = threading.Lock()
        self._not_full = threading.Condition(self._mutex)
        self._not_empty = threading.Condition(self._mutex)
        self._closed = False

    def put(self, item: T) -> None:
        with self._not_full:
            while len(self._items) >= self.capacity and not self._closed:
                self._not_full.wait()
            if self._closed:
                raise QueueClosed
            self._items.append(item)
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> T:
        with self._not_empty:
            while not self._items:
                if self._closed:
                    raise QueueClosed
                if not self._not_empty.wait(timeout=timeout):
                    raise TimeoutError("queue.get timed out")
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Wake all waiters; subsequent puts raise, gets drain then raise."""
        with self._mutex:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._items)
