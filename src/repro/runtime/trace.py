"""Deprecated shim: tracing now lives in :mod:`repro.telemetry.tracer`.

The runtime used to own its own tracer with a private wall-clock origin;
PR 3 unified it with the telemetry subsystem so spans, metrics and run
reports share one instrumentation seam (and one clock).  Existing imports
(``from repro.runtime.trace import Tracer`` and friends) keep working —
they now resolve to the telemetry implementations, which preserve the
original API (``span``/``record``/``stage_totals``/``resource_busy``/
``makespan``/``gpu_utilization``) and the byte-compatible Figure-1 ASCII
renderer, and add hierarchical spans plus Chrome trace-event export.
"""

from __future__ import annotations

import warnings

from ..telemetry.tracer import (  # noqa: F401 (re-exports)
    STAGE_GLYPHS,
    TraceEvent,
    Tracer,
    render_timeline,
)

__all__ = ["TraceEvent", "Tracer", "render_timeline", "STAGE_GLYPHS"]

# Module-level so the warning fires exactly once per process (the module
# object is cached in sys.modules after the first import).
warnings.warn(
    "repro.runtime.trace is deprecated; import Tracer and friends from "
    "repro.telemetry.tracer instead",
    DeprecationWarning,
    stacklevel=2,
)
