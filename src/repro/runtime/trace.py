"""Timeline tracing for the training pipeline (Figure 1).

Every pipeline stage (sample, slice, transfer, train) records
``TraceEvent``s against a named resource lane (``cpu:0``, ``dma``, ``gpu``).
The collected trace renders as an ASCII Gantt chart, reproducing the
paper's Figure 1 comparison between the serial PyTorch workflow and
SALIENT's overlapped pipeline.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["TraceEvent", "Tracer", "render_timeline"]

#: Stage -> single-character glyph used in the ASCII timeline. The paper's
#: Figure 1 color code: green=sample, yellow=slice, orange/red=transfer,
#: blue=train.
STAGE_GLYPHS = {"sample": "S", "slice": "L", "transfer": "T", "train": "C"}


@dataclass
class TraceEvent:
    """One timed stage execution on one resource lane."""

    name: str  # stage name: sample / slice / transfer / train
    resource: str  # lane: cpu:<i>, dma, gpu
    batch: int  # mini-batch index
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Thread-safe event collector with a shared wall-clock origin."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []
        self._lock = threading.Lock()
        self._origin = time.perf_counter()

    def now(self) -> float:
        return time.perf_counter() - self._origin

    def record(
        self, name: str, resource: str, batch: int, start: float, end: float
    ) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.events.append(TraceEvent(name, resource, batch, start, end))

    class _Span:
        def __init__(self, tracer: "Tracer", name: str, resource: str, batch: int):
            self.tracer, self.name, self.resource, self.batch = (
                tracer,
                name,
                resource,
                batch,
            )

        def __enter__(self):
            self.start = self.tracer.now()
            return self

        def __exit__(self, *exc):
            self.tracer.record(
                self.name, self.resource, self.batch, self.start, self.tracer.now()
            )

    def span(self, name: str, resource: str, batch: int) -> "Tracer._Span":
        """Context manager that records one event."""
        return Tracer._Span(self, name, resource, batch)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def stage_totals(self) -> dict[str, float]:
        """Total busy time per stage name."""
        totals: dict[str, float] = {}
        for event in self.events:
            totals[event.name] = totals.get(event.name, 0.0) + event.duration
        return totals

    def resource_busy(self, resource: str) -> float:
        """Union length of busy intervals on one lane (handles overlap)."""
        spans = sorted(
            (e.start, e.end) for e in self.events if e.resource == resource
        )
        busy = 0.0
        current_start, current_end = None, None
        for start, end in spans:
            if current_end is None or start > current_end:
                if current_end is not None:
                    busy += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        if current_end is not None:
            busy += current_end - current_start
        return busy

    def makespan(self) -> float:
        if not self.events:
            return 0.0
        return max(e.end for e in self.events) - min(e.start for e in self.events)

    def gpu_utilization(self) -> float:
        """Fraction of the makespan during which the GPU lane is busy."""
        span = self.makespan()
        return self.resource_busy("gpu") / span if span > 0 else 0.0


def render_timeline(
    tracer: Tracer, width: int = 100, resources: Optional[list[str]] = None
) -> str:
    """Render the trace as an ASCII Gantt chart (one row per resource lane).

    Glyphs: S=sample, L=slice, T=transfer, C=compute/train; digits would be
    batch indices but lanes show stages for readability (matching Figure 1's
    per-operation coloring).
    """
    if not tracer.events:
        return "(empty trace)"
    t0 = min(e.start for e in tracer.events)
    t1 = max(e.end for e in tracer.events)
    span = max(t1 - t0, 1e-9)
    if resources is None:
        resources = sorted({e.resource for e in tracer.events})
    lines = []
    scale = width / span
    for resource in resources:
        row = [" "] * width
        for event in tracer.events:
            if event.resource != resource:
                continue
            glyph = STAGE_GLYPHS.get(event.name, "?")
            lo = int((event.start - t0) * scale)
            hi = max(int((event.end - t0) * scale), lo + 1)
            for i in range(lo, min(hi, width)):
                row[i] = glyph
        lines.append(f"{resource:>8s} |{''.join(row)}|")
    legend = "legend: S=sample L=slice T=transfer C=train"
    return "\n".join(lines + [legend, f"span: {span*1000:.1f} ms"])
