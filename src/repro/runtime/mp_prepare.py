"""True multi-core batch preparation: the multiprocess prepare executor.

This module de-simulates the paper's headline scaling result (Section 4.2,
Table 2): batch preparation — sampling plus slicing — running genuinely in
parallel across CPU cores.  The threaded executors keep SALIENT's
*architecture* (dynamic load balancing, end-to-end per-batch ownership,
pinned staging, bounded prefetch) but the GIL serializes their numpy-glue
hot path; here the prepare stage fans out to **worker processes** that
share the dataset and the staging slots through POSIX shared memory
(:mod:`repro.runtime.shm`), so nothing on the hot path is pickled:

- the CSR topology and fp16 feature slab are copied into a shared segment
  once at executor construction; workers sample and slice over views;
- each task message is ``(index, nodes, rng_entries, slot)`` — a few
  hundred bytes; the worker writes sliced features/labels and the encoded
  MFG topology straight into the assigned shared pinned slot;
- the parent wraps the slot into the same :class:`SlicedBatch` envelope
  the staged pipeline already consumes; only the small int64 topology is
  copied out of the slot (it outlives the slot's recycle-after-transfer).

Determinism: workers rebuild each batch's generator from the pipeline's
``rng_entries(index)`` (``SeedSequence([seed, index])``), the exact policy
of the single-process executors, so per-batch losses are byte-identical to
:class:`~repro.runtime.pipeline.SerialExecutor` for the same seed.

Failure handling: a worker exception travels back as a result message and
re-raises inside the dispatching stage thread, entering the runtime's
normal :class:`~repro.runtime.stages.StageError` cancellation (pinned slot
released by ``Stage.abandon``).  A *crashed* worker (e.g. SIGKILL) is
detected by the receiver thread's liveness check, which fails every
pending future with :class:`WorkerCrashed` — same cancellation path, all
slots return to the pool.

Telemetry: per-worker busy seconds land in
``mp_worker_busy_seconds{worker=i}`` histograms and a live
``mp_prepare/busy_workers`` probe, which ``repro diagnose`` folds into
``cpu:mp<i>`` lanes so a prep-bound verdict can name actual core
starvation (see :mod:`repro.telemetry.attribution`).
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
import time
import traceback
from typing import Callable, Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from ..slicing.slicer import SlicedBatch, build_aggregation_plans
from ..slicing.store import FeatureStore
from ..telemetry import Counters, MetricsRegistry
from ..telemetry.monitor import ProbeSampler
from ..telemetry.tracer import Tracer
from .device import Device
from .shm import (
    SharedArena,
    SharedDataset,
    SharedSlotPool,
    decode_mfg,
    encode_mfg,
)
from .stages import (
    ComputeStage,
    EpochStats,
    Stage,
    StagedPipeline,
    TransferStage,
    _timed_span,
)
from .workers import estimate_max_rows

__all__ = [
    "WorkerCrashed",
    "WorkerTaskError",
    "MultiprocessPreparePool",
    "MPPrepareStage",
    "MultiprocessExecutor",
    "estimate_mfg_capacity",
]

#: default start method — ``spawn`` is the portable, import-clean contract
#: the shm attach/detach lifecycle is written against (fork also works on
#: POSIX and skips interpreter startup; benches may select it explicitly)
DEFAULT_START_METHOD = "spawn"


class WorkerCrashed(RuntimeError):
    """A prepare worker process died without reporting a result."""


class WorkerTaskError(RuntimeError):
    """A prepare worker raised while processing a batch (traceback text
    from the worker process is carried in ``worker_traceback``)."""

    def __init__(self, message: str, worker_traceback: str = ""):
        super().__init__(message)
        self.worker_traceback = worker_traceback


def estimate_mfg_capacity(
    graph: CSRGraph, fanouts: Sequence[Optional[int]], batch_size: int, max_rows: int
) -> int:
    """Upper bound on the int64 words :func:`~repro.runtime.shm.encode_mfg`
    needs for any batch: ``n_id`` rows plus ``2 * edges`` per hop, with
    per-hop edges capped by ``frontier * fanout`` and the graph itself."""
    frontier = min(batch_size, graph.num_nodes)
    total_edges = 0
    for fanout in fanouts:
        edges = (
            graph.num_edges
            if fanout is None
            else min(frontier * fanout, graph.num_edges)
        )
        total_edges += edges
        # Each selected edge introduces at most one new frontier node.
        frontier = min(frontier + edges, graph.num_nodes)
    return max_rows + 2 * total_edges


def _make_sampler(kind: str, graph: CSRGraph, fanouts: Sequence[Optional[int]]):
    if kind == "fast":
        from ..sampling.fast_sampler import FastNeighborSampler

        return FastNeighborSampler(graph, fanouts)
    if kind == "pyg":
        from ..sampling.pyg_sampler import PyGNeighborSampler

        return PyGNeighborSampler(graph, fanouts)
    raise ValueError(f"unknown sampler kind {kind!r}")


# ----------------------------------------------------------------------
# Worker process body (module-level: spawn pickles a reference to it)
# ----------------------------------------------------------------------
def _worker_main(
    worker_id: int,
    dataset_spec: dict,
    pool_spec: dict,
    busy_spec: dict,
    task_q,
    result_q,
    sampler_kind: str,
    fanouts: Sequence[Optional[int]],
) -> None:
    dataset = SharedDataset.attach(dataset_spec)
    slots = SharedSlotPool.attach_views(pool_spec)
    busy_arena = SharedArena.attach(busy_spec)
    busy = busy_arena.array("busy")
    sampler = _make_sampler(sampler_kind, dataset.graph, list(fanouts))
    store = dataset.store
    try:
        while True:
            task = task_q.get()
            if task is None:
                return
            index, nodes, entries, slot = task
            busy[worker_id] = 1
            try:
                t0 = time.perf_counter()
                # The pipeline's per-batch seeding policy, reproduced
                # verbatim: scheduling can never change a batch's stream.
                rng = np.random.default_rng(np.random.SeedSequence(list(entries)))
                mfg = sampler.sample(np.asarray(nodes, dtype=np.int64), rng)
                t1 = time.perf_counter()
                # Memory-mapped stores meter their page-fault/copy time in
                # their own (worker-local) registry; the per-task delta
                # rides the result message into the parent's registry.
                store_metrics = getattr(store, "metrics", None)
                mmap0 = (
                    store_metrics.value("mmap_wait_seconds")
                    if store_metrics is not None
                    else 0.0
                )
                buffer = slots[slot]
                spill: dict = {}
                rows = len(mfg.n_id)
                if rows <= buffer.features.shape[0] and mfg.batch_size <= len(
                    buffer.labels
                ):
                    store.slice_features(mfg.n_id, out=buffer.features[:rows])
                    store.slice_labels(
                        mfg.target_ids(), out=buffer.labels[: mfg.batch_size]
                    )
                else:  # oversized batch: fall back to (counted) pickling
                    spill["xs"] = store.slice_features(mfg.n_id)
                    spill["ys"] = store.slice_labels(mfg.target_ids())
                if not encode_mfg(mfg, buffer.header, buffer.mfg_ints):
                    spill["mfg"] = mfg
                t2 = time.perf_counter()
                mmap_s = (
                    store_metrics.value("mmap_wait_seconds") - mmap0
                    if store_metrics is not None
                    else 0.0
                )
                result_q.put(
                    ("ok", index, worker_id, t1 - t0, t2 - t1, mmap_s, spill or None)
                )
            except BaseException as exc:  # noqa: BLE001 - forwarded verbatim
                result_q.put(
                    (
                        "err",
                        index,
                        worker_id,
                        f"{type(exc).__name__}: {exc}",
                        traceback.format_exc(),
                    )
                )
            finally:
                busy[worker_id] = 0
    except (KeyboardInterrupt, EOFError, BrokenPipeError):  # pragma: no cover
        pass
    finally:
        dataset.close()
        busy_arena.close()


# ----------------------------------------------------------------------
# Parent-side client
# ----------------------------------------------------------------------
class _Future:
    """One task's pending result (thread-safe single-assignment cell)."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None

    def set(self, value) -> None:
        self._value = value
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise TimeoutError("prepare worker did not return a result in time")
        if self._error is not None:
            raise self._error
        return self._value


class MultiprocessPreparePool:
    """A pool of sampler/slicer worker processes over shared memory.

    The parent submits ``(index, nodes, rng_entries, slot)`` tasks to a
    shared queue (dynamic load balancing, as in the threaded pools) and
    receives tiny result messages on a second queue; a receiver thread
    resolves futures and doubles as the liveness watchdog — a worker that
    exits without being asked fails every pending future with
    :class:`WorkerCrashed`.
    """

    def __init__(
        self,
        dataset_spec: dict,
        pool_spec: dict,
        num_workers: int,
        fanouts: Sequence[Optional[int]],
        sampler: str = "fast",
        start_method: str = DEFAULT_START_METHOD,
        poll_interval: float = 0.1,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.start_method = start_method
        self._poll_interval = poll_interval
        ctx = mp.get_context(start_method)
        self._busy_arena = SharedArena.allocate({"busy": ((num_workers,), np.uint8)})
        self._busy = self._busy_arena.array("busy")
        self._busy[:] = 0
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._futures: dict[int, _Future] = {}
        self._lock = threading.Lock()
        self._broken: Optional[WorkerCrashed] = None
        self._closing = False
        self.processes = [
            ctx.Process(
                target=_worker_main,
                args=(
                    wid,
                    dataset_spec,
                    pool_spec,
                    self._busy_arena.spec(),
                    self._task_q,
                    self._result_q,
                    sampler,
                    list(fanouts),
                ),
                daemon=True,
                name=f"mp-prepare-{wid}",
            )
            for wid in range(num_workers)
        ]
        for proc in self.processes:
            proc.start()
        self._receiver = threading.Thread(
            target=self._recv_loop, daemon=True, name="mp-prepare-recv"
        )
        self._receiver.start()

    # ------------------------------------------------------------------
    def submit(self, index: int, nodes: np.ndarray, entries: Sequence[int], slot: int) -> _Future:
        """Dispatch one batch to whichever worker grabs it first."""
        future = _Future()
        with self._lock:
            if self._broken is not None:
                raise self._broken
            if self._closing:
                raise RuntimeError("prepare pool is closed")
            self._futures[index] = future
        self._task_q.put(
            (int(index), np.asarray(nodes, dtype=np.int64), list(entries), int(slot))
        )
        return future

    def busy_workers(self) -> float:
        """Workers currently inside a task (shared-flag sum, probe-cheap)."""
        return float(int(self._busy.sum()))

    def utilization(self) -> float:
        return self.busy_workers() / self.num_workers

    def register_probes(self, sampler: ProbeSampler) -> None:
        sampler.add_probe(
            "mp_prepare/busy_workers", self.busy_workers, unit="workers"
        )
        sampler.add_probe(
            "mp_prepare/utilization", self.utilization, unit="fraction"
        )

    # ------------------------------------------------------------------
    def _recv_loop(self) -> None:
        while True:
            try:
                msg = self._result_q.get(timeout=self._poll_interval)
            except (queue.Empty, OSError, ValueError, EOFError):
                if self._closing and not any(p.is_alive() for p in self.processes):
                    return
                self._check_liveness()
                continue
            kind, index = msg[0], msg[1]
            with self._lock:
                future = self._futures.pop(index, None)
            if future is None:  # cancelled or already failed
                continue
            if kind == "ok":
                future.set(msg[2:])
            else:
                _, _, worker_id, message, tb = msg
                future.fail(
                    WorkerTaskError(
                        f"prepare worker {worker_id} failed: {message}", tb
                    )
                )

    def _check_liveness(self) -> None:
        if self._closing or self._broken is not None:
            return
        dead = [p for p in self.processes if p.exitcode is not None]
        if not dead:
            return
        names = ", ".join(f"{p.name} (exit {p.exitcode})" for p in dead)
        error = WorkerCrashed(f"prepare worker died unexpectedly: {names}")
        with self._lock:
            self._broken = error
            pending = list(self._futures.values())
            self._futures.clear()
        for future in pending:
            future.fail(error)

    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop workers, fail any stragglers, release the busy-flag arena."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            pending = list(self._futures.values())
            self._futures.clear()
        for future in pending:
            future.fail(WorkerCrashed("prepare pool closed"))
        for _ in self.processes:
            try:
                self._task_q.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                break
        for proc in self.processes:
            proc.join(timeout)
        for proc in self.processes:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout)
        self._receiver.join(timeout)
        for q in (self._task_q, self._result_q):
            q.cancel_join_thread()
            q.close()
        self._busy_arena.close()
        self._busy_arena.unlink()


# ----------------------------------------------------------------------
# The pipeline stage
# ----------------------------------------------------------------------
class MPPrepareStage(Stage):
    """Prepare stage whose workers are *processes*, not threads.

    Each of the stage's ``workers`` dispatch threads owns one in-flight
    batch end-to-end: acquire a shared pinned slot, submit the task, block
    on the future, wrap the slot into a :class:`SlicedBatch`.  Blocking
    threads cost no CPU — the cores belong to the worker processes — while
    keeping the stage a drop-in citizen of :class:`StagedPipeline`'s
    queueing, ordering and cancellation machinery (a raise here lands in
    ``Stage.abandon`` → pinned slot released → ``StageError`` at the
    caller, identical to the threaded stages).
    """

    name = "prepare"

    def __init__(
        self,
        client: MultiprocessPreparePool,
        slot_pool: SharedSlotPool,
        rng_entries: Callable[[int], Sequence[int]],
        build_plans: bool = False,
        result_timeout: float = 120.0,
    ) -> None:
        super().__init__()
        self.client = client
        self.slot_pool = slot_pool
        self.rng_entries = rng_entries
        self.build_plans = build_plans
        self.result_timeout = result_timeout
        self.workers = client.num_workers

    def process(self, env, state, resource: str) -> None:
        ctx = self.ctx
        t_begin = time.perf_counter()
        with ctx.tracer.span("prepare", resource, env.index):
            buffer = self.slot_pool.acquire()
            env.buffer = buffer
            env.buffer_pool = self.slot_pool
            future = self.client.submit(
                env.index, env.nodes, self.rng_entries(env.index), buffer.slot
            )
            worker_id, sample_s, slice_s, mmap_s, spill = future.result(
                timeout=self.result_timeout
            )
            if spill and "mfg" in spill:
                ctx.counters.inc("mp_mfg_overflow_batches")
                mfg = spill["mfg"]
            else:
                # Copy the topology out of the slot: the MFG outlives the
                # slot's recycle-after-DMA, the feature rows do not.
                mfg = decode_mfg(buffer.header, buffer.mfg_ints)
            if spill and "xs" in spill:
                ctx.counters.inc("mp_slot_overflow_batches")
                xs, ys, slot = spill["xs"], spill["ys"], None
                env.release_buffer()  # slot unused; recycle immediately
            else:
                xs = buffer.features[: len(mfg.n_id)]
                ys = buffer.labels[: mfg.batch_size]
                slot = buffer.slot
            env.mfg = mfg
            env.sliced = SlicedBatch(mfg=mfg, xs=xs, ys=ys, pinned_slot=slot)
        wait_s = time.perf_counter() - t_begin
        # Worker-measured busy time feeds the standard sample/slice
        # accounting; the dispatch overhead (queueing + IPC) is tracked
        # separately so diagnose can tell cores-busy from glue-bound.
        env.timings["sample"] = env.timings.get("sample", 0.0) + sample_s
        env.timings["slice"] = env.timings.get("slice", 0.0) + slice_s
        metrics = ctx.metrics
        if mmap_s > 0.0:
            # Cold-tier wait measured inside the worker process; folded
            # into the parent registry for the storage-bound verdict.
            metrics.counter("mmap_wait_seconds").inc(mmap_s)
        metrics.histogram("mp_result_wait_seconds").observe(
            max(wait_s - sample_s - slice_s, 0.0)
        )
        metrics.histogram(
            "mp_worker_busy_seconds", worker=str(worker_id)
        ).observe(sample_s + slice_s)
        metrics.counter("mp_batches", worker=str(worker_id)).inc()
        ctx.counters.inc("mp_prepared_batches")
        if self.build_plans:
            with _timed_span(ctx, env, "plan_build", resource):
                build_aggregation_plans(env.mfg, metrics=metrics)


# ----------------------------------------------------------------------
# The executor policy
# ----------------------------------------------------------------------
class MultiprocessExecutor:
    """Fourth executor policy: multiprocess prepare over shared memory.

    Same contract as :class:`~repro.runtime.pipeline.PipelinedExecutor`
    (per-batch losses byte-identical to every other policy for a shared
    seed), but the prepare stage's parallelism is real: ``num_workers``
    OS processes sampling and slicing concurrently, unconstrained by the
    GIL.  Owns three shared-memory artifacts — the read-only dataset
    segment, the staging-slot segment, the busy-flag strip — torn down by
    :meth:`close` (spawn-safe attach/detach on the worker side).
    """

    def __init__(
        self,
        graph: CSRGraph,
        store: FeatureStore,
        device: Device,
        fanouts: Sequence[Optional[int]],
        num_workers: int = 2,
        sampler: str = "fast",
        prefetch_depth: int = 4,
        pinned_slots: Optional[int] = None,
        max_rows_hint: Optional[int] = None,
        max_batch_hint: int = 1024,
        tracer: Optional[Tracer] = None,
        seed: int = 0,
        counters: Optional[Counters] = None,
        metrics: Optional[MetricsRegistry] = None,
        compute: str = "fused",
        probes: Optional[ProbeSampler] = None,
        start_method: str = DEFAULT_START_METHOD,
        result_timeout: float = 120.0,
    ) -> None:
        if compute not in ("fused", "legacy"):
            raise ValueError(f"unknown compute mode {compute!r}")
        if prefetch_depth < 1:
            raise ValueError("multiprocess prepare requires prefetch_depth >= 1")
        self.store = store
        self.device = device
        self.compute = compute
        self.num_workers = num_workers
        self.tracer = tracer or Tracer(enabled=False)
        self.counters = counters if counters is not None else Counters()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.probes = probes if probes is not None and probes.enabled else None
        fanouts = list(fanouts)
        max_rows = max_rows_hint or estimate_max_rows(
            fanouts, max_batch_hint, store.num_nodes
        )
        mfg_capacity = estimate_mfg_capacity(graph, fanouts, max_batch_hint, max_rows)
        # Slots cover every place an envelope can hold one concurrently:
        # in-flight dispatch threads + the prefetch queue + transfer slack.
        slots = pinned_slots or (num_workers + prefetch_depth + 2)
        self.pinned_pool = SharedSlotPool(
            num_slots=slots,
            max_rows=max_rows,
            num_features=store.num_features,
            max_batch=max_batch_hint,
            mfg_capacity=mfg_capacity,
            max_layers=len(fanouts),
            feature_dtype=store.feature_dtype,
            counters=self.counters,
            metrics=self.metrics,
        )
        self.shared_dataset = SharedDataset.create(graph, store)
        self.client = MultiprocessPreparePool(
            self.shared_dataset.spec(),
            self.pinned_pool.spec(),
            num_workers,
            fanouts,
            sampler=sampler,
            start_method=start_method,
        )
        if self.probes is not None:
            self.pinned_pool.register_probes(self.probes)
            self.client.register_probes(self.probes)
        rng_entries = lambda index: [seed, index]  # noqa: E731 - shared policy
        self._pipeline = StagedPipeline(
            [
                MPPrepareStage(
                    self.client,
                    self.pinned_pool,
                    rng_entries=rng_entries,
                    build_plans=self.compute == "fused",
                    result_timeout=result_timeout,
                ),
                TransferStage(device),
                ComputeStage(),
            ],
            prefetch_depth=prefetch_depth,
            seed=seed,
            rng_entries=rng_entries,
            tracer=self.tracer,
            counters=self.counters,
            metrics=self.metrics,
            probes=probes,
        )
        self._closed = False

    def run_epoch(self, batches: Sequence[np.ndarray], train_fn) -> EpochStats:
        return self._pipeline.run_epoch(batches, train_fn)

    def close(self) -> None:
        """Stop the workers and free every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        self.client.close()
        self.shared_dataset.close()
        self.shared_dataset.unlink()
        self.pinned_pool.close()
        self.pinned_pool.unlink()

    def __enter__(self) -> "MultiprocessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
