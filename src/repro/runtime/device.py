"""Simulated accelerator: device tensors, streams and metered transfers.

No GPU is available in this environment (see DESIGN.md), so the "device" is
modeled explicitly:

- :class:`DeviceTensor` wraps an array that has been "moved" to the device;
  compute consumes float32 device tensors (the paper computes fp32 on GPU
  while storing fp16 on the host).
- :class:`Stream` is an in-order command queue serviced by a dedicated
  thread, with :class:`StreamEvent` synchronization — the mechanism
  Section 4.3 uses to overlap transfers with GPU computation ("separate GPU
  streams for computation and data transfer, synchronizing those streams").
- :class:`Device` meters transfers against a configurable bandwidth and can
  inject the baseline's round-trip latency per transferred tensor (the
  redundant sparse-tensor validity assertions SALIENT eliminates).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

__all__ = ["DeviceTensor", "StreamEvent", "Stream", "Device", "DeviceBatch"]


@dataclass
class DeviceTensor:
    """An array resident on the simulated device."""

    data: np.ndarray
    device: "Device"

    @property
    def shape(self) -> tuple:
        return self.data.shape


class StreamEvent:
    """One-shot completion event usable across streams/threads."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.error: Optional[BaseException] = None

    def set(self, error: Optional[BaseException] = None) -> None:
        self.error = error
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> None:
        if not self._event.wait(timeout=timeout):
            raise TimeoutError("stream event wait timed out")
        if self.error is not None:
            raise self.error

    def is_set(self) -> bool:
        return self._event.is_set()


class Stream:
    """In-order asynchronous command queue (one worker thread)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._queue: list[tuple[Callable[[], None], StreamEvent]] = []
        self._mutex = threading.Lock()
        self._pending = threading.Condition(self._mutex)
        self._shutdown = False
        self._thread = threading.Thread(target=self._run, name=f"stream-{name}", daemon=True)
        self._thread.start()

    def submit(self, fn: Callable[[], None]) -> StreamEvent:
        """Enqueue ``fn``; returns an event set on completion."""
        event = StreamEvent()
        with self._pending:
            if self._shutdown:
                raise RuntimeError(f"stream {self.name} is shut down")
            self._queue.append((fn, event))
            self._pending.notify()
        return event

    def synchronize(self) -> None:
        """Block until all previously submitted work has completed."""
        self.submit(lambda: None).wait()

    def shutdown(self) -> None:
        with self._pending:
            self._shutdown = True
            self._pending.notify()
        self._thread.join(timeout=5)

    def _run(self) -> None:
        while True:
            with self._pending:
                while not self._queue and not self._shutdown:
                    self._pending.wait()
                if not self._queue and self._shutdown:
                    return
                fn, event = self._queue.pop(0)
            try:
                fn()
                event.set()
            except BaseException as exc:  # surface errors to the waiter
                event.set(error=exc)


@dataclass
class DeviceBatch:
    """A mini-batch resident on the device (the ``batch.to(GPU)`` result)."""

    xs: DeviceTensor
    ys: DeviceTensor
    mfg: object  # MFG adjacency; index arrays are device-side copies
    batch_index: int = -1


class Device:
    """Simulated GPU with transfer metering.

    Parameters
    ----------
    transfer_bandwidth:
        Modeled DMA bandwidth in bytes/second, or None for unmetered copies.
        The paper's machine peaks at 12.3 GB/s.
    roundtrip_latency:
        Extra blocking delay injected *per transferred tensor*, modeling the
        baseline's redundant CPU-GPU round trips (PyG sparse-tensor
        assertions). SALIENT sets this to 0 ("skip assertions"), lifting
        effective transfer efficiency from ~75% to ~99% (Section 4.3).
    time_scale:
        Multiplier applied to modeled sleep durations, so benches can run
        the paper's regimes faster than real time.
    """

    def __init__(
        self,
        transfer_bandwidth: Optional[float] = None,
        roundtrip_latency: float = 0.0,
        time_scale: float = 1.0,
    ) -> None:
        self.transfer_bandwidth = transfer_bandwidth
        self.roundtrip_latency = roundtrip_latency
        self.time_scale = time_scale
        self.bytes_transferred = 0
        self.num_transfers = 0
        self.transfer_stream = Stream("transfer")
        self.compute_stream = Stream("compute")
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _meter(self, nbytes: int, num_tensors: int) -> None:
        delay = 0.0
        if self.transfer_bandwidth:
            delay += nbytes / self.transfer_bandwidth
        delay += self.roundtrip_latency * num_tensors
        delay *= self.time_scale
        if delay > 0:
            time.sleep(delay)
        with self._stats_lock:
            self.bytes_transferred += nbytes
            self.num_transfers += 1

    def to_device(self, array: np.ndarray, cast_fp32: bool = False) -> DeviceTensor:
        """Synchronous host->device copy of one array."""
        self._meter(array.nbytes, 1)
        data = array.astype(np.float32) if cast_fp32 else array.copy()
        return DeviceTensor(data=data, device=self)

    def transfer_batch(self, batch, batch_index: int = -1) -> DeviceBatch:
        """Move a :class:`SlicedBatch` to the device (blocking).

        Features are copied out of their (pinned) staging buffer and
        up-cast to float32, matching the paper's fp16-host / fp32-GPU
        scheme. Adjacency arrays count as one transferred tensor each — the
        granularity at which the baseline pays round-trip latency.
        """
        adj_tensors = 1 + len(batch.mfg.adjs)  # n_id + one edge_index per layer
        nbytes = batch.nbytes()
        self._meter(nbytes, 2 + adj_tensors)
        xs = DeviceTensor(batch.xs.astype(np.float32), self)
        ys = DeviceTensor(batch.ys.copy(), self)
        return DeviceBatch(xs=xs, ys=ys, mfg=batch.mfg, batch_index=batch_index)

    def transfer_batch_async(self, batch, batch_index: int = -1):
        """Enqueue the transfer on the transfer stream.

        Returns ``(holder, event)``: after ``event.wait()``, ``holder[0]``
        is the :class:`DeviceBatch`. This is the Section 4.3 pipelining
        primitive — the copy proceeds while the compute stream trains on
        the previous batch.
        """
        holder: list[Optional[DeviceBatch]] = [None]

        def work() -> None:
            holder[0] = self.transfer_batch(batch, batch_index)

        event = self.transfer_stream.submit(work)
        return holder, event

    def effective_bandwidth(self, elapsed: float) -> float:
        """Observed transfer rate over ``elapsed`` seconds."""
        return self.bytes_transferred / elapsed if elapsed > 0 else 0.0

    def reset_stats(self) -> None:
        with self._stats_lock:
            self.bytes_transferred = 0
            self.num_transfers = 0

    def shutdown(self) -> None:
        self.transfer_stream.shutdown()
        self.compute_stream.shutdown()
