"""Shared-memory carriers for true multi-core batch preparation.

SALIENT's batch-prep workers are C++ threads sharing one address space.
On CPython the GIL forbids that, so the de-simulated equivalent (Section
4.2, Table 2) is worker *processes* over POSIX shared memory — without
re-introducing the double copy the paper criticizes: nothing on the hot
path is pickled, every payload lives in ``multiprocessing.shared_memory``
segments that both sides map directly.

Three building blocks:

- :class:`SharedArena` — one named segment holding several aligned numpy
  arrays, with a picklable :meth:`SharedArena.spec` so a spawn-started
  worker can re-attach by name (fork inherits nothing either way — both
  start methods go through attach-by-spec, which is what makes the
  lifecycle spawn-safe).
- :class:`SharedDataset` — the read-only inputs: CSR topology plus the
  fp16 feature slab and labels, copied into shared memory **once** at
  executor construction; workers sample and slice over zero-copy views.
- :class:`SharedSlotPool` — a :class:`~repro.runtime.pinned.PinnedBufferPool`
  whose slots live in shared memory.  Each :class:`SharedPinnedBuffer`
  carries the usual feature/label staging regions plus an int64 region
  where the worker serializes the MFG topology (:func:`encode_mfg`); the
  parent decodes with :func:`decode_mfg`, copying the small int arrays out
  of the slot so recycling the slot after the DMA copy cannot corrupt a
  batch still being trained on.

Lifecycle: the creating process owns the segments and must call
:meth:`close` + :meth:`unlink`; attached processes :meth:`close` only.
Attachments deregister themselves from the ``resource_tracker`` so worker
exit does not tear segments out from under the parent (CPython's tracker
would otherwise unlink an attached-but-not-owned segment at shutdown).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..sampling.mfg import MFG, Adj
from ..slicing.store import FeatureStore
from .pinned import PinnedBuffer, PinnedBufferPool

__all__ = [
    "SharedArena",
    "SharedDataset",
    "SharedPinnedBuffer",
    "SharedSlotPool",
    "encode_mfg",
    "decode_mfg",
    "mfg_ints_needed",
]

#: segment-internal alignment for every array (cache-line friendly)
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@contextmanager
def _no_tracker_registration():
    """Suppress resource-tracker registration while attaching a segment.

    Only the creating process should own a segment's tracker entry (it is
    what unlinks at interpreter exit).  CPython < 3.13 registers on plain
    attach too; under ``fork`` all workers share the parent's tracker, so
    attach-then-unregister would tear out the *parent's* entry (and spam
    KeyError tracebacks on the second unregister).  Not registering in the
    first place keeps the tracker consistent for both start methods.
    """
    try:
        from multiprocessing import resource_tracker
    except Exception:  # pragma: no cover - tracker internals vary
        yield
        return
    original = resource_tracker.register

    def register(name, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = register
    try:
        yield
    finally:
        resource_tracker.register = original


class SharedArena:
    """One shared-memory segment holding a set of named numpy arrays."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        layout: Dict[str, Tuple[int, Tuple[int, ...], str]],
        owner: bool,
    ) -> None:
        self._shm = shm
        self._layout = layout  # name -> (offset, shape, dtype-str)
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def allocate(
        cls, specs: Mapping[str, Tuple[Tuple[int, ...], np.dtype]]
    ) -> "SharedArena":
        """Create a segment with room for every ``name -> (shape, dtype)``."""
        layout: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        offset = 0
        for name, (shape, dtype) in specs.items():
            dtype = np.dtype(dtype)
            offset = _aligned(offset)
            layout[name] = (offset, tuple(int(s) for s in shape), dtype.str)
            offset += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        return cls(shm, layout, owner=True)

    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedArena":
        """Create a segment and copy ``arrays`` into it."""
        arena = cls.allocate(
            {name: (array.shape, array.dtype) for name, array in arrays.items()}
        )
        for name, array in arrays.items():
            arena.array(name)[...] = array
        return arena

    def spec(self) -> dict:
        """Picklable attach recipe (segment name + layout)."""
        return {"shm_name": self._shm.name, "layout": dict(self._layout)}

    @classmethod
    def attach(cls, spec: dict) -> "SharedArena":
        with _no_tracker_registration():
            shm = shared_memory.SharedMemory(name=spec["shm_name"])
        return cls(shm, dict(spec["layout"]), owner=False)

    # ------------------------------------------------------------------
    def array(self, name: str) -> np.ndarray:
        """Zero-copy view of one named array."""
        offset, shape, dtype = self._layout[name]
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset)

    def names(self) -> list[str]:
        return list(self._layout)

    def nbytes(self) -> int:
        return self._shm.size

    def close(self) -> None:
        """Unmap this process's view (safe to call twice).

        Live numpy views keep the mapping exported; in that case the unmap
        is deferred to process exit (the *name* still disappears on
        :meth:`unlink`, which is what bounds shared-memory usage).
        """
        if not self._closed:
            self._closed = True
            try:
                self._shm.close()
            except BufferError:  # views outstanding; mapping dies with us
                pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; attachers must not)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# ----------------------------------------------------------------------
# Read-only dataset segment
# ----------------------------------------------------------------------
class SharedDataset:
    """CSR topology + feature store in one attachable bundle.

    In-RAM stores copy the feature slab and labels into the shared
    segment; workers rebuild a :class:`FeatureStore` over zero-copy views
    (``half_precision=None`` preserves the parent's exact fp16 bytes,
    keeping the determinism contract byte-for-byte).

    Memory-mapped stores (anything exposing ``mmap_spec()``, i.e. the
    cold tier of :mod:`repro.slicing.memmap_store`) share only the CSR:
    the picklable slab spec travels alongside the arena spec and each
    worker **reopens the slab read-only** — the OS page cache is the
    shared medium, so attaching adds no per-worker feature copies and no
    copy-on-write growth.
    """

    def __init__(
        self, arena: SharedArena, store_spec: Optional[dict] = None
    ) -> None:
        self._arena = arena
        self._store_spec = store_spec
        self.graph = CSRGraph(
            indptr=arena.array("indptr"),
            indices=arena.array("indices"),
        )
        if store_spec is None:
            self.store = FeatureStore(
                arena.array("features"),
                arena.array("labels"),
                half_precision=None,
            )
        else:
            from ..slicing.memmap_store import open_store_from_spec

            self.store = open_store_from_spec(store_spec)

    @classmethod
    def create(cls, graph: CSRGraph, store) -> "SharedDataset":
        mmap_spec = getattr(store, "mmap_spec", None)
        if mmap_spec is not None:
            arena = SharedArena.create(
                {"indptr": graph.indptr, "indices": graph.indices}
            )
            return cls(arena, store_spec=mmap_spec())
        arena = SharedArena.create(
            {
                "indptr": graph.indptr,
                "indices": graph.indices,
                "features": store.features,
                "labels": store.labels,
            }
        )
        return cls(arena)

    def spec(self) -> dict:
        return {"arena": self._arena.spec(), "store": self._store_spec}

    @classmethod
    def attach(cls, spec: dict) -> "SharedDataset":
        return cls(SharedArena.attach(spec["arena"]), spec.get("store"))

    def nbytes(self) -> int:
        return self._arena.nbytes()

    def close(self) -> None:
        self._arena.close()

    def unlink(self) -> None:
        self._arena.unlink()


# ----------------------------------------------------------------------
# MFG serialization into a slot's int64 region
# ----------------------------------------------------------------------
#: header words before the per-layer (n_src, n_dst, n_edges) triples
_HEADER_FIXED = 4


def header_capacity(max_layers: int) -> int:
    return _HEADER_FIXED + 3 * max_layers


def mfg_ints_needed(mfg: MFG) -> int:
    """int64 words :func:`encode_mfg` writes for ``mfg``."""
    return len(mfg.n_id) + sum(2 * adj.num_edges for adj in mfg.adjs)


def encode_mfg(mfg: MFG, header: np.ndarray, ints: np.ndarray) -> bool:
    """Serialize ``mfg`` into a slot's header + int64 region.

    Layout: ``header = [n_total, batch_size, num_layers, ints_used,
    (n_src, n_dst, n_edges) per layer]``; ``ints = n_id ++ flattened
    row-major edge_index per layer`` (model consumption order).  Returns
    False — leaving the regions untouched — when the MFG does not fit, in
    which case the caller falls back to pickling (counted, off the common
    path).  ``e_id`` is always None on sampler output, so topology is the
    whole payload.
    """
    total = mfg_ints_needed(mfg)
    layers = len(mfg.adjs)
    if header_capacity(layers) > len(header) or total > len(ints):
        return False
    header[0] = len(mfg.n_id)
    header[1] = mfg.batch_size
    header[2] = layers
    header[3] = total
    pos = len(mfg.n_id)
    ints[:pos] = mfg.n_id
    for li, adj in enumerate(mfg.adjs):
        base = _HEADER_FIXED + 3 * li
        header[base] = adj.size[0]
        header[base + 1] = adj.size[1]
        header[base + 2] = adj.num_edges
        width = 2 * adj.num_edges
        ints[pos : pos + width] = adj.edge_index.reshape(-1)
        pos += width
    return True


def decode_mfg(header: np.ndarray, ints: np.ndarray) -> MFG:
    """Rebuild the MFG a worker serialized with :func:`encode_mfg`.

    Every array is **copied out** of the slot: the MFG outlives the slot
    (compute consumes it after the transfer stage recycled the buffer), so
    views into the slot would be corrupted on reuse.  The copies are the
    small int64 topology, not the feature slab — features stay zero-copy
    in the slot until the DMA copy, exactly like the threaded executors.
    """
    n_total = int(header[0])
    batch_size = int(header[1])
    layers = int(header[2])
    n_id = ints[:n_total].copy()
    pos = n_total
    adjs = []
    for li in range(layers):
        base = _HEADER_FIXED + 3 * li
        n_src, n_dst, n_edges = (int(header[base + k]) for k in range(3))
        width = 2 * n_edges
        edge_index = ints[pos : pos + width].copy().reshape(2, n_edges)
        pos += width
        adjs.append(Adj(edge_index=edge_index, e_id=None, size=(n_src, n_dst)))
    return MFG(n_id=n_id, adjs=adjs, batch_size=batch_size)


# ----------------------------------------------------------------------
# Shared-memory pinned slot pool
# ----------------------------------------------------------------------
@dataclass
class SharedPinnedBuffer(PinnedBuffer):
    """A pinned staging slot whose regions live in shared memory.

    Adds the MFG serialization regions; ``features``/``labels`` keep the
    base-class contract so :func:`~repro.slicing.slicer.slice_batch_fused`
    and the transfer stage work unchanged.
    """

    header: Optional[np.ndarray] = None  # int64 MFG header
    mfg_ints: Optional[np.ndarray] = None  # int64 MFG payload


class SharedSlotPool(PinnedBufferPool):
    """Pinned-buffer pool carved from one shared-memory segment.

    The parent-side pool object keeps the usual blocking acquire/release
    semantics (it *is* a :class:`PinnedBufferPool`); workers attach the
    same segment via :meth:`spec` + :meth:`attach_views` and write into
    whichever slot the parent assigned to their task — slot ownership is
    decided entirely on the parent side, so no cross-process locking is
    needed.
    """

    def __init__(
        self,
        num_slots: int,
        max_rows: int,
        num_features: int,
        max_batch: int,
        mfg_capacity: int,
        max_layers: int,
        feature_dtype=np.float16,
        counters=None,
        metrics=None,
    ) -> None:
        if num_slots < 1:
            raise ValueError("need at least one slot")
        self.mfg_capacity = int(mfg_capacity)
        self.max_layers = int(max_layers)
        self._arena = SharedArena.allocate(
            self._slot_specs(
                num_slots, max_rows, num_features, max_batch,
                self.mfg_capacity, self.max_layers, np.dtype(feature_dtype),
            )
        )
        super().__init__(
            num_slots,
            max_rows,
            num_features,
            max_batch,
            feature_dtype=feature_dtype,
            counters=counters,
            metrics=metrics,
        )

    @staticmethod
    def _slot_specs(
        num_slots, max_rows, num_features, max_batch, mfg_capacity, max_layers, dtype
    ) -> Dict[str, Tuple[Tuple[int, ...], np.dtype]]:
        int64 = np.dtype(np.int64)
        specs: Dict[str, Tuple[Tuple[int, ...], np.dtype]] = {}
        for i in range(num_slots):
            specs[f"features{i}"] = ((max_rows, num_features), dtype)
            specs[f"labels{i}"] = ((max_batch,), int64)
            specs[f"header{i}"] = ((header_capacity(max_layers),), int64)
            specs[f"ints{i}"] = ((mfg_capacity,), int64)
        return specs

    def _make_buffer(self, slot: int) -> SharedPinnedBuffer:
        return SharedPinnedBuffer(
            slot=slot,
            features=self._arena.array(f"features{slot}"),
            labels=self._arena.array(f"labels{slot}"),
            header=self._arena.array(f"header{slot}"),
            mfg_ints=self._arena.array(f"ints{slot}"),
        )

    def spec(self) -> dict:
        return {"arena": self._arena.spec(), "num_slots": self.total_slots}

    @staticmethod
    def attach_views(spec: dict) -> list[SharedPinnedBuffer]:
        """Worker-side slot views (no pool semantics — the parent owns
        acquire/release; workers only write the slot they were handed)."""
        arena = SharedArena.attach(spec["arena"])
        buffers = [
            SharedPinnedBuffer(
                slot=i,
                features=arena.array(f"features{i}"),
                labels=arena.array(f"labels{i}"),
                header=arena.array(f"header{i}"),
                mfg_ints=arena.array(f"ints{i}"),
            )
            for i in range(spec["num_slots"])
        ]
        # The arena must stay mapped as long as the views exist.
        for buffer in buffers:
            buffer._arena = arena  # type: ignore[attr-defined]
        return buffers

    def nbytes(self) -> int:
        return self._arena.nbytes()

    def close(self) -> None:
        self._arena.close()

    def unlink(self) -> None:
        self._arena.unlink()
