"""Shared-memory parallel batch preparation (Section 4.2).

A pool of worker threads prepares batches *end-to-end*: each worker pulls a
mini-batch's destination nodes from the dynamic input queue, samples its
multi-hop neighborhood, and slices features/labels directly into a pinned
staging buffer, then hands the prepared batch to the bounded output queue.

Python threads stand in for SALIENT's C++ threads. The architectural
properties carried over exactly: dynamic load balancing through a shared
input queue, end-to-end per-batch ownership (sampling + slicing in one
thread, serial slicing code), zero-copy handoff via pinned buffers, and
bounded prefetch depth. What does not carry over on a single-core GIL
interpreter is true parallel speedup — that is measured in
``repro.perfmodel`` instead (see DESIGN.md).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..sampling.base import NeighborSamplerBase
from ..slicing.slicer import SlicedBatch
from ..slicing.store import FeatureStore
from ..telemetry import Counters, MetricsRegistry
from .pinned import PinnedBuffer, PinnedBufferPool
from .queues import BoundedOutputQueue, InputQueue, QueueClosed
from .stages import Envelope, PipelineContext, SampleStage, SliceStage
from ..telemetry.tracer import Tracer

__all__ = ["PreparedBatch", "BatchPreparationPool", "estimate_max_rows"]


def estimate_max_rows(
    fanouts: Sequence[Optional[int]], batch_size: int, num_nodes: int
) -> int:
    """Upper bound on MFG node count: batch * prod(fanout_i + 1), capped.

    The +1 accounts for each frontier node remaining in the next source set
    (the destination-prefix property). ``None`` fanouts (full neighborhood)
    cap at the graph size.
    """
    bound = batch_size
    for fanout in fanouts:
        if fanout is None:
            return num_nodes
        bound *= fanout + 1
        if bound >= num_nodes:
            return num_nodes
    return min(bound, num_nodes)


@dataclass
class PreparedBatch:
    """A sliced batch plus bookkeeping for buffer recycling."""

    index: int
    sliced: SlicedBatch
    buffer: Optional[PinnedBuffer]  # None if the batch overflowed the pool


class BatchPreparationPool:
    """Thread pool preparing batches end-to-end into pinned memory."""

    def __init__(
        self,
        sampler_factory: Callable[[], NeighborSamplerBase],
        store: FeatureStore,
        num_workers: int = 2,
        prefetch_depth: int = 4,
        pinned_pool: Optional[PinnedBufferPool] = None,
        tracer: Optional[Tracer] = None,
        seed: int = 0,
        counters: Optional[Counters] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.sampler_factory = sampler_factory
        self.store = store
        self.num_workers = num_workers
        self.prefetch_depth = prefetch_depth
        self.pinned_pool = pinned_pool
        self.tracer = tracer or Tracer(enabled=False)
        self.seed = seed
        #: shared telemetry sink; samplers that support ``attach_counters``
        #: (e.g. the arena-backed FastNeighborSampler) report into it too.
        self.counters = counters if counters is not None else Counters()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.overflow_count = 0  # batches that didn't fit a pinned slot
        # The prepare body is the runtime's stage implementation — one
        # definition of sampling + fused pinned slicing, shared with
        # every staged pipeline.
        ctx = PipelineContext(
            tracer=self.tracer,
            counters=self.counters,
            seed=seed,
            metrics=self.metrics,
        )
        self._sample_stage = SampleStage(sampler_factory)
        self._slice_stage = SliceStage(store, pinned_pool=pinned_pool)
        self._sample_stage.bind(ctx)
        self._slice_stage.bind(ctx)

    def _prepare_one(
        self,
        sampler: NeighborSamplerBase,
        index: int,
        nodes: np.ndarray,
        worker_id: int,
    ) -> PreparedBatch:
        resource = f"cpu:{worker_id}"
        # Per-batch-index RNG: results are independent of which worker
        # runs which batch, keeping epochs reproducible under scheduling.
        env = Envelope(
            index=index,
            nodes=nodes,
            rng=np.random.default_rng(np.random.SeedSequence([self.seed, index])),
        )
        self._sample_stage.process(env, sampler, resource)
        self._slice_stage.process(env, None, resource)
        if self.pinned_pool is not None and env.buffer is None:
            self.overflow_count += 1
        return PreparedBatch(index=index, sliced=env.sliced, buffer=env.buffer)

    def run(
        self, batches: Sequence[np.ndarray]
    ) -> tuple[BoundedOutputQueue, Callable[[], None]]:
        """Start preparing ``batches``; returns (output queue, join fn).

        The output queue yields :class:`PreparedBatch` objects in completion
        order (not submission order — dynamic balancing reorders), followed
        by :class:`QueueClosed` once everything is drained.
        """
        input_queue: InputQueue = InputQueue(list(enumerate(batches)))
        output_queue: BoundedOutputQueue = BoundedOutputQueue(self.prefetch_depth)
        errors: list[BaseException] = []
        remaining = threading.Semaphore(0)
        total = len(batches)

        def worker(worker_id: int) -> None:
            sampler = self.sampler_factory()
            attach = getattr(sampler, "attach_counters", None)
            if attach is not None:
                attach(self.counters)
            attach_metrics = getattr(sampler, "attach_metrics", None)
            if attach_metrics is not None:
                attach_metrics(self.metrics)
            try:
                while True:
                    item = input_queue.get()
                    if item is None:
                        return
                    index, nodes = item
                    prepared = self._prepare_one(sampler, index, nodes, worker_id)
                    try:
                        output_queue.put(prepared)
                    except QueueClosed:
                        if prepared.buffer is not None:
                            self.pinned_pool.release(prepared.buffer)
                        return
                    remaining.release()
            except BaseException as exc:  # pragma: no cover - defensive
                errors.append(exc)
                output_queue.close()

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True, name=f"prep-{i}")
            for i in range(self.num_workers)
        ]
        for thread in threads:
            thread.start()

        closer = threading.Thread(
            target=lambda: (
                [remaining.acquire() for _ in range(total)],
                output_queue.close(),
            ),
            daemon=True,
        )
        closer.start()

        def join() -> None:
            for thread in threads:
                thread.join(timeout=60)
            closer.join(timeout=60)
            if errors:
                raise errors[0]

        return output_queue, join
