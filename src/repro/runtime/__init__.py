"""Runtime: queues, pinned buffers, simulated device/streams, executors."""

from .device import Device, DeviceBatch, DeviceTensor, Stream, StreamEvent
from .feature_cache import (
    DeviceFeatureCache,
    hottest_nodes,
    transfer_batch_with_cache,
)
from .mp_prepare import (
    MPPrepareStage,
    MultiprocessExecutor,
    MultiprocessPreparePool,
    WorkerCrashed,
    WorkerTaskError,
)
from .pinned import PinnedBuffer, PinnedBufferPool
from .pipeline import EpochStats, PipelinedExecutor, SerialExecutor, StagedExecutor
from .shm import (
    SharedArena,
    SharedDataset,
    SharedPinnedBuffer,
    SharedSlotPool,
    decode_mfg,
    encode_mfg,
)
from .queues import BoundedOutputQueue, InputQueue, QueueClosed, StaticPartitionQueue
from .stages import (
    ComputeStage,
    Envelope,
    PrepareStage,
    SampleStage,
    SliceStage,
    Stage,
    StagedPipeline,
    StageError,
    TransferStage,
)
from ..telemetry.tracer import TraceEvent, Tracer, render_timeline
from .workers import BatchPreparationPool, PreparedBatch, estimate_max_rows

__all__ = [
    "Device",
    "DeviceBatch",
    "DeviceTensor",
    "Stream",
    "StreamEvent",
    "PinnedBuffer",
    "PinnedBufferPool",
    "EpochStats",
    "SerialExecutor",
    "PipelinedExecutor",
    "StagedExecutor",
    "MultiprocessExecutor",
    "MultiprocessPreparePool",
    "MPPrepareStage",
    "WorkerCrashed",
    "WorkerTaskError",
    "SharedArena",
    "SharedDataset",
    "SharedPinnedBuffer",
    "SharedSlotPool",
    "encode_mfg",
    "decode_mfg",
    "InputQueue",
    "StaticPartitionQueue",
    "BoundedOutputQueue",
    "QueueClosed",
    "TraceEvent",
    "Tracer",
    "render_timeline",
    "BatchPreparationPool",
    "PreparedBatch",
    "estimate_max_rows",
    "DeviceFeatureCache",
    "transfer_batch_with_cache",
    "hottest_nodes",
]
